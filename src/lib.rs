//! # LMFAO — a layered aggregate engine for analytics workloads
//!
//! A Rust reproduction of *"A Layered Aggregate Engine for Analytics
//! Workloads"* (Schleich, Olteanu, Abo Khamis, Ngo, Nguyen — SIGMOD 2019).
//!
//! LMFAO evaluates **batches** of group-by aggregates over the natural join
//! of a database without materializing the join. A handful of analytics
//! applications are built on top of the batch engine: ridge linear regression
//! (via the covariance matrix), classification and regression trees, mutual
//! information / Chow–Liu structure learning, and data cubes.
//!
//! This crate is a façade re-exporting the workspace members:
//!
//! * [`data`] — storage substrate (values, schemas, sorted relations, tries),
//! * [`expr`] — the aggregate language (`Q(F; α) += R1, …, Rm`),
//! * [`jointree`] — join-tree construction and hypertree decompositions,
//! * [`engine`] — the layered engine (roots, pushdown, merging, grouping,
//!   multi-output plans, parallelism),
//! * [`certify`] — the independent execution-certificate checker (shares no
//!   execution code with the engine),
//! * [`baseline`] — materialized-join baselines (the paper's competitors),
//! * [`datagen`] — synthetic Retailer / Favorita / Yelp / TPC-DS generators,
//! * [`ml`] — the analytics applications.
//!
//! ## Quickstart: plan once, execute many
//!
//! The engine's primary workflow is the prepared-batch flow:
//! [`engine::Engine::prepare`] runs every optimizer layer (roots → pushdown →
//! view merging → grouping → multi-output plans) exactly once, and the
//! resulting [`engine::PreparedBatch`] is executed any number of times —
//! with changing dynamic functions between executions, which is how the
//! decision-tree learner evaluates every node of a tree from one plan.
//! [`engine::Engine::execute`] remains as a one-shot `prepare + execute`
//! convenience.
//!
//! ```
//! use lmfao::prelude::*;
//!
//! // A tiny two-relation database: Sales(store, item, units) ⋈ Items(item, price).
//! let mut schema = DatabaseSchema::new();
//! schema.add_relation_with_attrs(
//!     "Sales",
//!     &[("store", AttrType::Int), ("item", AttrType::Int), ("units", AttrType::Double)],
//! );
//! schema.add_relation_with_attrs(
//!     "Items",
//!     &[("item", AttrType::Int), ("price", AttrType::Double)],
//! );
//! let store = schema.attr_id("store").unwrap();
//! let units = schema.attr_id("units").unwrap();
//! let price = schema.attr_id("price").unwrap();
//! let sales = Relation::from_rows(
//!     schema.relation("Sales").unwrap().clone(),
//!     vec![
//!         vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
//!         vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
//!     ],
//! )
//! .unwrap();
//! let items = Relation::from_rows(
//!     schema.relation("Items").unwrap().clone(),
//!     vec![vec![Value::Int(1), Value::Double(10.0)]],
//! )
//! .unwrap();
//! let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
//! let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
//!
//! // One batch: COUNT(*), SUM(units·price), and SUM(units) per store.
//! let mut batch = QueryBatch::new();
//! batch.push("count", vec![], vec![Aggregate::count()]);
//! batch.push("revenue", vec![], vec![Aggregate::sum_product(units, price)]);
//! batch.push("per_store", vec![store], vec![Aggregate::sum(units)]);
//!
//! // Plan once. Statistics (views, groups, roots) are known before any scan.
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let prepared = engine.prepare(&batch).unwrap();
//! assert!(prepared.stats().num_views >= 3);
//!
//! // Execute (as often as needed) and look results up by query name.
//! let result = prepared.execute(&DynamicRegistry::new()).unwrap();
//! assert_eq!(result.query("count").scalar()[0], 2.0);
//! assert_eq!(result.query("revenue").scalar()[0], 80.0);
//! assert_eq!(result.query("per_store").get(&[Value::Int(1)]).unwrap()[0], 3.0);
//! assert_eq!(result.query("per_store").get(&[Value::Int(2)]).unwrap()[0], 5.0);
//! ```
//!
//! To share one prepared (sorted) database across several engines — e.g. the
//! ablation ladder of Figure 5 — prepare it once with
//! [`engine::SharedDatabase::prepare`] and build engines via
//! [`engine::Engine::with_shared`]; cloning the handle is a reference-count
//! bump, not a copy of the relations.
//!
//! ## Incremental maintenance: refresh instead of recompute
//!
//! When base relations receive updates, a prepared batch can be promoted to
//! *live materialized state* with
//! [`engine::PreparedBatch::into_maintained`]: the
//! [`engine::MaintainedBatch`] retains every computed view and absorbs
//! signed [`data::TableDelta`]s (inserts + deletes) with work proportional
//! to the delta — only the groups that (transitively) depend on the changed
//! relation are touched, and they re-scan the delta partition, not the data.
//!
//! ```
//! use lmfao::prelude::*;
//!
//! # let mut schema = DatabaseSchema::new();
//! # schema.add_relation_with_attrs(
//! #     "Sales",
//! #     &[("store", AttrType::Int), ("item", AttrType::Int), ("units", AttrType::Double)],
//! # );
//! # schema.add_relation_with_attrs(
//! #     "Items",
//! #     &[("item", AttrType::Int), ("price", AttrType::Double)],
//! # );
//! # let store = schema.attr_id("store").unwrap();
//! # let units = schema.attr_id("units").unwrap();
//! # let price = schema.attr_id("price").unwrap();
//! # let sales = Relation::from_rows(
//! #     schema.relation("Sales").unwrap().clone(),
//! #     vec![
//! #         vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
//! #         vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
//! #     ],
//! # )
//! # .unwrap();
//! # let items = Relation::from_rows(
//! #     schema.relation("Items").unwrap().clone(),
//! #     vec![vec![Value::Int(1), Value::Double(10.0)]],
//! # )
//! # .unwrap();
//! # let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
//! # let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
//! # let mut batch = QueryBatch::new();
//! # batch.push("count", vec![], vec![Aggregate::count()]);
//! # batch.push("revenue", vec![], vec![Aggregate::sum_product(units, price)]);
//! // Same Sales ⋈ Items setup as above. Prepare once, go live:
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let dynamics = DynamicRegistry::new();
//! let mut live = engine.prepare(&batch).unwrap().into_maintained(&dynamics).unwrap();
//! assert_eq!(live.results().unwrap().query("revenue").scalar()[0], 80.0);
//!
//! // A signed delta: one sale appended, one retracted.
//! let mut delta = TableDelta::for_relation(live.database().relation("Sales").unwrap());
//! delta.insert(&[Value::Int(1), Value::Int(1), Value::Double(4.0)]).unwrap();
//! delta.delete(&[Value::Int(2), Value::Int(1), Value::Double(5.0)]).unwrap();
//! let stats = live.commit(&delta, &dynamics).unwrap();
//! assert!(stats.views_changed > 0);
//!
//! // Results refreshed without re-scanning the base data.
//! assert_eq!(live.results().unwrap().query("count").scalar()[0], 2.0);
//! assert_eq!(live.results().unwrap().query("revenue").scalar()[0], 70.0);
//! ```
//!
//! `lmfao_ml::StreamingCovar` keeps a model's sufficient statistics
//! maintained the same way, `lmfao_baseline::RecomputeReference` is the
//! recompute-from-scratch referee used by the tests, and
//! `lmfao_datagen::update_stream` generates reproducible insert/delete mixes
//! for every paper dataset.
//!
//! ## Concurrent serving: writers never block readers
//!
//! A maintained batch can serve concurrent readers while it refreshes. Every
//! refresh **publishes** an immutable [`engine::ViewSnapshot`] — generation
//! number, the database state, every computed view, the projected results —
//! and readers pin whatever generation they [`engine::SnapshotHandle::load`]:
//! the pin stays answerable, unchanged, for as long as the reader holds it,
//! no matter how many generations the writer publishes meanwhile. The read
//! path takes no `&mut` anywhere; the writer prepares the next generation on
//! private copy-on-write state (only the refresh frontier is cloned) and
//! publication is one atomic pointer swap.
//!
//! ```
//! use lmfao::prelude::*;
//!
//! # let mut schema = DatabaseSchema::new();
//! # schema.add_relation_with_attrs(
//! #     "Sales",
//! #     &[("store", AttrType::Int), ("item", AttrType::Int), ("units", AttrType::Double)],
//! # );
//! # schema.add_relation_with_attrs(
//! #     "Items",
//! #     &[("item", AttrType::Int), ("price", AttrType::Double)],
//! # );
//! # let units = schema.attr_id("units").unwrap();
//! # let price = schema.attr_id("price").unwrap();
//! # let sales = Relation::from_rows(
//! #     schema.relation("Sales").unwrap().clone(),
//! #     vec![
//! #         vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
//! #         vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
//! #     ],
//! # )
//! # .unwrap();
//! # let items = Relation::from_rows(
//! #     schema.relation("Items").unwrap().clone(),
//! #     vec![vec![Value::Int(1), Value::Double(10.0)]],
//! # )
//! # .unwrap();
//! # let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
//! # let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
//! # let mut batch = QueryBatch::new();
//! # batch.push("revenue", vec![], vec![Aggregate::sum_product(units, price)]);
//! // Same Sales ⋈ Items setup as above.
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let dynamics = DynamicRegistry::new();
//! let mut live = engine.prepare(&batch).unwrap().into_maintained(&dynamics).unwrap();
//!
//! // A reader pins generation 0. (Readers on other threads would clone
//! // `live.handle()` and `load()` their own pins — no lock is held while
//! // reading.)
//! let pinned = live.snapshot();
//! assert_eq!(pinned.generation(), 0);
//! assert_eq!(pinned.query("revenue").unwrap().scalar()[0], 80.0);
//!
//! // The writer publishes generation 1: one more sale.
//! let mut delta = TableDelta::for_relation(live.database().relation("Sales").unwrap());
//! delta.insert(&[Value::Int(1), Value::Int(1), Value::Double(4.0)]).unwrap();
//! live.commit(&delta, &dynamics).unwrap();
//!
//! // The old pin still answers exactly what it answered before…
//! assert_eq!(pinned.generation(), 0);
//! assert_eq!(pinned.query("revenue").unwrap().scalar()[0], 80.0);
//! // …while fresh loads see the new generation.
//! let fresh = live.snapshot();
//! assert_eq!(fresh.generation(), 1);
//! assert_eq!(fresh.query("revenue").unwrap().scalar()[0], 120.0);
//! ```
//!
//! For an always-on serving loop (reader threads + one paced writer +
//! latency quantiles + a recompute audit of sampled reads), see the `serve`
//! binary and `serve` module of `lmfao-bench`.
//!
//! ## Transactions & isolation
//!
//! Updates that belong together commit together. A [`data::Transaction`] is
//! a set of [`data::TableDelta`]s over *multiple* relations, and
//! [`engine::MaintainedBatch::commit`] (same name on
//! [`engine::Maintainer`]) applies the whole set in **one** DAG walk: the
//! refresh frontiers of every changed relation are unioned, each affected
//! group is scanned once with the changed slots masked, and exactly one
//! generation is published — readers never observe a state where one
//! relation's delta landed and another's has not. A bare `TableDelta` still
//! commits directly (it converts via `Into<Transaction>`). The
//! [`engine::DeltaBuffer`] in front coalesces cancelling insert/delete
//! pairs and flushes on size or latency thresholds — a fully-cancelling
//! stream publishes *zero* generations. And because isolation claims
//! deserve the same scepticism as query results (see the certificates
//! below), [`engine::check_history`] is a black-box checker: record what
//! the writer committed ([`engine::CommitEvent`]) and what each reader
//! actually saw ([`engine::ReadEvent`]), and it verifies the
//! snapshot-isolation axioms — no torn transactions, reads see a committed
//! prefix, generations never move backwards on one handle.
//!
//! ```
//! use lmfao::prelude::*;
//! use std::time::Duration;
//!
//! # let mut schema = DatabaseSchema::new();
//! # schema.add_relation_with_attrs(
//! #     "Sales",
//! #     &[("store", AttrType::Int), ("item", AttrType::Int), ("units", AttrType::Double)],
//! # );
//! # schema.add_relation_with_attrs(
//! #     "Items",
//! #     &[("item", AttrType::Int), ("price", AttrType::Double)],
//! # );
//! # let units = schema.attr_id("units").unwrap();
//! # let price = schema.attr_id("price").unwrap();
//! # let sales = Relation::from_rows(
//! #     schema.relation("Sales").unwrap().clone(),
//! #     vec![
//! #         vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
//! #         vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
//! #     ],
//! # )
//! # .unwrap();
//! # let items = Relation::from_rows(
//! #     schema.relation("Items").unwrap().clone(),
//! #     vec![vec![Value::Int(1), Value::Double(10.0)]],
//! # )
//! # .unwrap();
//! # let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
//! # let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
//! # let mut batch = QueryBatch::new();
//! # batch.push("revenue", vec![], vec![Aggregate::sum_product(units, price)]);
//! // Same Sales ⋈ Items setup as above. Prepare once, go live:
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let dynamics = DynamicRegistry::new();
//! let mut live = engine.prepare(&batch).unwrap().into_maintained(&dynamics).unwrap();
//! let pinned = live.snapshot();
//!
//! // Buffer one business event: a sale lands AND its item reprices.
//! let mut buffer = DeltaBuffer::new(3, Duration::from_millis(50));
//! let mut sale = TableDelta::for_relation(live.database().relation("Sales").unwrap());
//! sale.insert(&[Value::Int(1), Value::Int(1), Value::Double(4.0)]).unwrap();
//! buffer.push(sale);
//! let mut reprice = TableDelta::for_relation(live.database().relation("Items").unwrap());
//! reprice.delete(&[Value::Int(1), Value::Double(10.0)]).unwrap();
//! reprice.insert(&[Value::Int(1), Value::Double(20.0)]).unwrap();
//! buffer.push(reprice);
//! assert!(buffer.should_flush()); // size threshold reached
//!
//! // One transaction over two relations — one walk, one generation.
//! let txn = buffer.flush().unwrap();
//! assert_eq!(txn.num_relations(), 2);
//! let stats = live.commit(txn, &dynamics).unwrap();
//! assert_eq!(stats.relations_changed, 2);
//!
//! // The pinned generation-0 snapshot is unaffected…
//! assert_eq!(pinned.generation(), 0);
//! assert_eq!(pinned.query("revenue").unwrap().scalar()[0], 80.0);
//! // …and fresh loads see the *whole* transaction at once: (3+5+4) · 20.
//! let fresh = live.snapshot();
//! assert_eq!(fresh.generation(), 1);
//! assert_eq!(fresh.query("revenue").unwrap().scalar()[0], 240.0);
//!
//! // Record the history both sides experienced; the checker signs off.
//! let mut history = History::new();
//! for snap in [&pinned, &fresh] {
//!     history.add_commit(CommitEvent {
//!         txn_id: snap.txn_id(),
//!         generation: snap.generation(),
//!         digest: snapshot_digest(snap),
//!     });
//! }
//! for (seq, snap) in [&pinned, &fresh].into_iter().enumerate() {
//!     history.add_read(ReadEvent {
//!         reader: 0,
//!         seq: seq as u64,
//!         generation: snap.generation(),
//!         txn_id: snap.txn_id(),
//!         digest: snapshot_digest(snap),
//!     });
//! }
//! assert!(check_history(&history).is_empty());
//! ```
//!
//! The `iso` module of `lmfao-bench` stress-runs exactly this contract:
//! concurrent reader threads and one transactional writer record a history
//! while racing, and any violation fails the run.
//!
//! ## Execution certificates: untrusted engine, trusted checker
//!
//! The engine is a large, optimized codebase — treat its output as a *claim*,
//! not a fact. Every execution can emit a versioned
//! [`certify::Certificate`]: integer-only provenance and accounting (floats
//! enter as fixed-point encodings, so every identity is an exact integer
//! equation) that the small, independent [`certify`] crate re-checks without
//! sharing any execution code with the engine. Maintenance certificates are
//! chained — each names its parent generation and a fingerprint of the parent
//! certificate — so a whole update history can be audited with
//! [`certify::check_chain`].
//!
//! ```
//! use lmfao::prelude::*;
//!
//! # let mut schema = DatabaseSchema::new();
//! # schema.add_relation_with_attrs(
//! #     "Sales",
//! #     &[("store", AttrType::Int), ("item", AttrType::Int), ("units", AttrType::Double)],
//! # );
//! # schema.add_relation_with_attrs(
//! #     "Items",
//! #     &[("item", AttrType::Int), ("price", AttrType::Double)],
//! # );
//! # let units = schema.attr_id("units").unwrap();
//! # let price = schema.attr_id("price").unwrap();
//! # let sales = Relation::from_rows(
//! #     schema.relation("Sales").unwrap().clone(),
//! #     vec![
//! #         vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
//! #         vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
//! #     ],
//! # )
//! # .unwrap();
//! # let items = Relation::from_rows(
//! #     schema.relation("Items").unwrap().clone(),
//! #     vec![vec![Value::Int(1), Value::Double(10.0)]],
//! # )
//! # .unwrap();
//! # let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
//! # let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
//! # let mut batch = QueryBatch::new();
//! # batch.push("count", vec![], vec![Aggregate::count()]);
//! # batch.push("revenue", vec![], vec![Aggregate::sum_product(units, price)]);
//! // Same Sales ⋈ Items setup as above. Execute with a certificate:
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let prepared = engine.prepare(&batch).unwrap();
//! let (result, certificate) = prepared.execute_certified(&DynamicRegistry::new()).unwrap();
//! assert_eq!(result.query("revenue").scalar()[0], 80.0);
//!
//! // Serialize to canonical JSON, hand it across the trust boundary,
//! // re-parse and re-check with the independent checker.
//! let json = lmfao::certify::to_json(&certificate);
//! let parsed = lmfao::certify::parse_certificate(&json).unwrap();
//! assert_eq!(parsed, certificate);
//! check_certificate(&parsed).unwrap();
//!
//! // Tampering with a published query total is caught: the revenue 80.0
//! // lives in the certificate as the exact integer 80 · 2³², and the
//! // checker re-derives it from the view provenance.
//! let mut forged = parsed.clone();
//! if let Certificate::Execute(c) = &mut forged {
//!     c.queries[1].totals[0] += 1;
//! }
//! assert!(matches!(
//!     check_certificate(&forged),
//!     Err(CertError::QueryTotalMismatch { .. })
//! ));
//! ```

#![warn(missing_docs)]

pub use lmfao_baseline as baseline;
pub use lmfao_certify as certify;
pub use lmfao_core as engine;
pub use lmfao_data as data;
pub use lmfao_datagen as datagen;
pub use lmfao_expr as expr;
pub use lmfao_jointree as jointree;
pub use lmfao_ml as ml;

/// Convenient re-exports of the most common types.
pub mod prelude {
    pub use lmfao_baseline::{MaterializedEngine, RecomputeReference};
    pub use lmfao_certify::{check_certificate, check_chain, CertError, Certificate, ChainSummary};
    pub use lmfao_core::{
        check_history, snapshot_digest, BatchResult, CommitEvent, DeltaBuffer, Engine,
        EngineConfig, EngineError, EngineStats, History, IsoViolation, MaintainedBatch, Maintainer,
        PreparedBatch, QueryResult, ReadEvent, RefreshStats, SharedDatabase, SnapshotHandle,
        ViewSnapshot, DEFAULT_HISTORY_WINDOW,
    };
    pub use lmfao_data::{
        AttrId, AttrType, Database, DatabaseSchema, DatabaseSnapshot, Relation, RelationSchema,
        TableDelta, Transaction, Value,
    };
    pub use lmfao_datagen::{Dataset, Scale};
    pub use lmfao_expr::{
        Aggregate, CmpOp, DynamicRegistry, ProductTerm, Query, QueryBatch, ScalarFunction,
    };
    pub use lmfao_jointree::{build_join_tree, Hypergraph, JoinTree};
    pub use lmfao_ml::{
        assemble_covar_matrix, chow_liu_tree, compute_mutual_info, covar_batch, covar_matrix,
        datacube_batch, learn_chow_liu, mutual_info_batch, mutual_info_matrix, train_decision_tree,
        train_decision_tree_replanned, train_linear_regression, train_linear_regression_over,
        CovarSpec, LinRegConfig, StreamingCovar, TreeConfig, TreeTask,
    };
}
