//! Bayesian-network structure learning with Chow–Liu trees over the Favorita
//! database: compute all pairwise mutual-information values as one LMFAO
//! batch, then build the maximum spanning tree.
//!
//! Run with: `cargo run --release --example structure_learning`

use lmfao::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = lmfao::datagen::favorita::generate(Scale::new(20_000, 3));
    println!(
        "Favorita: {} tuples across {} relations",
        dataset.total_tuples(),
        dataset.db.schema().num_relations()
    );

    // Discrete attributes used as Bayesian-network variables (the paper uses
    // all categorical plus a few discrete continuous attributes).
    let attr_names = [
        "store",
        "item",
        "family",
        "city",
        "state",
        "stype",
        "cluster",
        "htype",
        "promo",
        "perishable",
    ];
    let attrs: Vec<AttrId> = attr_names.iter().map(|n| dataset.attr(n)).collect();

    let start = Instant::now();
    let mi_batch = mutual_info_batch(&attrs);
    println!(
        "\nmutual information batch: {} count queries over {} attribute pairs",
        mi_batch.batch.len(),
        attrs.len() * (attrs.len() - 1) / 2
    );

    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::full(2),
    );
    // Plan once, execute once; `lmfao::ml::learn_chow_liu` wraps this whole
    // pipeline when the intermediate statistics are not needed.
    let prepared = engine.prepare(&mi_batch.batch).unwrap();
    let result = prepared.execute(&DynamicRegistry::new()).unwrap();
    println!(
        "executed as {} views in {} groups ({} intermediate aggregates) in {:.3}s",
        result.stats.num_views,
        result.stats.num_groups,
        result.stats.intermediate_aggregates,
        start.elapsed().as_secs_f64()
    );

    let mi = compute_mutual_info(&mi_batch, &result);
    let tree = chow_liu_tree(&mi);

    println!("\nChow–Liu tree (edges by decreasing mutual information):");
    for &(i, j, w) in &tree.edges {
        println!(
            "  {:<12} — {:<12}  MI = {w:.4}",
            attr_names[i], attr_names[j]
        );
    }
    println!(
        "total mutual information captured: {:.4}",
        tree.total_mutual_information()
    );

    // Sanity: functionally dependent attributes (city determines state) should
    // be strongly connected in the learned structure.
    let city_idx = attr_names.iter().position(|&n| n == "city").unwrap();
    let state_idx = attr_names.iter().position(|&n| n == "state").unwrap();
    println!(
        "\nMI(city, state) = {:.4} (functional dependency, should be among the strongest)",
        mi.get(city_idx, state_idx)
    );
}
