//! Data-cube exploration over the TPC-DS excerpt: build a 3-dimensional cube
//! with five measures (the paper's DC workload) in one LMFAO batch and slice
//! it interactively.
//!
//! Run with: `cargo run --release --example datacube_explore`

use lmfao::ml::assemble_cube;
use lmfao::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = lmfao::datagen::tpcds::generate(Scale::new(20_000, 5));
    println!(
        "TPC-DS excerpt: {} tuples across {} relations",
        dataset.total_tuples(),
        dataset.db.schema().num_relations()
    );

    // Three dimensions, five measures — the configuration of the paper's DC
    // experiments.
    let dims = vec![
        dataset.attr("icategory"),
        dataset.attr("sstate"),
        dataset.attr("year"),
    ];
    let measures = vec![
        dataset.attr("quantity"),
        dataset.attr("salesprice"),
        dataset.attr("discount"),
        dataset.attr("netpaid"),
        dataset.attr("purchase_estimate"),
    ];

    let start = Instant::now();
    let cube_batch = datacube_batch(&dims, &measures);
    println!(
        "\ndata cube batch: {} cuboid queries × {} aggregates each",
        cube_batch.batch.len(),
        cube_batch.batch.queries[0].num_aggregates()
    );

    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::full(2),
    );
    // Plan once, execute; an interactive dashboard would keep the prepared
    // batch around and re-execute as data or dynamic measures change.
    let prepared = engine.prepare(&cube_batch.batch).unwrap();
    let result = prepared.execute(&DynamicRegistry::new()).unwrap();
    let cube = assemble_cube(&cube_batch, &result);
    println!(
        "cube materialized: {} cells in {:.3}s ({} views, {} groups)",
        cube.num_cells(),
        start.elapsed().as_secs_f64(),
        result.stats.num_views,
        result.stats.num_groups
    );

    // The apex cuboid: totals over the whole join.
    let apex = cube.cell(&[None, None, None]).expect("apex cell exists");
    println!("\napex cuboid (ALL, ALL, ALL):");
    println!("  count        = {}", apex[0]);
    println!("  sum quantity = {:.0}", apex[1]);
    println!("  sum netpaid  = {:.0}", apex[4]);

    // Slice: total net paid per item category (rolling up state and year).
    println!("\nnet paid per item category (ALL states, ALL years):");
    let mut rows: Vec<(String, f64)> = cube
        .cells
        .iter()
        .filter(|(k, _)| k[0].is_some() && k[1].is_none() && k[2].is_none())
        .map(|(k, v)| (format!("{}", k[0].unwrap()), v[4]))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (category, netpaid) in rows.iter().take(8) {
        println!("  category {category:>4}: {netpaid:>14.0}");
    }

    // Drill down: for the top category, net paid per state.
    if let Some((top_cat, _)) = rows.first() {
        println!("\ndrill-down into category {top_cat}: net paid per state");
        let mut drill: Vec<(String, f64)> = cube
            .cells
            .iter()
            .filter(|(k, _)| {
                matches!(&k[0], Some(c) if format!("{c}") == *top_cat)
                    && k[1].is_some()
                    && k[2].is_none()
            })
            .map(|(k, v)| (format!("{}", k[1].unwrap()), v[4]))
            .collect();
        drill.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        for (state, netpaid) in drill.iter().take(5) {
            println!("  state {state:>4}: {netpaid:>14.0}");
        }
    }
}
