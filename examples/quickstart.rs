//! Quickstart: compute a batch of aggregates over a small retail database
//! without materializing the join, using the prepare/execute flow.
//!
//! Run with: `cargo run --release --example quickstart`

use lmfao::prelude::*;

fn main() {
    // Generate a small synthetic Favorita-style database (6 relations,
    // star schema) together with its join tree.
    let dataset = lmfao::datagen::favorita::generate(Scale::small());
    println!(
        "dataset {}: {} relations, {} tuples",
        dataset.name,
        dataset.db.schema().num_relations(),
        dataset.total_tuples()
    );

    let units = dataset.attr("units");
    let price = dataset.attr("price");
    let family = dataset.attr("family");
    let city = dataset.attr("city");

    // A batch of group-by aggregates over the natural join of all six
    // relations. LMFAO evaluates the whole batch in a few passes over the
    // base relations — the join itself is never materialized.
    let mut batch = QueryBatch::new();
    batch.push("count", vec![], vec![Aggregate::count()]);
    batch.push("total_units", vec![], vec![Aggregate::sum(units)]);
    batch.push(
        "units_times_oil_price",
        vec![],
        vec![Aggregate::sum_product(units, price)],
    );
    batch.push(
        "units_per_family",
        vec![family],
        vec![Aggregate::sum(units)],
    );
    batch.push(
        "units_per_city_family",
        vec![city, family],
        vec![Aggregate::sum(units), Aggregate::count()],
    );

    // Plan once: all optimizer layers (roots → pushdown → merging → grouping
    // → multi-output plans) run here, and the planning statistics are
    // available before anything executes.
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::full(2),
    );
    let prepared = engine.prepare(&batch).unwrap();

    println!("\nplanning statistics (before execution):");
    println!(
        "  application aggregates: {}",
        prepared.stats().application_aggregates
    );
    println!(
        "  intermediate aggregates: {}",
        prepared.stats().intermediate_aggregates
    );
    println!("  views: {}", prepared.stats().num_views);
    println!("  view groups: {}", prepared.stats().num_groups);
    println!("  roots used: {}", prepared.stats().num_roots);

    // Execute: only the scans run. The same prepared batch can be executed
    // any number of times (with changing dynamic functions, see the
    // decision-tree learner).
    let result = prepared.execute(&DynamicRegistry::new()).unwrap();

    println!("\nscalar results (looked up by query name):");
    println!(
        "  COUNT(*)            = {}",
        result.query("count").scalar()[0]
    );
    println!(
        "  SUM(units)          = {:.1}",
        result.query("total_units").scalar()[0]
    );
    println!(
        "  SUM(units * price)  = {:.1}",
        result.query("units_times_oil_price").scalar()[0]
    );

    println!("\nunits per item family (top 5):");
    let mut per_family: Vec<(String, f64)> = result
        .query("units_per_family")
        .iter()
        .map(|(k, v)| (format!("{}", k[0]), v[0]))
        .collect();
    per_family.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (family, total) in per_family.iter().take(5) {
        println!("  family {family:>4}: {total:>10.1}");
    }

    // Cross-check one scalar against the materialized-join baseline.
    let baseline = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let check = baseline.execute_batch(&batch, &DynamicRegistry::new());
    println!(
        "\nbaseline cross-check: join has {} tuples, SUM(units) = {:.1}",
        baseline.join().len(),
        check[1].scalar(1)[0]
    );
    assert!((check[1].scalar(1)[0] - result.query("total_units").scalar()[0]).abs() < 1e-6);
    println!("LMFAO and the materialized baseline agree.");
}
