//! Retail demand forecasting: train a ridge linear regression model and a
//! regression tree over the Retailer database — the paper's Table 4 use case —
//! and compare against the materialize-then-learn baseline.
//!
//! Run with: `cargo run --release --example retail_forecasting`

use lmfao::baseline::{self, DenseTask, MaterializedEngine};
use lmfao::prelude::*;
use std::time::Instant;

fn main() {
    let dataset = lmfao::datagen::retailer::generate(Scale::new(20_000, 7));
    println!(
        "Retailer: {} tuples across {} relations",
        dataset.total_tuples(),
        dataset.db.schema().num_relations()
    );

    // Continuous features + the label (inventory units, the paper's target).
    let label = dataset.attr("inventoryunits");
    let features = vec![
        dataset.attr("avghhi"),
        dataset.attr("sell_area_sq_ft"),
        dataset.attr("distance_comp"),
        dataset.attr("population"),
        dataset.attr("medianage"),
        dataset.attr("maxtemp"),
        dataset.attr("mintemp"),
        dataset.attr("prices"),
    ];

    // ---- LMFAO: covar matrix + BGD over the sufficient statistics ----------
    let start = Instant::now();
    let mut spec_features = features.clone();
    spec_features.push(label);
    let spec = CovarSpec::continuous_only(spec_features);
    let cb = covar_batch(&spec);
    let engine = Engine::new(
        dataset.db.clone(),
        dataset.tree.clone(),
        EngineConfig::full(2),
    );
    // Plan once, execute; the covar matrix does not depend on the model
    // parameters, so one execution feeds every BGD iteration.
    let prepared = engine.prepare(&cb.batch).unwrap();
    let result = prepared.execute(&DynamicRegistry::new()).unwrap();
    let covar = assemble_covar_matrix(&cb, &result);
    let model = train_linear_regression(&covar, &LinRegConfig::default());
    let lmfao_time = start.elapsed();
    println!(
        "\n[LMFAO] covar batch: {} queries -> {} views in {} groups",
        prepared.len(),
        prepared.stats().num_views,
        prepared.stats().num_groups
    );
    println!(
        "[LMFAO] linear regression trained in {:.3}s ({} BGD iterations)",
        lmfao_time.as_secs_f64(),
        model.iterations
    );

    // ---- Baseline: materialize the join, then gradient descent -------------
    let start = Instant::now();
    let baseline_engine = MaterializedEngine::materialize(&dataset.db, &dataset.tree);
    let dense = baseline::export_dense(
        baseline_engine.join(),
        dataset.db.schema(),
        &features,
        label,
    );
    let theta = baseline::train_linear_regression_dense(&dense, 1e-3, 1e-9, 50);
    let baseline_time = start.elapsed();
    println!(
        "\n[baseline] materialized join: {} tuples ({} MB), trained in {:.3}s",
        baseline_engine.join().len(),
        baseline_engine.join_size_bytes() / (1024 * 1024),
        baseline_time.as_secs_f64()
    );
    println!(
        "speedup of LMFAO over materialize-then-learn: {:.1}x",
        baseline_time.as_secs_f64() / lmfao_time.as_secs_f64().max(1e-9)
    );
    let _ = theta;

    // ---- Regression tree over the same database ----------------------------
    let start = Instant::now();
    let tree_config = TreeConfig {
        task: TreeTask::Regression,
        max_depth: 3,
        min_samples: 100,
        buckets: 8,
    };
    let tree = train_decision_tree(&engine, &features, label, &tree_config).unwrap();
    println!(
        "\n[LMFAO] regression tree: {} nodes, {} aggregate queries issued, {:.3}s",
        tree.size(),
        tree.queries_issued,
        start.elapsed().as_secs_f64()
    );

    // Evaluate both models on the materialized join (as the test set proxy).
    // The linear model's RMSE is also computable purely from aggregates
    // (θ'ᵀCθ' over a covar batch) — no join needed:
    let aggregate_rmse =
        lmfao::ml::evaluate::linreg_rmse_via_aggregates(&engine, &model, label).unwrap();
    let test = baseline_engine.join();
    let lr_rmse = model.rmse(test, label);
    assert!(
        (aggregate_rmse - lr_rmse).abs() < 1e-6 * (1.0 + lr_rmse),
        "aggregate-only RMSE {aggregate_rmse} must match the materialized RMSE {lr_rmse}"
    );
    let tree_rmse = lmfao::ml::evaluate::tree_rmse(&tree, test, label);
    let mean: f64 = (0..test.len())
        .map(|i| test.value(i, test.position(label).unwrap()).as_f64())
        .sum::<f64>()
        / test.len().max(1) as f64;
    let baseline_rmse = lmfao::ml::evaluate::rmse(test, label, |_| mean);
    println!("\nmodel quality (RMSE over the joined data):");
    println!("  predict-the-mean baseline: {baseline_rmse:.3}");
    println!("  ridge linear regression:   {lr_rmse:.3}");
    println!("  regression tree:           {tree_rmse:.3}");

    let dense_tree = baseline::train_tree_dense(&dense, DenseTask::Regression, 3, 100, 8);
    println!(
        "  (baseline dense CART has {} nodes for comparison)",
        dense_tree.size()
    );
}
