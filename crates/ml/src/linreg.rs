//! Ridge linear regression over the covar matrix.
//!
//! The model is trained with batch gradient descent (BGD) over the
//! *sufficient statistics* produced by LMFAO — the covar matrix — rather than
//! over the training dataset itself (Section 2 "Ridge Linear Regression").
//! Following the paper (and AC/DC), the optimizer uses Barzilai–Borwein step
//! sizes with Armijo backtracking line search. Because the covar matrix does
//! not depend on the parameters, it is computed once and every BGD iteration
//! costs `O(n²)` regardless of the dataset size.

use crate::covar::{covar_matrix, CovarMatrix, CovarSpec};
use lmfao_core::{Engine, EngineError};
use lmfao_data::{AttrId, Relation};

/// Configuration of the ridge linear regression trainer.
#[derive(Debug, Clone, Copy)]
pub struct LinRegConfig {
    /// The `ℓ2` regularization strength λ.
    pub l2: f64,
    /// Maximum number of BGD iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the gradient norm.
    pub tolerance: f64,
}

impl Default for LinRegConfig {
    fn default() -> Self {
        LinRegConfig {
            l2: 1e-3,
            max_iterations: 5_000,
            tolerance: 1e-8,
        }
    }
}

/// A trained ridge linear regression model.
#[derive(Debug, Clone)]
pub struct LinearRegressionModel {
    /// Parameters: intercept followed by one weight per continuous feature
    /// (the label's pseudo-parameter of −1 is not stored).
    pub theta: Vec<f64>,
    /// The features, aligned with `theta[1..]`.
    pub features: Vec<AttrId>,
    /// Number of BGD iterations performed.
    pub iterations: usize,
    /// Final value of the objective function.
    pub objective: f64,
}

impl LinearRegressionModel {
    /// Predicts the label of a tuple given an attribute-value lookup.
    pub fn predict<F>(&self, lookup: F) -> f64
    where
        F: Fn(AttrId) -> f64,
    {
        self.theta[0]
            + self
                .features
                .iter()
                .zip(&self.theta[1..])
                .map(|(&a, &w)| w * lookup(a))
                .sum::<f64>()
    }

    /// Root-mean-square error over a materialized test relation whose columns
    /// include the features and the label.
    pub fn rmse(&self, test: &Relation, label: AttrId) -> f64 {
        if test.is_empty() {
            return 0.0;
        }
        let label_col = test.position(label).expect("label must be a test column");
        // Grab the typed column handles once; the scan reads native values.
        let label_column = test.column(label_col);
        let cols: Vec<&lmfao_data::Column> = self
            .features
            .iter()
            .map(|a| test.column(test.position(*a).expect("feature must be a test column")))
            .collect();
        let mut sse = 0.0;
        for i in 0..test.len() {
            let pred = self.theta[0]
                + cols
                    .iter()
                    .zip(&self.theta[1..])
                    .map(|(c, &w)| w * c.f64_at(i))
                    .sum::<f64>();
            let err = pred - label_column.f64_at(i);
            sse += err * err;
        }
        (sse / test.len() as f64).sqrt()
    }
}

/// The objective `J(θ) = (1/2N) θᵀ C θ + (λ/2)‖θ‖²` where θ has the label's
/// parameter fixed to −1 and the intercept/label are not regularized.
fn objective(c: &CovarMatrix, theta_full: &[f64], l2: f64) -> f64 {
    let n = theta_full.len();
    let mut quad = 0.0;
    for j in 0..n {
        for k in 0..n {
            quad += theta_full[j] * c.matrix[j][k] * theta_full[k];
        }
    }
    let reg: f64 = theta_full[1..n - 1].iter().map(|t| t * t).sum();
    quad / (2.0 * c.count.max(1.0)) + 0.5 * l2 * reg
}

/// The gradient with respect to the free parameters (intercept + features).
fn gradient(c: &CovarMatrix, theta_full: &[f64], l2: f64) -> Vec<f64> {
    let n = theta_full.len();
    let mut grad = vec![0.0; n - 1];
    for (k, g) in grad.iter_mut().enumerate() {
        let mut dot = 0.0;
        for (th, row) in theta_full.iter().zip(&c.matrix) {
            dot += th * row[k];
        }
        *g = dot / c.count.max(1.0);
        if k > 0 {
            *g += l2 * theta_full[k];
        }
    }
    grad
}

/// Trains ridge linear regression directly over an engine: builds the covar
/// batch for `features` plus `label`, executes it once, and runs BGD over the
/// resulting sufficient statistics. The join is never materialized.
pub fn train_linear_regression_over(
    engine: &Engine,
    features: &[AttrId],
    label: AttrId,
    config: &LinRegConfig,
) -> Result<LinearRegressionModel, EngineError> {
    let mut all = features.to_vec();
    all.push(label);
    let covar = covar_matrix(engine, &CovarSpec::continuous_only(all))?;
    Ok(train_linear_regression(&covar, config))
}

/// Trains ridge linear regression by BGD with Barzilai–Borwein step sizes and
/// Armijo backtracking over the covar matrix. The last feature of the covar
/// matrix is the label.
///
/// Features are implicitly normalized to unit root-mean-square before
/// optimization (using only the covar matrix's diagonal, no data pass) and
/// the learned parameters are rescaled back, which keeps gradient descent
/// well conditioned when features have very different magnitudes.
pub fn train_linear_regression(
    covar: &CovarMatrix,
    config: &LinRegConfig,
) -> LinearRegressionModel {
    // Normalize: replace C by D·C·D where D = diag(1/rms_j), rms_j = sqrt(C[j][j]/N).
    let n_rows = covar.count.max(1.0);
    let scales: Vec<f64> = covar
        .matrix
        .iter()
        .enumerate()
        .map(|(j, row)| {
            let rms = (row[j] / n_rows).sqrt();
            if j == 0 || rms <= 0.0 {
                1.0
            } else {
                rms
            }
        })
        .collect();
    let normalized = CovarMatrix {
        count: covar.count,
        matrix: covar
            .matrix
            .iter()
            .enumerate()
            .map(|(j, row)| {
                row.iter()
                    .enumerate()
                    .map(|(k, v)| v / (scales[j] * scales[k]))
                    .collect()
            })
            .collect(),
        features: covar.features.clone(),
    };
    let mut model = train_normalized(&normalized, config);
    // Rescale parameters back to the original feature space. The label was
    // scaled too, so the whole model is multiplied by the label's rms.
    let label_scale = *scales.last().unwrap_or(&1.0);
    for (k, t) in model.theta.iter_mut().enumerate() {
        *t *= label_scale / scales[k];
    }
    model
}

fn train_normalized(covar: &CovarMatrix, config: &LinRegConfig) -> LinearRegressionModel {
    let dim = covar.dim(); // 1 (intercept) + features + label
    assert!(dim >= 2, "the covar matrix must include at least the label");
    let num_free = dim - 1; // intercept + features (label fixed at −1)

    // theta_full = [θ0, θ1, …, θn, −1]
    let mut theta_full = vec![0.0; dim];
    theta_full[dim - 1] = -1.0;

    let mut prev_theta: Option<Vec<f64>> = None;
    let mut prev_grad: Option<Vec<f64>> = None;
    let mut obj = objective(covar, &theta_full, config.l2);
    let mut iterations = 0;

    for it in 0..config.max_iterations {
        iterations = it + 1;
        let grad = gradient(covar, &theta_full, config.l2);
        let grad_norm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        if grad_norm < config.tolerance {
            break;
        }

        // Barzilai–Borwein initial step size.
        let mut step = match (&prev_theta, &prev_grad) {
            (Some(pt), Some(pg)) => {
                let mut sy = 0.0;
                let mut yy = 0.0;
                for k in 0..num_free {
                    let s = theta_full[k] - pt[k];
                    let y = grad[k] - pg[k];
                    sy += s * y;
                    yy += y * y;
                }
                if yy > 0.0 && sy.abs() > 0.0 {
                    (sy / yy).abs()
                } else {
                    1.0 / covar.count.max(1.0)
                }
            }
            _ => 1e-3,
        };

        // Armijo backtracking.
        let mut candidate = theta_full.clone();
        let mut new_obj;
        loop {
            for k in 0..num_free {
                candidate[k] = theta_full[k] - step * grad[k];
            }
            new_obj = objective(covar, &candidate, config.l2);
            if new_obj <= obj - 1e-4 * step * grad_norm * grad_norm || step < 1e-14 {
                break;
            }
            step *= 0.5;
        }
        prev_theta = Some(theta_full.clone());
        prev_grad = Some(grad);
        theta_full = candidate;
        if (obj - new_obj).abs() < config.tolerance * obj.abs().max(1.0) {
            obj = new_obj;
            break;
        }
        obj = new_obj;
    }

    LinearRegressionModel {
        theta: theta_full[..num_free].to_vec(),
        features: covar.features[..covar.features.len().saturating_sub(1)].to_vec(),
        iterations,
        objective: obj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the covar matrix of a tiny dataset y = 3 + 2·x directly.
    fn synthetic_covar(n: usize) -> CovarMatrix {
        // features: x (AttrId 0), label y (AttrId 1)
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let count = n as f64;
        let sx: f64 = xs.iter().sum();
        let sy: f64 = ys.iter().sum();
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let syy: f64 = ys.iter().map(|y| y * y).sum();
        CovarMatrix {
            count,
            matrix: vec![vec![count, sx, sy], vec![sx, sxx, sxy], vec![sy, sxy, syy]],
            features: vec![AttrId(0), AttrId(1)],
        }
    }

    #[test]
    fn recovers_a_linear_relationship() {
        let covar = synthetic_covar(100);
        let model = train_linear_regression(
            &covar,
            &LinRegConfig {
                l2: 0.0,
                max_iterations: 20_000,
                tolerance: 1e-12,
            },
        );
        assert!(
            (model.theta[0] - 3.0).abs() < 0.05,
            "intercept {:?}",
            model.theta
        );
        assert!(
            (model.theta[1] - 2.0).abs() < 0.01,
            "slope {:?}",
            model.theta
        );
        assert!(model.iterations > 0);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let covar = synthetic_covar(50);
        let free = train_linear_regression(
            &covar,
            &LinRegConfig {
                l2: 0.0,
                ..LinRegConfig::default()
            },
        );
        let ridge = train_linear_regression(
            &covar,
            &LinRegConfig {
                l2: 10.0,
                ..LinRegConfig::default()
            },
        );
        assert!(ridge.theta[1].abs() < free.theta[1].abs());
    }

    #[test]
    fn predict_uses_intercept_and_weights() {
        let model = LinearRegressionModel {
            theta: vec![1.0, 0.5],
            features: vec![AttrId(7)],
            iterations: 1,
            objective: 0.0,
        };
        let y = model.predict(|a| if a == AttrId(7) { 4.0 } else { 0.0 });
        assert_eq!(y, 3.0);
    }

    #[test]
    fn rmse_over_a_test_relation() {
        use lmfao_data::{RelationSchema, Value};
        let model = LinearRegressionModel {
            theta: vec![0.0, 2.0],
            features: vec![AttrId(0)],
            iterations: 1,
            objective: 0.0,
        };
        let test = Relation::from_rows(
            RelationSchema::new("T", vec![AttrId(0), AttrId(1)]),
            vec![
                vec![Value::Double(1.0), Value::Double(2.0)],
                vec![Value::Double(2.0), Value::Double(4.0)],
                vec![Value::Double(3.0), Value::Double(7.0)],
            ],
        )
        .unwrap();
        let rmse = model.rmse(&test, AttrId(1));
        assert!((rmse - (1.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }
}
