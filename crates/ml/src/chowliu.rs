//! Chow–Liu trees: learning the structure of a tree-shaped Bayesian network.
//!
//! The Chow–Liu algorithm builds the maximum spanning tree of the complete
//! graph over the attributes, weighted by pairwise mutual information
//! (Section 2 "Mutual Information"). The data-intensive part — the MI matrix —
//! is one LMFAO batch; the spanning tree itself is a tiny Kruskal pass.

use crate::mutual_info::{mutual_info_matrix, MutualInfoMatrix};
use lmfao_core::{Engine, EngineError};
use lmfao_data::AttrId;

/// A learned Chow–Liu tree: an undirected spanning tree over the attributes.
#[derive(Debug, Clone)]
pub struct ChowLiuTree {
    /// The attributes (nodes of the tree).
    pub attrs: Vec<AttrId>,
    /// The selected edges as index pairs into `attrs`, with their mutual
    /// information, in the order they were added (decreasing MI).
    pub edges: Vec<(usize, usize, f64)>,
}

impl ChowLiuTree {
    /// Total mutual information captured by the tree (the quantity the
    /// algorithm maximizes).
    pub fn total_mutual_information(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// The neighbors of a node (by index into `attrs`).
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b, _)| {
                if a == node {
                    Some(b)
                } else if b == node {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Union–find for Kruskal's algorithm.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Learns a Chow–Liu tree directly over an engine: one mutual-information
/// batch, then the spanning tree.
pub fn learn_chow_liu(engine: &Engine, attrs: &[AttrId]) -> Result<ChowLiuTree, EngineError> {
    Ok(chow_liu_tree(&mutual_info_matrix(engine, attrs)?))
}

/// Builds the Chow–Liu tree from a mutual-information matrix via Kruskal's
/// maximum-spanning-tree algorithm.
pub fn chow_liu_tree(mi: &MutualInfoMatrix) -> ChowLiuTree {
    let n = mi.attrs.len();
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            candidates.push((i, j, mi.get(i, j)));
        }
    }
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    let mut uf = UnionFind::new(n);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for (i, j, w) in candidates {
        if n > 0 && edges.len() == n - 1 {
            break;
        }
        if uf.union(i, j) {
            edges.push((i, j, w));
        }
    }
    ChowLiuTree {
        attrs: mi.attrs.clone(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(attrs: usize, entries: &[(usize, usize, f64)]) -> MutualInfoMatrix {
        let mut values = vec![vec![0.0; attrs]; attrs];
        for &(i, j, w) in entries {
            values[i][j] = w;
            values[j][i] = w;
        }
        MutualInfoMatrix {
            attrs: (0..attrs as u32).map(AttrId).collect(),
            values,
        }
    }

    #[test]
    fn picks_the_maximum_spanning_tree() {
        // 0-1 strong, 1-2 strong, 0-2 weak: the weak edge must be dropped.
        let mi = matrix(3, &[(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.1)]);
        let tree = chow_liu_tree(&mi);
        assert_eq!(tree.edges.len(), 2);
        assert!((tree.total_mutual_information() - 1.7).abs() < 1e-12);
        let picked: Vec<(usize, usize)> = tree.edges.iter().map(|&(a, b, _)| (a, b)).collect();
        assert!(picked.contains(&(0, 1)));
        assert!(picked.contains(&(1, 2)));
    }

    #[test]
    fn tree_is_spanning_and_acyclic() {
        let mi = matrix(
            5,
            &[
                (0, 1, 0.5),
                (0, 2, 0.4),
                (0, 3, 0.3),
                (0, 4, 0.2),
                (1, 2, 0.45),
                (3, 4, 0.35),
            ],
        );
        let tree = chow_liu_tree(&mi);
        assert_eq!(tree.edges.len(), 4);
        // Every node is connected.
        for node in 0..5 {
            assert!(
                !tree.neighbors(node).is_empty(),
                "node {node} must have a neighbor"
            );
        }
    }

    #[test]
    fn single_attribute_tree_has_no_edges() {
        let mi = matrix(1, &[]);
        let tree = chow_liu_tree(&mi);
        assert!(tree.edges.is_empty());
        assert_eq!(tree.total_mutual_information(), 0.0);
    }
}
