//! The (non-centered) covariance matrix workload.
//!
//! Ridge linear regression, polynomial regression and factorization machines
//! can all be trained from the *covar matrix*: the batch of aggregates
//! `SUM(X_j · X_k)` for every pair of features, `SUM(X_j)` for every feature
//! (the interactions with the intercept), and `COUNT(*)` (Section 2, Eq. 2–4).
//! Categorical features are one-hot encoded, which in LMFAO's formulation
//! turns them into group-by attributes: the aggregate for a (categorical,
//! continuous) pair is `Q(X_j; SUM(X_k))` and for a (categorical, categorical)
//! pair `Q(X_j, X_k; COUNT)`.
//!
//! The batch is computed **once**, independently of the model parameters, and
//! every gradient-descent iteration afterwards only touches the (small)
//! matrix — this is the key asymmetry with the materialize-then-learn
//! baselines.

use lmfao_core::{BatchResult, Engine, EngineError};
use lmfao_data::AttrId;
use lmfao_expr::{Aggregate, QueryBatch};

/// The feature specification of a covar-matrix workload.
#[derive(Debug, Clone)]
pub struct CovarSpec {
    /// Continuous features, in model order. The label (response) must be the
    /// last entry.
    pub continuous: Vec<AttrId>,
    /// Categorical (one-hot encoded) features.
    pub categorical: Vec<AttrId>,
}

impl CovarSpec {
    /// A specification with only continuous features plus the label.
    pub fn continuous_only(features: Vec<AttrId>) -> Self {
        CovarSpec {
            continuous: features,
            categorical: vec![],
        }
    }

    /// Number of aggregate queries the covar batch will contain.
    pub fn expected_queries(&self) -> usize {
        let n = self.continuous.len() + self.categorical.len();
        // count + degree-1 + degree-2 over unordered pairs (with repetition
        // for continuous × continuous diagonals).
        1 + n + n * (n + 1) / 2
    }
}

/// Identifies where each covar entry ends up in the executed batch.
#[derive(Debug, Clone)]
pub struct CovarBatch {
    /// The generated queries.
    pub batch: QueryBatch,
    /// Query index of `COUNT(*)`.
    pub count_query: usize,
    /// Query index of `SUM(X_j)` (continuous) or the per-category counts
    /// (categorical), indexed like `spec.continuous ++ spec.categorical`.
    pub degree1: Vec<usize>,
    /// Query index of the degree-2 entry for feature pair `(j, k)`, `j <= k`,
    /// stored as a triangular map keyed by `(j, k)` indices into the combined
    /// feature list.
    pub degree2: Vec<((usize, usize), usize)>,
    /// The combined feature list (continuous then categorical).
    pub features: Vec<AttrId>,
    /// Number of continuous features (prefix of `features`).
    pub num_continuous: usize,
}

/// Builds the covar-matrix aggregate batch for a feature specification.
pub fn covar_batch(spec: &CovarSpec) -> CovarBatch {
    let mut batch = QueryBatch::new();
    let features: Vec<AttrId> = spec
        .continuous
        .iter()
        .chain(spec.categorical.iter())
        .copied()
        .collect();
    let nc = spec.continuous.len();

    let count_query = batch
        .push("covar_count", vec![], vec![Aggregate::count()])
        .0;

    let mut degree1 = Vec::with_capacity(features.len());
    for (j, &attr) in features.iter().enumerate() {
        let qid = if j < nc {
            batch.push(format!("covar_1_{j}"), vec![], vec![Aggregate::sum(attr)])
        } else {
            batch.push(format!("covar_1_{j}"), vec![attr], vec![Aggregate::count()])
        };
        degree1.push(qid.0);
    }

    let mut degree2 = Vec::new();
    for j in 0..features.len() {
        for k in j..features.len() {
            let (aj, ak) = (features[j], features[k]);
            let qid = match (j < nc, k < nc) {
                (true, true) => batch.push(
                    format!("covar_2_{j}_{k}"),
                    vec![],
                    vec![if j == k {
                        Aggregate::sum_square(aj)
                    } else {
                        Aggregate::sum_product(aj, ak)
                    }],
                ),
                (false, true) => batch.push(
                    format!("covar_2_{j}_{k}"),
                    vec![aj],
                    vec![Aggregate::sum(ak)],
                ),
                (true, false) => batch.push(
                    format!("covar_2_{j}_{k}"),
                    vec![ak],
                    vec![Aggregate::sum(aj)],
                ),
                (false, false) => {
                    if j == k {
                        batch.push(
                            format!("covar_2_{j}_{k}"),
                            vec![aj],
                            vec![Aggregate::count()],
                        )
                    } else {
                        batch.push(
                            format!("covar_2_{j}_{k}"),
                            vec![aj, ak],
                            vec![Aggregate::count()],
                        )
                    }
                }
            };
            degree2.push(((j, k), qid.0));
        }
    }

    CovarBatch {
        batch,
        count_query,
        degree1,
        degree2,
        features,
        num_continuous: nc,
    }
}

/// The assembled covar matrix over the *continuous* features (plus intercept),
/// i.e. the sufficient statistics for ridge linear regression with continuous
/// features. Entry `[j][k]` is `SUM(X_j · X_k)` with `X_0 = 1`.
#[derive(Debug, Clone)]
pub struct CovarMatrix {
    /// Number of tuples in the join (the dataset size `|D|`).
    pub count: f64,
    /// The symmetric matrix, size `(n+1) × (n+1)` where `n` is the number of
    /// continuous features (the last of which is conventionally the label).
    pub matrix: Vec<Vec<f64>>,
    /// The continuous features, in matrix order (offset by one for the
    /// intercept at index 0).
    pub features: Vec<AttrId>,
}

impl CovarMatrix {
    /// Dimension of the matrix (features + intercept).
    pub fn dim(&self) -> usize {
        self.matrix.len()
    }
}

/// Builds, executes and assembles the continuous covar matrix in one call:
/// the `prepare + execute + assemble` pipeline for the common case where the
/// sufficient statistics are needed exactly once. Keep the
/// [`covar_batch`] / [`assemble_covar_matrix`] pieces when the batch is
/// prepared ahead of time and re-executed (e.g. with changing dynamic sample
/// weights).
pub fn covar_matrix(engine: &Engine, spec: &CovarSpec) -> Result<CovarMatrix, EngineError> {
    let cb = covar_batch(spec);
    let result = engine.execute(&cb.batch)?;
    Ok(assemble_covar_matrix(&cb, &result))
}

/// Assembles the continuous covar matrix from an executed batch.
pub fn assemble_covar_matrix(cb: &CovarBatch, result: &BatchResult) -> CovarMatrix {
    let nc = cb.num_continuous;
    let dim = nc + 1;
    let mut matrix = vec![vec![0.0; dim]; dim];
    let count = result.queries[cb.count_query].scalar()[0];
    matrix[0][0] = count;
    for j in 0..nc {
        let s = result.queries[cb.degree1[j]].scalar()[0];
        matrix[0][j + 1] = s;
        matrix[j + 1][0] = s;
    }
    for &((j, k), q) in &cb.degree2 {
        if j < nc && k < nc {
            let s = result.queries[q].scalar()[0];
            matrix[j + 1][k + 1] = s;
            matrix[k + 1][j + 1] = s;
        }
    }
    CovarMatrix {
        count,
        matrix,
        features: cb.features[..nc].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_count_matches_the_formula() {
        let spec = CovarSpec {
            continuous: vec![AttrId(0), AttrId(1), AttrId(2)],
            categorical: vec![AttrId(3), AttrId(4)],
        };
        let cb = covar_batch(&spec);
        assert_eq!(cb.batch.len(), spec.expected_queries());
        // (n+1)(n+2)/2 aggregates in the paper's counting, n = 5.
        assert_eq!(cb.batch.len(), 21);
    }

    #[test]
    fn categorical_pairs_become_group_by_queries() {
        let spec = CovarSpec {
            continuous: vec![AttrId(0)],
            categorical: vec![AttrId(5), AttrId(6)],
        };
        let cb = covar_batch(&spec);
        // The (categorical, categorical) off-diagonal entry groups by both.
        let q = cb
            .degree2
            .iter()
            .find(|&&((j, k), _)| j == 1 && k == 2)
            .map(|&(_, q)| q)
            .unwrap();
        assert_eq!(cb.batch.queries[q].group_by, vec![AttrId(5), AttrId(6)]);
        // The (categorical, continuous) entry groups by the categorical one
        // and sums the continuous one.
        let q = cb
            .degree2
            .iter()
            .find(|&&((j, k), _)| j == 0 && k == 1)
            .map(|&(_, q)| q)
            .unwrap();
        assert_eq!(cb.batch.queries[q].group_by, vec![AttrId(5)]);
    }

    #[test]
    fn degree1_and_diagonal_shapes() {
        let spec = CovarSpec::continuous_only(vec![AttrId(0), AttrId(1)]);
        let cb = covar_batch(&spec);
        assert_eq!(cb.degree1.len(), 2);
        assert_eq!(cb.num_continuous, 2);
        // Diagonal continuous entries are SUM(X^2) queries with no group-by.
        let q = cb
            .degree2
            .iter()
            .find(|&&((j, k), _)| j == 0 && k == 0)
            .map(|&(_, q)| q)
            .unwrap();
        assert!(cb.batch.queries[q].group_by.is_empty());
    }
}
