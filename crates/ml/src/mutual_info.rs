//! Pairwise mutual information over the join.
//!
//! For every unordered pair of discrete attributes `(X_i, X_j)` the workload
//! needs the count queries grouped by every subset of `{X_i, X_j}` (Eq. 7 —
//! a 2-dimensional data cube with a count measure), from which the mutual
//! information is computed as
//! `MI(X_i, X_j) = Σ_{a,b} P(a,b) · log( P(a,b) / (P(a)·P(b)) )`.
//! The single total count and the per-attribute marginals are shared across
//! all pairs, which is exactly the sharing LMFAO exploits.

use lmfao_core::{BatchResult, Engine, EngineError};
use lmfao_data::{AttrId, FxHashMap, Value};
use lmfao_expr::{Aggregate, QueryBatch};

/// The mutual-information batch: which query computes which marginal.
#[derive(Debug, Clone)]
pub struct MutualInfoBatch {
    /// The generated queries.
    pub batch: QueryBatch,
    /// The attributes, in input order.
    pub attrs: Vec<AttrId>,
    /// Index of the total-count query.
    pub total_query: usize,
    /// Index of the single-attribute marginal query per attribute.
    pub marginal_query: Vec<usize>,
    /// Index of the pairwise joint query per `(i, j)` pair with `i < j`.
    pub joint_query: Vec<((usize, usize), usize)>,
}

/// Builds the batch of count queries needed for all pairwise mutual
/// information values over `attrs`.
pub fn mutual_info_batch(attrs: &[AttrId]) -> MutualInfoBatch {
    let mut batch = QueryBatch::new();
    let total_query = batch.push("mi_total", vec![], vec![Aggregate::count()]).0;
    let marginal_query: Vec<usize> = attrs
        .iter()
        .enumerate()
        .map(|(i, &a)| {
            batch
                .push(format!("mi_m{i}"), vec![a], vec![Aggregate::count()])
                .0
        })
        .collect();
    let mut joint_query = Vec::new();
    for i in 0..attrs.len() {
        for j in (i + 1)..attrs.len() {
            let q = batch
                .push(
                    format!("mi_j{i}_{j}"),
                    vec![attrs[i], attrs[j]],
                    vec![Aggregate::count()],
                )
                .0;
            joint_query.push(((i, j), q));
        }
    }
    MutualInfoBatch {
        batch,
        attrs: attrs.to_vec(),
        total_query,
        marginal_query,
        joint_query,
    }
}

/// The pairwise mutual-information matrix (symmetric, zero diagonal).
#[derive(Debug, Clone)]
pub struct MutualInfoMatrix {
    /// The attributes, in input order.
    pub attrs: Vec<AttrId>,
    /// `values[i][j]` is `MI(attrs[i], attrs[j])`.
    pub values: Vec<Vec<f64>>,
}

impl MutualInfoMatrix {
    /// The mutual information of a pair (by position in `attrs`).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.values[i][j]
    }
}

/// Builds, executes and post-processes the mutual-information batch in one
/// call over an engine.
pub fn mutual_info_matrix(
    engine: &Engine,
    attrs: &[AttrId],
) -> Result<MutualInfoMatrix, EngineError> {
    let mi = mutual_info_batch(attrs);
    let result = engine.execute(&mi.batch)?;
    Ok(compute_mutual_info(&mi, &result))
}

/// Computes all pairwise mutual-information values from an executed batch.
pub fn compute_mutual_info(mi: &MutualInfoBatch, result: &BatchResult) -> MutualInfoMatrix {
    let n = mi.attrs.len();
    let total = result.queries[mi.total_query].scalar()[0];
    let mut values = vec![vec![0.0; n]; n];
    if total <= 0.0 {
        return MutualInfoMatrix {
            attrs: mi.attrs.clone(),
            values,
        };
    }

    // Marginals: attribute value → count.
    let marginals: Vec<FxHashMap<Value, f64>> = mi
        .marginal_query
        .iter()
        .map(|&q| {
            result.queries[q]
                .iter()
                .map(|(k, v)| (k[0], v[0]))
                .collect()
        })
        .collect();

    for &((i, j), q) in &mi.joint_query {
        let mut value = 0.0;
        for (key, counts) in result.queries[q].iter() {
            let joint = counts[0];
            if joint <= 0.0 {
                continue;
            }
            let ci = marginals[i].get(&key[0]).copied().unwrap_or(0.0);
            let cj = marginals[j].get(&key[1]).copied().unwrap_or(0.0);
            if ci <= 0.0 || cj <= 0.0 {
                continue;
            }
            // (δ/α)·log(α·δ/(β·γ)) with α=total, β=ci, γ=cj, δ=joint (Section 2).
            value += joint / total * ((total * joint) / (ci * cj)).ln();
        }
        values[i][j] = value;
        values[j][i] = value;
    }
    MutualInfoMatrix {
        attrs: mi.attrs.clone(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_has_shared_marginals() {
        let attrs = vec![AttrId(0), AttrId(1), AttrId(2), AttrId(3)];
        let mi = mutual_info_batch(&attrs);
        // 1 total + 4 marginals + 6 joints.
        assert_eq!(mi.batch.len(), 11);
        assert_eq!(mi.marginal_query.len(), 4);
        assert_eq!(mi.joint_query.len(), 6);
    }

    /// Per-query `(key, count)` entries for the hand-constructed result.
    type QueryEntries = Vec<(usize, Vec<(Vec<Value>, f64)>)>;

    /// Hand-constructed batch result helper.
    fn fake_result(mi: &MutualInfoBatch, total: f64, entries: QueryEntries) -> BatchResult {
        use lmfao_core::{EngineStats, QueryResult};
        let mut queries: Vec<QueryResult> = mi
            .batch
            .queries
            .iter()
            .map(|q| QueryResult {
                name: q.name.clone(),
                group_by: q.group_by.clone(),
                num_aggregates: 1,
                data: FxHashMap::default(),
            })
            .collect();
        queries[mi.total_query].data.insert(vec![], vec![total]);
        for (qi, rows) in entries {
            for (k, v) in rows {
                queries[qi].data.insert(k, vec![v]);
            }
        }
        BatchResult {
            queries,
            stats: EngineStats::default(),
        }
    }

    #[test]
    fn independent_attributes_have_zero_mi() {
        let attrs = vec![AttrId(0), AttrId(1)];
        let mi = mutual_info_batch(&attrs);
        // Uniform independent joint: 4 cells of 25 each, marginals 50/50.
        let m0 = vec![(vec![Value::Int(0)], 50.0), (vec![Value::Int(1)], 50.0)];
        let m1 = m0.clone();
        let joint = vec![
            (vec![Value::Int(0), Value::Int(0)], 25.0),
            (vec![Value::Int(0), Value::Int(1)], 25.0),
            (vec![Value::Int(1), Value::Int(0)], 25.0),
            (vec![Value::Int(1), Value::Int(1)], 25.0),
        ];
        let result = fake_result(
            &mi,
            100.0,
            vec![
                (mi.marginal_query[0], m0),
                (mi.marginal_query[1], m1),
                (mi.joint_query[0].1, joint),
            ],
        );
        let matrix = compute_mutual_info(&mi, &result);
        assert!(matrix.get(0, 1).abs() < 1e-12);
    }

    #[test]
    fn perfectly_correlated_attributes_have_log2_mi() {
        let attrs = vec![AttrId(0), AttrId(1)];
        let mi = mutual_info_batch(&attrs);
        let m0 = vec![(vec![Value::Int(0)], 50.0), (vec![Value::Int(1)], 50.0)];
        let m1 = m0.clone();
        // X1 = X0 exactly.
        let joint = vec![
            (vec![Value::Int(0), Value::Int(0)], 50.0),
            (vec![Value::Int(1), Value::Int(1)], 50.0),
        ];
        let result = fake_result(
            &mi,
            100.0,
            vec![
                (mi.marginal_query[0], m0),
                (mi.marginal_query[1], m1),
                (mi.joint_query[0].1, joint),
            ],
        );
        let matrix = compute_mutual_info(&mi, &result);
        assert!((matrix.get(0, 1) - 2.0_f64.ln()).abs() < 1e-9);
        assert_eq!(matrix.get(0, 1), matrix.get(1, 0));
    }

    #[test]
    fn empty_join_gives_zero_matrix() {
        let attrs = vec![AttrId(0), AttrId(1)];
        let mi = mutual_info_batch(&attrs);
        let result = fake_result(&mi, 0.0, vec![]);
        let matrix = compute_mutual_info(&mi, &result);
        assert_eq!(matrix.get(0, 1), 0.0);
    }
}
