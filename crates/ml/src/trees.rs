//! Classification and regression trees (CART) over LMFAO aggregate batches.
//!
//! The CART algorithm grows the tree one node at a time. At every node it
//! evaluates candidate split conditions `X op t` by their cost over the
//! fragment of the training dataset that satisfies the conditions on the
//! node's root-to-leaf path (Section 2, Eq. 8–10):
//!
//! * regression trees minimize the variance, which needs `COUNT`, `SUM(y)`
//!   and `SUM(y²)` restricted by the path and candidate conditions;
//! * classification trees minimize the Gini index (or entropy), which needs
//!   the per-class counts.
//!
//! All those restrictions are expressed as products of Kronecker-delta
//! indicator functions, so the cost of every candidate split of a whole tree
//! level is *one LMFAO batch* — the "RT" workload of Table 2. Nothing is ever
//! materialized; each node issues a batch over the original join.
//!
//! ## Plan once, split many
//!
//! The candidate set (thresholds per continuous feature, categories per
//! categorical feature) is fixed for the whole tree; only the root-to-node
//! path conditions differ between nodes. [`train_decision_tree`] therefore
//! prepares **one** batch up front — the path restriction enters every
//! aggregate as a per-feature *dynamic* function
//! ([`ScalarFunction::Dynamic`]) — and every node of every level re-executes
//! that same [`lmfao_core::PreparedBatch`] after swapping the dynamic
//! closures, exactly the role dynamic linking plays in the paper's generated
//! code. [`train_decision_tree_replanned`] keeps the naïve strategy (embed
//! the path as static indicators and re-run the whole optimizer per node) as
//! the reference the prepared path is validated against: both produce
//! bit-identical trees.

use lmfao_core::{BatchResult, Engine, EngineError};
use lmfao_data::{AttrId, Value};
use lmfao_expr::{Aggregate, CmpOp, DynamicRegistry, ProductTerm, QueryBatch, ScalarFunction};

/// Whether the tree predicts a continuous value or a category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Regression tree: minimize variance, predict the mean label.
    Regression,
    /// Classification tree: minimize the Gini index, predict the majority
    /// class. The label must be a categorical attribute.
    Classification,
}

/// Configuration of the CART learner (defaults follow the paper's setup:
/// depth 4 ⇒ at most 31 nodes, 20 buckets per continuous attribute, at least
/// 1000 tuples to split a node).
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Learning task.
    pub task: TreeTask,
    /// Maximum tree depth (number of split levels).
    pub max_depth: usize,
    /// Minimum number of (joined) tuples required to split a node.
    pub min_samples: usize,
    /// Number of candidate thresholds per continuous attribute.
    pub buckets: usize,
}

impl TreeConfig {
    /// The paper's regression-tree setup.
    pub fn regression() -> Self {
        TreeConfig {
            task: TreeTask::Regression,
            max_depth: 4,
            min_samples: 1_000,
            buckets: 20,
        }
    }

    /// The paper's classification-tree setup.
    pub fn classification() -> Self {
        TreeConfig {
            task: TreeTask::Classification,
            max_depth: 4,
            min_samples: 1_000,
            buckets: 20,
        }
    }
}

/// A split condition on a continuous or categorical attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitCondition {
    /// The attribute the condition tests.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The threshold (continuous) or category (categorical).
    pub value: Value,
}

impl SplitCondition {
    fn to_indicator(&self) -> ScalarFunction {
        ScalarFunction::Indicator {
            attr: self.attr,
            op: self.op,
            threshold: self.value,
        }
    }

    /// The negated condition (the other branch of the split).
    pub fn negate(&self) -> SplitCondition {
        SplitCondition {
            attr: self.attr,
            op: self.op.negate(),
            value: self.value,
        }
    }
}

/// A node of a learned decision tree.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// A leaf carrying a prediction (mean label or majority class code).
    Leaf {
        /// The prediction.
        prediction: f64,
        /// Number of training tuples that reached the leaf.
        support: f64,
    },
    /// An inner node splitting on a condition.
    Split {
        /// The split condition; tuples satisfying it go left.
        condition: SplitCondition,
        /// Subtree for tuples satisfying the condition.
        left: Box<TreeNode>,
        /// Subtree for the remaining tuples.
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    /// Predicts the label of a tuple given an attribute-value lookup.
    pub fn predict<F>(&self, lookup: &F) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        match self {
            TreeNode::Leaf { prediction, .. } => *prediction,
            TreeNode::Split {
                condition,
                left,
                right,
            } => {
                if condition.op.apply(lookup(condition.attr), condition.value) {
                    left.predict(lookup)
                } else {
                    right.predict(lookup)
                }
            }
        }
    }

    /// Number of nodes in the (sub)tree.
    pub fn size(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Depth of the (sub)tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A learned decision tree together with bookkeeping about the batches that
/// built it.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// The root node.
    pub root: TreeNode,
    /// The learning task.
    pub task: TreeTask,
    /// The label attribute.
    pub label: AttrId,
    /// Total number of aggregate queries issued while learning.
    pub queries_issued: usize,
}

impl DecisionTree {
    /// Predicts the label of a tuple given an attribute-value lookup.
    pub fn predict<F>(&self, lookup: &F) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        self.root.predict(lookup)
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

/// Per-node statistics extracted from a batch result.
#[derive(Debug, Clone, Copy)]
struct NodeStats {
    count: f64,
    sum: f64,
    sum_sq: f64,
}

impl NodeStats {
    fn variance(&self) -> f64 {
        if self.count <= 0.0 {
            0.0
        } else {
            self.sum_sq - self.sum * self.sum / self.count
        }
    }
}

fn conditions_term(conditions: &[SplitCondition]) -> ProductTerm {
    ProductTerm::of(
        conditions
            .iter()
            .map(SplitCondition::to_indicator)
            .collect(),
    )
}

/// Builds the per-node measure aggregates restricted by the product `alpha`:
/// `[COUNT·α, SUM(y)·α, SUM(y²)·α]` for regression (Eq. 8), the per-class
/// count `Q(label; α)` for classification (Eq. 9).
fn measure_aggregates(task: TreeTask, label: AttrId, alpha: ProductTerm) -> Vec<Aggregate> {
    match task {
        TreeTask::Regression => vec![
            Aggregate::product(alpha.clone()),
            Aggregate::product(alpha.clone().times(ScalarFunction::Identity(label))),
            Aggregate::product(alpha.times(ScalarFunction::Power {
                attr: label,
                exponent: 2,
            })),
        ],
        TreeTask::Classification => vec![Aggregate::product(alpha)],
    }
}

/// Pushes one node query (parent or candidate) onto the batch and returns its
/// position. Classification queries group by the label to obtain per-class
/// counts.
fn push_node_query(
    batch: &mut QueryBatch,
    name: String,
    task: TreeTask,
    label: AttrId,
    alpha: ProductTerm,
) -> usize {
    let group_by = match task {
        TreeTask::Regression => vec![],
        TreeTask::Classification => vec![label],
    };
    batch
        .push(name, group_by, measure_aggregates(task, label, alpha))
        .0
}

/// Gini impurity mass (impurity × count) from per-class counts.
fn gini_mass(class_counts: &[f64]) -> f64 {
    let n: f64 = class_counts.iter().sum();
    if n <= 0.0 {
        return 0.0;
    }
    let gini = 1.0
        - class_counts
            .iter()
            .map(|&c| {
                let p = c / n;
                p * p
            })
            .sum::<f64>();
    gini * n
}

/// A frontier node while growing the tree.
struct FrontierNode {
    conditions: Vec<SplitCondition>,
    depth: usize,
}

/// Learns a decision tree over the engine's database. `features` are the
/// attributes that may be split on; `label` is the response (continuous for
/// regression, categorical for classification).
///
/// The candidate-split batch is planned **once** ([`Engine::prepare`]); every
/// node of the tree re-executes the same [`lmfao_core::PreparedBatch`] after
/// swapping the per-feature dynamic path conditions, so the optimizer layers
/// never run again during learning. The result is bit-identical to
/// [`train_decision_tree_replanned`].
pub fn train_decision_tree(
    engine: &Engine,
    features: &[AttrId],
    label: AttrId,
    config: &TreeConfig,
) -> Result<DecisionTree, EngineError> {
    let schema = engine.database().schema().clone();
    let splits = candidate_splits(engine, &schema, features, config);

    // One dynamic function per feature carries that feature's share of the
    // root-to-node path restriction; it starts as the neutral 1.0.
    let mut dynamics = DynamicRegistry::new();
    let dynamic_ids: Vec<usize> = features
        .iter()
        .map(|_| dynamics.register(|_| 1.0))
        .collect();
    let path_factors: Vec<ScalarFunction> = features
        .iter()
        .zip(&dynamic_ids)
        .map(|(&attr, &id)| ScalarFunction::Dynamic {
            id,
            attrs: vec![attr],
        })
        .collect();

    // The single batch shared by every node: the parent statistics plus one
    // query per candidate split, all restricted by the dynamic path product.
    let mut batch = QueryBatch::new();
    let parent_query = push_node_query(
        &mut batch,
        "parent".to_string(),
        config.task,
        label,
        ProductTerm::of(path_factors.clone()),
    );
    let mut left_queries = Vec::with_capacity(splits.len());
    for split in &splits {
        let alpha = ProductTerm::of(path_factors.clone()).times(split.to_indicator());
        let name = format!("split_{}", batch.len());
        left_queries.push(push_node_query(&mut batch, name, config.task, label, alpha));
    }

    let prepared = engine.prepare(&batch)?;
    let batch_len = batch.len();
    let is_classification = config.task == TreeTask::Classification;
    let mut queries_issued = 0usize;
    let mut evaluate = |conditions: &[SplitCondition]| {
        set_path_conditions(&mut dynamics, features, &dynamic_ids, conditions);
        queries_issued += batch_len;
        // A successfully prepared batch executes over its own database and
        // computes every view in dependency order; execution cannot fail.
        let result = prepared
            .execute(&dynamics)
            .expect("prepared batch must execute");
        evaluate_node(is_classification, parent_query, &left_queries, &result)
    };
    let root = grow(
        &mut evaluate,
        &splits,
        config,
        FrontierNode {
            conditions: vec![],
            depth: 0,
        },
    );
    Ok(DecisionTree {
        root,
        task: config.task,
        label,
        queries_issued,
    })
}

/// Learns a decision tree by re-running the whole optimizer for every node:
/// the path conditions are embedded as static indicator factors and a fresh
/// batch is planned and executed per node. This is the pre-prepared-batch
/// strategy, kept as the reference implementation the prepared path is
/// validated against (the two produce bit-identical trees) and as the
/// baseline of the `prepared_vs_replanned` benchmark.
pub fn train_decision_tree_replanned(
    engine: &Engine,
    features: &[AttrId],
    label: AttrId,
    config: &TreeConfig,
) -> Result<DecisionTree, EngineError> {
    let schema = engine.database().schema().clone();
    let splits = candidate_splits(engine, &schema, features, config);
    let is_classification = config.task == TreeTask::Classification;
    let mut queries_issued = 0usize;
    let mut evaluate = |conditions: &[SplitCondition]| {
        let mut batch = QueryBatch::new();
        let parent_query = push_node_query(
            &mut batch,
            "parent".to_string(),
            config.task,
            label,
            conditions_term(conditions),
        );
        let mut left_queries = Vec::with_capacity(splits.len());
        for split in &splits {
            let mut conds = conditions.to_vec();
            conds.push(split.clone());
            let name = format!("split_{}", batch.len());
            left_queries.push(push_node_query(
                &mut batch,
                name,
                config.task,
                label,
                conditions_term(&conds),
            ));
        }
        queries_issued += batch.len();
        let result = engine
            .execute(&batch)
            .expect("per-node batch must plan and execute");
        evaluate_node(is_classification, parent_query, &left_queries, &result)
    };
    let root = grow(
        &mut evaluate,
        &splits,
        config,
        FrontierNode {
            conditions: vec![],
            depth: 0,
        },
    );
    Ok(DecisionTree {
        root,
        task: config.task,
        label,
        queries_issued,
    })
}

/// Swaps the per-feature dynamic closures so the prepared batch computes the
/// statistics of the node reached through `conditions`: each feature's
/// closure evaluates the conjunction of the path conditions on that feature
/// (1.0 when they all hold, 0.0 otherwise; features without conditions stay
/// at the neutral 1.0).
fn set_path_conditions(
    dynamics: &mut DynamicRegistry,
    features: &[AttrId],
    dynamic_ids: &[usize],
    conditions: &[SplitCondition],
) {
    for (&attr, &id) in features.iter().zip(dynamic_ids) {
        let conds: Vec<SplitCondition> = conditions
            .iter()
            .filter(|c| c.attr == attr)
            .cloned()
            .collect();
        dynamics.replace(id, move |args: &[Value]| {
            if conds.iter().all(|c| c.op.apply(args[0], c.value)) {
                1.0
            } else {
                0.0
            }
        });
    }
}

/// Candidate thresholds of a continuous attribute: equi-width buckets between
/// the attribute's min and max in its base relation.
fn thresholds(engine: &Engine, attr: AttrId, buckets: usize) -> Vec<Value> {
    for rel in engine.database().relations() {
        if let Some(col) = rel.position(attr) {
            if let Some((lo, hi)) = rel.min_max(col) {
                let (lo, hi) = (lo.as_f64(), hi.as_f64());
                if hi <= lo {
                    return vec![];
                }
                return (1..=buckets)
                    .map(|b| Value::Double(lo + (hi - lo) * b as f64 / (buckets + 1) as f64))
                    .collect();
            }
        }
    }
    vec![]
}

/// Categories of a categorical attribute (from its base relation).
fn categories(engine: &Engine, attr: AttrId) -> Vec<Value> {
    for rel in engine.database().relations() {
        if let Some(col) = rel.position(attr) {
            let mut cats = rel.distinct_values(col);
            cats.sort();
            return cats;
        }
    }
    vec![]
}

/// The fixed candidate set of the whole tree: equi-width thresholds per
/// continuous feature, one equality condition per category of a categorical
/// feature, in feature order. Candidates depend only on the base relations,
/// never on the node, which is what makes the one-prepared-batch design
/// possible.
fn candidate_splits(
    engine: &Engine,
    schema: &lmfao_data::DatabaseSchema,
    features: &[AttrId],
    config: &TreeConfig,
) -> Vec<SplitCondition> {
    let mut out = Vec::new();
    for &attr in features {
        if schema.attr_type(attr).is_categorical() {
            for value in categories(engine, attr) {
                out.push(SplitCondition {
                    attr,
                    op: CmpOp::Eq,
                    value,
                });
            }
        } else {
            for value in thresholds(engine, attr, config.buckets) {
                out.push(SplitCondition {
                    attr,
                    op: CmpOp::Le,
                    value,
                });
            }
        }
    }
    out
}

/// Node statistics extracted from one executed batch: the parent's cost,
/// support and prediction plus the best candidate (cost, index into the
/// candidate list), shared by the prepared and the re-planned paths.
struct NodeEval {
    parent_cost: f64,
    parent_count: f64,
    parent_prediction: f64,
    best: Option<(f64, usize)>,
}

fn evaluate_node(
    is_classification: bool,
    parent_query: usize,
    left_queries: &[usize],
    result: &BatchResult,
) -> NodeEval {
    // Parent statistics.
    let parent_by_class: Vec<(Vec<Value>, f64)> = if is_classification {
        result.queries[parent_query]
            .iter()
            .map(|(k, v)| (k.clone(), v[0]))
            .collect()
    } else {
        Vec::new()
    };
    let (parent_cost, parent_count, parent_prediction) = if is_classification {
        let counts: Vec<f64> = parent_by_class.iter().map(|(_, c)| *c).collect();
        let total: f64 = counts.iter().sum();
        let majority = parent_by_class
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(k, _)| k[0].as_f64())
            .unwrap_or(0.0);
        (gini_mass(&counts), total, majority)
    } else {
        let s = result.queries[parent_query].scalar();
        let stats = NodeStats {
            count: s[0],
            sum: s[1],
            sum_sq: s[2],
        };
        (
            stats.variance(),
            stats.count,
            if stats.count > 0.0 {
                stats.sum / stats.count
            } else {
                0.0
            },
        )
    };

    // Pick the candidate with the smallest total cost (left + right), where
    // the right side is obtained by subtracting the left from the parent.
    let mut best: Option<(f64, usize)> = None;
    for (idx, &left_query) in left_queries.iter().enumerate() {
        let cost = if is_classification {
            let left_counts: Vec<f64> = parent_by_class
                .iter()
                .map(|(k, _)| {
                    result.queries[left_query]
                        .get(k)
                        .map(|v| v[0])
                        .unwrap_or(0.0)
                })
                .collect();
            let right_counts: Vec<f64> = parent_by_class
                .iter()
                .zip(&left_counts)
                .map(|((_, p), l)| (p - l).max(0.0))
                .collect();
            let left_total: f64 = left_counts.iter().sum();
            let right_total: f64 = right_counts.iter().sum();
            if left_total < 1.0 || right_total < 1.0 {
                continue;
            }
            gini_mass(&left_counts) + gini_mass(&right_counts)
        } else {
            let s = result.queries[left_query].scalar();
            let left = NodeStats {
                count: s[0],
                sum: s[1],
                sum_sq: s[2],
            };
            let parent = result.queries[parent_query].scalar();
            let right = NodeStats {
                count: parent[0] - left.count,
                sum: parent[1] - left.sum,
                sum_sq: parent[2] - left.sum_sq,
            };
            if left.count < 1.0 || right.count < 1.0 {
                continue;
            }
            left.variance() + right.variance()
        };
        if best.is_none_or(|(c, _)| cost < c) {
            best = Some((cost, idx));
        }
    }

    NodeEval {
        parent_cost,
        parent_count,
        parent_prediction,
        best,
    }
}

/// Grows one node (and recursively its subtrees) using `evaluate` to obtain
/// the node statistics for a given set of path conditions. The prepared and
/// the re-planned trainers differ only in what `evaluate` does.
fn grow<F>(
    evaluate: &mut F,
    splits: &[SplitCondition],
    config: &TreeConfig,
    node: FrontierNode,
) -> TreeNode
where
    F: FnMut(&[SplitCondition]) -> NodeEval,
{
    let eval = evaluate(&node.conditions);
    let make_leaf = || TreeNode::Leaf {
        prediction: eval.parent_prediction,
        support: eval.parent_count,
    };

    if node.depth >= config.max_depth || eval.parent_count < config.min_samples as f64 {
        return make_leaf();
    }

    match eval.best {
        Some((cost, idx)) if cost < eval.parent_cost - 1e-9 => {
            let condition = splits[idx].clone();
            let mut left_conditions = node.conditions.clone();
            left_conditions.push(condition.clone());
            let mut right_conditions = node.conditions;
            right_conditions.push(condition.negate());
            let left = grow(
                evaluate,
                splits,
                config,
                FrontierNode {
                    conditions: left_conditions,
                    depth: node.depth + 1,
                },
            );
            let right = grow(
                evaluate,
                splits,
                config,
                FrontierNode {
                    conditions: right_conditions,
                    depth: node.depth + 1,
                },
            );
            TreeNode::Split {
                condition,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        _ => make_leaf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_condition_negation_round_trips() {
        let c = SplitCondition {
            attr: AttrId(1),
            op: CmpOp::Le,
            value: Value::Double(5.0),
        };
        let n = c.negate();
        assert_eq!(n.op, CmpOp::Gt);
        assert_eq!(n.negate(), c);
    }

    #[test]
    fn gini_mass_is_zero_for_pure_nodes() {
        assert_eq!(gini_mass(&[10.0, 0.0]), 0.0);
        assert!(gini_mass(&[5.0, 5.0]) > 0.0);
        assert_eq!(gini_mass(&[]), 0.0);
    }

    #[test]
    fn node_stats_variance() {
        let s = NodeStats {
            count: 4.0,
            sum: 10.0,
            sum_sq: 30.0,
        };
        assert!((s.variance() - 5.0).abs() < 1e-12);
        assert_eq!(
            NodeStats {
                count: 0.0,
                sum: 0.0,
                sum_sq: 0.0
            }
            .variance(),
            0.0
        );
    }

    #[test]
    fn tree_node_predict_and_size() {
        let tree = TreeNode::Split {
            condition: SplitCondition {
                attr: AttrId(0),
                op: CmpOp::Le,
                value: Value::Double(1.0),
            },
            left: Box::new(TreeNode::Leaf {
                prediction: 10.0,
                support: 5.0,
            }),
            right: Box::new(TreeNode::Leaf {
                prediction: 20.0,
                support: 5.0,
            }),
        };
        assert_eq!(tree.size(), 3);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.predict(&|_| Value::Double(0.5)), 10.0);
        assert_eq!(tree.predict(&|_| Value::Double(3.0)), 20.0);
    }

    #[test]
    fn regression_aggregates_have_three_entries() {
        let aggs = measure_aggregates(TreeTask::Regression, AttrId(9), conditions_term(&[]));
        assert_eq!(aggs.len(), 3);
        let with_cond = measure_aggregates(
            TreeTask::Regression,
            AttrId(9),
            conditions_term(&[SplitCondition {
                attr: AttrId(1),
                op: CmpOp::Le,
                value: Value::Double(3.0),
            }]),
        );
        // Each aggregate gains the indicator factor.
        assert_eq!(with_cond[0].terms[0].factors.len(), 1);
        assert_eq!(with_cond[1].terms[0].factors.len(), 2);
        // Classification nodes only need the per-class count.
        let class = measure_aggregates(TreeTask::Classification, AttrId(9), conditions_term(&[]));
        assert_eq!(class.len(), 1);
    }
}
