//! Classification and regression trees (CART) over LMFAO aggregate batches.
//!
//! The CART algorithm grows the tree one node at a time. At every node it
//! evaluates candidate split conditions `X op t` by their cost over the
//! fragment of the training dataset that satisfies the conditions on the
//! node's root-to-leaf path (Section 2, Eq. 8–10):
//!
//! * regression trees minimize the variance, which needs `COUNT`, `SUM(y)`
//!   and `SUM(y²)` restricted by the path and candidate conditions;
//! * classification trees minimize the Gini index (or entropy), which needs
//!   the per-class counts.
//!
//! All those restrictions are expressed as products of Kronecker-delta
//! indicator functions, so the cost of every candidate split of a whole tree
//! level is *one LMFAO batch* — the "RT" workload of Table 2. Nothing is ever
//! materialized; each node issues a batch over the original join.

use lmfao_core::Engine;
use lmfao_data::{AttrId, Value};
use lmfao_expr::{Aggregate, CmpOp, ProductTerm, QueryBatch, ScalarFunction};

/// Whether the tree predicts a continuous value or a category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Regression tree: minimize variance, predict the mean label.
    Regression,
    /// Classification tree: minimize the Gini index, predict the majority
    /// class. The label must be a categorical attribute.
    Classification,
}

/// Configuration of the CART learner (defaults follow the paper's setup:
/// depth 4 ⇒ at most 31 nodes, 20 buckets per continuous attribute, at least
/// 1000 tuples to split a node).
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Learning task.
    pub task: TreeTask,
    /// Maximum tree depth (number of split levels).
    pub max_depth: usize,
    /// Minimum number of (joined) tuples required to split a node.
    pub min_samples: usize,
    /// Number of candidate thresholds per continuous attribute.
    pub buckets: usize,
}

impl TreeConfig {
    /// The paper's regression-tree setup.
    pub fn regression() -> Self {
        TreeConfig {
            task: TreeTask::Regression,
            max_depth: 4,
            min_samples: 1_000,
            buckets: 20,
        }
    }

    /// The paper's classification-tree setup.
    pub fn classification() -> Self {
        TreeConfig {
            task: TreeTask::Classification,
            max_depth: 4,
            min_samples: 1_000,
            buckets: 20,
        }
    }
}

/// A split condition on a continuous or categorical attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitCondition {
    /// The attribute the condition tests.
    pub attr: AttrId,
    /// The comparison operator.
    pub op: CmpOp,
    /// The threshold (continuous) or category (categorical).
    pub value: Value,
}

impl SplitCondition {
    fn to_indicator(&self) -> ScalarFunction {
        ScalarFunction::Indicator {
            attr: self.attr,
            op: self.op,
            threshold: self.value,
        }
    }

    /// The negated condition (the other branch of the split).
    pub fn negate(&self) -> SplitCondition {
        SplitCondition {
            attr: self.attr,
            op: self.op.negate(),
            value: self.value,
        }
    }
}

/// A node of a learned decision tree.
#[derive(Debug, Clone)]
pub enum TreeNode {
    /// A leaf carrying a prediction (mean label or majority class code).
    Leaf {
        /// The prediction.
        prediction: f64,
        /// Number of training tuples that reached the leaf.
        support: f64,
    },
    /// An inner node splitting on a condition.
    Split {
        /// The split condition; tuples satisfying it go left.
        condition: SplitCondition,
        /// Subtree for tuples satisfying the condition.
        left: Box<TreeNode>,
        /// Subtree for the remaining tuples.
        right: Box<TreeNode>,
    },
}

impl TreeNode {
    /// Predicts the label of a tuple given an attribute-value lookup.
    pub fn predict<F>(&self, lookup: &F) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        match self {
            TreeNode::Leaf { prediction, .. } => *prediction,
            TreeNode::Split {
                condition,
                left,
                right,
            } => {
                if condition.op.apply(lookup(condition.attr), condition.value) {
                    left.predict(lookup)
                } else {
                    right.predict(lookup)
                }
            }
        }
    }

    /// Number of nodes in the (sub)tree.
    pub fn size(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => 1 + left.size() + right.size(),
        }
    }

    /// Depth of the (sub)tree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            TreeNode::Leaf { .. } => 1,
            TreeNode::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A learned decision tree together with bookkeeping about the batches that
/// built it.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    /// The root node.
    pub root: TreeNode,
    /// The learning task.
    pub task: TreeTask,
    /// The label attribute.
    pub label: AttrId,
    /// Total number of aggregate queries issued while learning.
    pub queries_issued: usize,
}

impl DecisionTree {
    /// Predicts the label of a tuple given an attribute-value lookup.
    pub fn predict<F>(&self, lookup: &F) -> f64
    where
        F: Fn(AttrId) -> Value,
    {
        self.root.predict(lookup)
    }

    /// Number of nodes.
    pub fn size(&self) -> usize {
        self.root.size()
    }
}

/// Per-node statistics extracted from a batch result.
#[derive(Debug, Clone, Copy)]
struct NodeStats {
    count: f64,
    sum: f64,
    sum_sq: f64,
}

impl NodeStats {
    fn variance(&self) -> f64 {
        if self.count <= 0.0 {
            0.0
        } else {
            self.sum_sq - self.sum * self.sum / self.count
        }
    }
}

fn conditions_term(conditions: &[SplitCondition]) -> ProductTerm {
    ProductTerm::of(
        conditions
            .iter()
            .map(SplitCondition::to_indicator)
            .collect(),
    )
}

/// Builds the regression-tree aggregates `[COUNT·α, SUM(y)·α, SUM(y²)·α]`
/// restricted by `conditions`.
fn regression_aggregates(label: AttrId, conditions: &[SplitCondition]) -> Vec<Aggregate> {
    let alpha = conditions_term(conditions);
    let count = Aggregate::product(alpha.clone());
    let sum = Aggregate::product(alpha.clone().times(ScalarFunction::Identity(label)));
    let sum_sq = Aggregate::product(alpha.times(ScalarFunction::Power {
        attr: label,
        exponent: 2,
    }));
    vec![count, sum, sum_sq]
}

/// Builds the classification aggregates: the per-class counts restricted by
/// `conditions`, as the group-by query `Q(label; α)` (Eq. 9) plus the total
/// `Q(α)` (Eq. 10).
fn classification_aggregates(conditions: &[SplitCondition]) -> Vec<Aggregate> {
    vec![Aggregate::product(conditions_term(conditions))]
}

/// Gini impurity mass (impurity × count) from per-class counts.
fn gini_mass(class_counts: &[f64]) -> f64 {
    let n: f64 = class_counts.iter().sum();
    if n <= 0.0 {
        return 0.0;
    }
    let gini = 1.0
        - class_counts
            .iter()
            .map(|&c| {
                let p = c / n;
                p * p
            })
            .sum::<f64>();
    gini * n
}

/// One candidate split evaluated during learning.
#[derive(Debug, Clone)]
struct Candidate {
    condition: SplitCondition,
    left_query: usize,
}

/// A frontier node while growing the tree.
struct FrontierNode {
    conditions: Vec<SplitCondition>,
    depth: usize,
}

/// Learns a decision tree over the engine's database. `features` are the
/// attributes that may be split on; `label` is the response (continuous for
/// regression, categorical for classification).
pub fn train_decision_tree(
    engine: &Engine,
    features: &[AttrId],
    label: AttrId,
    config: &TreeConfig,
) -> DecisionTree {
    let schema = engine.database().schema().clone();
    let mut queries_issued = 0usize;
    let root = grow_node(
        engine,
        &schema,
        features,
        label,
        config,
        FrontierNode {
            conditions: vec![],
            depth: 0,
        },
        &mut queries_issued,
    );
    DecisionTree {
        root,
        task: config.task,
        label,
        queries_issued,
    }
}

/// Candidate thresholds of a continuous attribute: equi-width buckets between
/// the attribute's min and max in its base relation.
fn thresholds(engine: &Engine, attr: AttrId, buckets: usize) -> Vec<Value> {
    for rel in engine.database().relations() {
        if let Some(col) = rel.position(attr) {
            if let Some((lo, hi)) = rel.min_max(col) {
                let (lo, hi) = (lo.as_f64(), hi.as_f64());
                if hi <= lo {
                    return vec![];
                }
                return (1..=buckets)
                    .map(|b| Value::Double(lo + (hi - lo) * b as f64 / (buckets + 1) as f64))
                    .collect();
            }
        }
    }
    vec![]
}

/// Categories of a categorical attribute (from its base relation).
fn categories(engine: &Engine, attr: AttrId) -> Vec<Value> {
    for rel in engine.database().relations() {
        if let Some(col) = rel.position(attr) {
            let mut cats = rel.distinct_values(col);
            cats.sort();
            return cats;
        }
    }
    vec![]
}

#[allow(clippy::too_many_arguments)]
fn grow_node(
    engine: &Engine,
    schema: &lmfao_data::DatabaseSchema,
    features: &[AttrId],
    label: AttrId,
    config: &TreeConfig,
    node: FrontierNode,
    queries_issued: &mut usize,
) -> TreeNode {
    // Build one batch evaluating the parent statistics and every candidate
    // split of this node.
    let mut batch = QueryBatch::new();
    let is_classification = config.task == TreeTask::Classification;

    let parent_query = match config.task {
        TreeTask::Regression => {
            batch
                .push(
                    "parent",
                    vec![],
                    regression_aggregates(label, &node.conditions),
                )
                .0
        }
        TreeTask::Classification => {
            batch
                .push(
                    "parent",
                    vec![label],
                    classification_aggregates(&node.conditions),
                )
                .0
        }
    };

    let mut candidates: Vec<Candidate> = Vec::new();
    for &attr in features {
        let split_values: Vec<(CmpOp, Value)> = if schema.attr_type(attr).is_categorical() {
            categories(engine, attr)
                .into_iter()
                .map(|c| (CmpOp::Eq, c))
                .collect()
        } else {
            thresholds(engine, attr, config.buckets)
                .into_iter()
                .map(|t| (CmpOp::Le, t))
                .collect()
        };
        for (op, value) in split_values {
            let condition = SplitCondition { attr, op, value };
            let mut conds = node.conditions.clone();
            conds.push(condition.clone());
            let left_query = match config.task {
                TreeTask::Regression => {
                    batch
                        .push(
                            format!("split_{}", batch.len()),
                            vec![],
                            regression_aggregates(label, &conds),
                        )
                        .0
                }
                TreeTask::Classification => {
                    batch
                        .push(
                            format!("split_{}", batch.len()),
                            vec![label],
                            classification_aggregates(&conds),
                        )
                        .0
                }
            };
            candidates.push(Candidate {
                condition,
                left_query,
            });
        }
    }
    *queries_issued += batch.len();

    let result = engine.execute(&batch);

    // Parent statistics.
    let (parent_cost, parent_count, parent_prediction) = if is_classification {
        let counts: Vec<f64> = result.queries[parent_query]
            .iter()
            .map(|(_, v)| v[0])
            .collect();
        let keys: Vec<Vec<Value>> = result.queries[parent_query]
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        let total: f64 = counts.iter().sum();
        let majority = keys
            .iter()
            .zip(&counts)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(k, _)| k[0].as_f64())
            .unwrap_or(0.0);
        (gini_mass(&counts), total, majority)
    } else {
        let s = result.queries[parent_query].scalar();
        let stats = NodeStats {
            count: s[0],
            sum: s[1],
            sum_sq: s[2],
        };
        (
            stats.variance(),
            stats.count,
            if stats.count > 0.0 {
                stats.sum / stats.count
            } else {
                0.0
            },
        )
    };

    let make_leaf = || TreeNode::Leaf {
        prediction: parent_prediction,
        support: parent_count,
    };

    if node.depth >= config.max_depth || parent_count < config.min_samples as f64 {
        return make_leaf();
    }

    // Pick the candidate with the smallest total cost (left + right), where
    // the right side is obtained by subtracting the left from the parent.
    let mut best: Option<(f64, &Candidate)> = None;
    for cand in &candidates {
        let cost = if is_classification {
            let parent_by_class: Vec<(Vec<Value>, f64)> = result.queries[parent_query]
                .iter()
                .map(|(k, v)| (k.clone(), v[0]))
                .collect();
            let left_counts: Vec<f64> = parent_by_class
                .iter()
                .map(|(k, _)| {
                    result.queries[cand.left_query]
                        .get(k)
                        .map(|v| v[0])
                        .unwrap_or(0.0)
                })
                .collect();
            let right_counts: Vec<f64> = parent_by_class
                .iter()
                .zip(&left_counts)
                .map(|((_, p), l)| (p - l).max(0.0))
                .collect();
            let left_total: f64 = left_counts.iter().sum();
            let right_total: f64 = right_counts.iter().sum();
            if left_total < 1.0 || right_total < 1.0 {
                continue;
            }
            gini_mass(&left_counts) + gini_mass(&right_counts)
        } else {
            let s = result.queries[cand.left_query].scalar();
            let left = NodeStats {
                count: s[0],
                sum: s[1],
                sum_sq: s[2],
            };
            let parent = result.queries[parent_query].scalar();
            let right = NodeStats {
                count: parent[0] - left.count,
                sum: parent[1] - left.sum,
                sum_sq: parent[2] - left.sum_sq,
            };
            if left.count < 1.0 || right.count < 1.0 {
                continue;
            }
            left.variance() + right.variance()
        };
        if best.as_ref().is_none_or(|(c, _)| cost < *c) {
            best = Some((cost, cand));
        }
    }

    match best {
        Some((cost, cand)) if cost < parent_cost - 1e-9 => {
            let mut left_conditions = node.conditions.clone();
            left_conditions.push(cand.condition.clone());
            let mut right_conditions = node.conditions.clone();
            right_conditions.push(cand.condition.negate());
            let left = grow_node(
                engine,
                schema,
                features,
                label,
                config,
                FrontierNode {
                    conditions: left_conditions,
                    depth: node.depth + 1,
                },
                queries_issued,
            );
            let right = grow_node(
                engine,
                schema,
                features,
                label,
                config,
                FrontierNode {
                    conditions: right_conditions,
                    depth: node.depth + 1,
                },
                queries_issued,
            );
            TreeNode::Split {
                condition: cand.condition.clone(),
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        _ => make_leaf(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_condition_negation_round_trips() {
        let c = SplitCondition {
            attr: AttrId(1),
            op: CmpOp::Le,
            value: Value::Double(5.0),
        };
        let n = c.negate();
        assert_eq!(n.op, CmpOp::Gt);
        assert_eq!(n.negate(), c);
    }

    #[test]
    fn gini_mass_is_zero_for_pure_nodes() {
        assert_eq!(gini_mass(&[10.0, 0.0]), 0.0);
        assert!(gini_mass(&[5.0, 5.0]) > 0.0);
        assert_eq!(gini_mass(&[]), 0.0);
    }

    #[test]
    fn node_stats_variance() {
        let s = NodeStats {
            count: 4.0,
            sum: 10.0,
            sum_sq: 30.0,
        };
        assert!((s.variance() - 5.0).abs() < 1e-12);
        assert_eq!(
            NodeStats {
                count: 0.0,
                sum: 0.0,
                sum_sq: 0.0
            }
            .variance(),
            0.0
        );
    }

    #[test]
    fn tree_node_predict_and_size() {
        let tree = TreeNode::Split {
            condition: SplitCondition {
                attr: AttrId(0),
                op: CmpOp::Le,
                value: Value::Double(1.0),
            },
            left: Box::new(TreeNode::Leaf {
                prediction: 10.0,
                support: 5.0,
            }),
            right: Box::new(TreeNode::Leaf {
                prediction: 20.0,
                support: 5.0,
            }),
        };
        assert_eq!(tree.size(), 3);
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.predict(&|_| Value::Double(0.5)), 10.0);
        assert_eq!(tree.predict(&|_| Value::Double(3.0)), 20.0);
    }

    #[test]
    fn regression_aggregates_have_three_entries() {
        let aggs = regression_aggregates(AttrId(9), &[]);
        assert_eq!(aggs.len(), 3);
        let with_cond = regression_aggregates(
            AttrId(9),
            &[SplitCondition {
                attr: AttrId(1),
                op: CmpOp::Le,
                value: Value::Double(3.0),
            }],
        );
        // Each aggregate gains the indicator factor.
        assert_eq!(with_cond[0].terms[0].factors.len(), 1);
        assert_eq!(with_cond[1].terms[0].factors.len(), 2);
    }
}
