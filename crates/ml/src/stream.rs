//! Streaming model refresh over maintained aggregate batches.
//!
//! The covar-matrix workload is the flagship consumer of incremental
//! maintenance: the sufficient statistics of ridge linear regression are one
//! aggregate batch, so keeping that batch maintained keeps the *model*
//! trainable at any moment without touching the data again. A
//! [`StreamingCovar`] owns a [`MaintainedBatch`] over the covar batch:
//! [`StreamingCovar::apply`] absorbs a [`TableDelta`] with delta-sized work,
//! [`StreamingCovar::matrix`] projects the current sufficient statistics,
//! and [`StreamingCovar::train`] runs BGD over them (seconds of arithmetic
//! on a tiny matrix — the dataset is never rescanned).

use crate::covar::{assemble_covar_matrix, covar_batch, CovarBatch, CovarMatrix, CovarSpec};
use crate::linreg::{train_linear_regression, LinRegConfig, LinearRegressionModel};
use lmfao_core::{Engine, EngineError, MaintainedBatch, RefreshStats};
use lmfao_data::TableDelta;
use lmfao_expr::DynamicRegistry;

/// A covariance matrix kept fresh under base-relation updates.
#[derive(Debug)]
pub struct StreamingCovar {
    maintained: MaintainedBatch,
    cb: CovarBatch,
}

impl StreamingCovar {
    /// Prepares the covar batch for `spec`, computes it once, and retains it
    /// as maintained state.
    pub fn new(engine: &Engine, spec: &CovarSpec) -> Result<Self, EngineError> {
        let cb = covar_batch(spec);
        let maintained = engine
            .prepare(&cb.batch)?
            .into_maintained(&DynamicRegistry::new())?;
        Ok(StreamingCovar { maintained, cb })
    }

    /// Absorbs a delta against one base relation, refreshing only the
    /// affected views.
    pub fn apply(&mut self, delta: &TableDelta) -> Result<RefreshStats, EngineError> {
        self.maintained.commit(delta, &DynamicRegistry::new())
    }

    /// The current covariance matrix (continuous features + intercept),
    /// projected from the maintained views — no scan runs.
    pub fn matrix(&self) -> Result<CovarMatrix, EngineError> {
        Ok(assemble_covar_matrix(&self.cb, &self.maintained.results()?))
    }

    /// Trains ridge linear regression over the current sufficient statistics.
    pub fn train(&self, config: &LinRegConfig) -> Result<LinearRegressionModel, EngineError> {
        Ok(train_linear_regression(&self.matrix()?, config))
    }

    /// The underlying maintained batch (database access, refresh stats…).
    pub fn maintained(&self) -> &MaintainedBatch {
        &self.maintained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_core::EngineConfig;
    use lmfao_data::{AttrId, AttrType, Database, DatabaseSchema, Relation, RelationSchema, Value};
    use lmfao_jointree::{build_join_tree, Hypergraph, JoinTree};

    fn setup() -> (Database, JoinTree, Vec<AttrId>) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "R",
            &[
                ("k", AttrType::Int),
                ("x", AttrType::Double),
                ("y", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S", &[("k", AttrType::Int), ("w", AttrType::Double)]);
        let ids: Vec<AttrId> = ["k", "x", "y", "w"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![ids[0], ids[1], ids[2]]),
            (0..60)
                .map(|i| {
                    let x = (i % 13) as f64;
                    // y = 3x + 2 + deterministic integer noise.
                    vec![
                        Value::Int(i % 4),
                        Value::Double(x),
                        Value::Double(3.0 * x + 2.0 + (i % 3) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![ids[0], ids[3]]),
            (0..4)
                .map(|i| vec![Value::Int(i), Value::Double((i + 1) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree, ids)
    }

    #[test]
    fn streaming_matrix_matches_one_shot_recompute_under_updates() {
        let (db, tree, ids) = setup();
        let spec = CovarSpec::continuous_only(vec![ids[1], ids[2]]);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut stream = StreamingCovar::new(&engine, &spec).unwrap();

        // Mutate: append rows, retract one.
        let mut delta = TableDelta::for_relation(db.relation("R").unwrap());
        delta
            .insert(&[Value::Int(1), Value::Double(20.0), Value::Double(62.0)])
            .unwrap();
        delta
            .delete(&[Value::Int(0), Value::Double(0.0), Value::Double(2.0)])
            .unwrap();
        let stats = stream.apply(&delta).unwrap();
        assert!(stats.views_changed > 0);

        // One-shot recompute over the updated database.
        let fresh = Engine::new(
            stream.maintained().database().materialize(),
            tree,
            EngineConfig::default(),
        );
        let expected = crate::covar::covar_matrix(&fresh, &spec).unwrap();
        let got = stream.matrix().unwrap();
        assert_eq!(got.count, expected.count);
        for (gr, er) in got.matrix.iter().zip(&expected.matrix) {
            for (g, e) in gr.iter().zip(er) {
                assert!(
                    (g - e).abs() <= 1e-9 * e.abs().max(1.0),
                    "streamed {g} vs recomputed {e}"
                );
            }
        }
    }

    #[test]
    fn models_refresh_without_rescanning() {
        let (db, tree, ids) = setup();
        let spec = CovarSpec::continuous_only(vec![ids[1], ids[2]]);
        let engine = Engine::new(db.clone(), tree, EngineConfig::default());
        let mut stream = StreamingCovar::new(&engine, &spec).unwrap();
        let before = stream.train(&LinRegConfig::default()).unwrap();
        // The fit tracks y ≈ 3x + c already.
        assert!((before.theta[1] - 3.0).abs() < 0.2, "{:?}", before.theta);

        // Shift the relationship with heavy new points on a steeper line.
        let mut delta = TableDelta::for_relation(db.relation("R").unwrap());
        for i in 0..30i64 {
            let x = 20.0 + i as f64;
            delta
                .insert(&[Value::Int(i % 4), Value::Double(x), Value::Double(10.0 * x)])
                .unwrap();
        }
        stream.apply(&delta).unwrap();
        let after = stream.train(&LinRegConfig::default()).unwrap();
        assert!(
            after.theta[1] > before.theta[1] + 1.0,
            "slope must chase the new data: {} -> {}",
            before.theta[1],
            after.theta[1]
        );
    }
}
