//! Data cubes for exploratory analysis in data warehousing.
//!
//! A `k`-dimensional data cube over dimensions `S_k` with measures
//! `m_1, …, m_v` is the union of `2^k` group-by aggregates: one query per
//! subset of the dimensions, all with the same measure aggregations (Eq. 6).
//! The paper's DC workload uses three dimensions and five measures; the
//! builder here is general.

use lmfao_core::{BatchResult, Engine, EngineError};
use lmfao_data::{AttrId, FxHashMap, Value};
use lmfao_expr::{Aggregate, QueryBatch};

/// The data-cube batch: one query per subset of the dimensions.
#[derive(Debug, Clone)]
pub struct DataCubeBatch {
    /// The generated queries.
    pub batch: QueryBatch,
    /// The dimensions.
    pub dimensions: Vec<AttrId>,
    /// The measures (each aggregated with SUM).
    pub measures: Vec<AttrId>,
    /// For every subset of dimensions (encoded as a bitmask over
    /// `dimensions`), the index of its query.
    pub subset_query: Vec<(u32, usize)>,
}

/// Builds the `2^k` cube queries over `dimensions` with SUM aggregations of
/// `measures` (plus a COUNT per cell).
pub fn datacube_batch(dimensions: &[AttrId], measures: &[AttrId]) -> DataCubeBatch {
    assert!(
        dimensions.len() < 20,
        "cube dimensionality {} is unreasonably large",
        dimensions.len()
    );
    let mut batch = QueryBatch::new();
    let mut subset_query = Vec::new();
    for mask in 0..(1u32 << dimensions.len()) {
        let group_by: Vec<AttrId> = dimensions
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &a)| a)
            .collect();
        let mut aggregates = vec![Aggregate::count()];
        aggregates.extend(measures.iter().map(|&m| Aggregate::sum(m)));
        let q = batch.push(format!("cube_{mask:b}"), group_by, aggregates).0;
        subset_query.push((mask, q));
    }
    DataCubeBatch {
        batch,
        dimensions: dimensions.to_vec(),
        measures: measures.to_vec(),
        subset_query,
    }
}

/// A materialized data cube in the 1NF representation with a special `ALL`
/// value: every cell of every cuboid, keyed by one value (or `All`) per
/// dimension.
#[derive(Debug, Clone)]
pub struct DataCube {
    /// The dimensions.
    pub dimensions: Vec<AttrId>,
    /// The measures.
    pub measures: Vec<AttrId>,
    /// Cell key (one entry per dimension, `None` = ALL) → `[count, sums…]`.
    pub cells: FxHashMap<Vec<Option<Value>>, Vec<f64>>,
}

impl DataCube {
    /// Number of cells across all cuboids.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Looks up a cell.
    pub fn cell(&self, key: &[Option<Value>]) -> Option<&[f64]> {
        self.cells.get(key).map(Vec::as_slice)
    }
}

/// Builds, executes and assembles a data cube in one call over an engine.
pub fn compute_datacube(
    engine: &Engine,
    dimensions: &[AttrId],
    measures: &[AttrId],
) -> Result<DataCube, EngineError> {
    let cb = datacube_batch(dimensions, measures);
    let result = engine.execute(&cb.batch)?;
    Ok(assemble_cube(&cb, &result))
}

/// Assembles the 1NF cube representation from an executed batch.
pub fn assemble_cube(cube: &DataCubeBatch, result: &BatchResult) -> DataCube {
    let k = cube.dimensions.len();
    let mut cells = FxHashMap::default();
    for &(mask, q) in &cube.subset_query {
        let query = &result.queries[q];
        for (key, values) in query.iter() {
            let mut cell_key: Vec<Option<Value>> = vec![None; k];
            let mut pos = 0;
            for (i, slot) in cell_key.iter_mut().enumerate() {
                if mask & (1 << i) != 0 {
                    *slot = Some(key[pos]);
                    pos += 1;
                }
            }
            cells.insert(cell_key, values.clone());
        }
    }
    DataCube {
        dimensions: cube.dimensions.clone(),
        measures: cube.measures.clone(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_core::{EngineStats, QueryResult};

    #[test]
    fn cube_has_two_to_the_k_queries() {
        let cube = datacube_batch(&[AttrId(0), AttrId(1), AttrId(2)], &[AttrId(5), AttrId(6)]);
        assert_eq!(cube.batch.len(), 8);
        // Each query has COUNT + one SUM per measure.
        assert!(cube.batch.queries.iter().all(|q| q.num_aggregates() == 3));
        // The full cuboid groups by all three dimensions.
        let full = cube
            .subset_query
            .iter()
            .find(|&&(m, _)| m == 0b111)
            .unwrap();
        assert_eq!(cube.batch.queries[full.1].group_by.len(), 3);
    }

    #[test]
    #[should_panic(expected = "unreasonably large")]
    fn rejects_huge_cubes() {
        let dims: Vec<AttrId> = (0..25).map(AttrId).collect();
        datacube_batch(&dims, &[]);
    }

    #[test]
    fn assemble_places_all_markers() {
        let cube = datacube_batch(&[AttrId(0), AttrId(1)], &[]);
        // Build a fake result: the apex (mask 0) has one cell, the (X0) cuboid
        // has two cells.
        let mut queries: Vec<QueryResult> = cube
            .batch
            .queries
            .iter()
            .map(|q| QueryResult {
                name: q.name.clone(),
                group_by: q.group_by.clone(),
                num_aggregates: 1,
                data: FxHashMap::default(),
            })
            .collect();
        let apex = cube.subset_query.iter().find(|&&(m, _)| m == 0).unwrap().1;
        queries[apex].data.insert(vec![], vec![10.0]);
        let x0 = cube.subset_query.iter().find(|&&(m, _)| m == 1).unwrap().1;
        queries[x0].data.insert(vec![Value::Int(1)], vec![6.0]);
        queries[x0].data.insert(vec![Value::Int(2)], vec![4.0]);
        let result = BatchResult {
            queries,
            stats: EngineStats::default(),
        };
        let dc = assemble_cube(&cube, &result);
        assert_eq!(dc.num_cells(), 3);
        assert_eq!(dc.cell(&[None, None]).unwrap(), &[10.0]);
        assert_eq!(dc.cell(&[Some(Value::Int(1)), None]).unwrap(), &[6.0]);
        assert!(dc.cell(&[None, Some(Value::Int(9))]).is_none());
    }
}
