//! # lmfao-ml
//!
//! The analytics applications of the LMFAO paper, built on top of the batch
//! aggregate engine (`lmfao-core`):
//!
//! * [`covar`] / [`linreg`] — the covariance-matrix workload and ridge linear
//!   regression trained by batch gradient descent over it,
//! * [`trees`] — CART classification and regression trees whose per-node
//!   split costs are aggregate batches,
//! * [`mutual_info`] / [`chowliu`] — pairwise mutual information and Chow–Liu
//!   structure learning for tree-shaped Bayesian networks,
//! * [`datacube`] — k-dimensional data cubes,
//! * [`evaluate`] — RMSE / accuracy over held-out test data.
//!
//! Every application only issues group-by aggregate batches over the input
//! database; the training dataset (the join) is never materialized.

#![warn(missing_docs)]

pub mod chowliu;
pub mod covar;
pub mod datacube;
pub mod evaluate;
pub mod linreg;
pub mod mutual_info;
pub mod stream;
pub mod trees;

pub use chowliu::{chow_liu_tree, learn_chow_liu, ChowLiuTree};
pub use covar::{
    assemble_covar_matrix, covar_batch, covar_matrix, CovarBatch, CovarMatrix, CovarSpec,
};
pub use datacube::{assemble_cube, compute_datacube, datacube_batch, DataCube, DataCubeBatch};
pub use linreg::{
    train_linear_regression, train_linear_regression_over, LinRegConfig, LinearRegressionModel,
};
pub use mutual_info::{
    compute_mutual_info, mutual_info_batch, mutual_info_matrix, MutualInfoBatch, MutualInfoMatrix,
};
pub use stream::StreamingCovar;
pub use trees::{
    train_decision_tree, train_decision_tree_replanned, DecisionTree, SplitCondition, TreeConfig,
    TreeNode, TreeTask,
};

#[cfg(test)]
mod smoke {
    use super::*;
    use lmfao_data::AttrId;

    /// Exercises the crate-level batch builders every application and the
    /// bench harness call: sizes must match their closed-form counts.
    #[test]
    fn batch_builders_produce_expected_query_counts() {
        let attrs = vec![AttrId(0), AttrId(1), AttrId(2)];
        let spec = CovarSpec::continuous_only(attrs.clone());
        let cb = covar_batch(&spec);
        assert_eq!(cb.batch.len(), spec.expected_queries());
        assert!(!cb.batch.is_empty());

        // A k-dimensional cube has 2^k cuboids.
        let cube = datacube_batch(&attrs[..2], &attrs[2..]);
        assert_eq!(cube.batch.len(), 4);

        let mi = mutual_info_batch(&attrs);
        assert!(!mi.batch.is_empty());
    }
}
