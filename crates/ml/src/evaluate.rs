//! Model evaluation over materialized test data.
//!
//! The paper holds out the last month (Retailer/Favorita) or 15 days (TPC-DS)
//! of data as a test set and reports the error of the learned models over the
//! joined test tuples. Evaluation operates on a materialized test relation
//! (the test set is small; only training avoids materialization).

use crate::covar::{covar_matrix, CovarSpec};
use crate::linreg::LinearRegressionModel;
use crate::trees::DecisionTree;
use lmfao_core::{Engine, EngineError};
use lmfao_data::{AttrId, Relation};

/// Root-mean-square error of a prediction function over a test relation.
pub fn rmse<F>(test: &Relation, label: AttrId, predict: F) -> f64
where
    F: Fn(usize) -> f64,
{
    if test.is_empty() {
        return 0.0;
    }
    let label_col = test.position(label).expect("label must be a test column");
    let labels = test.column(label_col);
    let sse: f64 = (0..test.len())
        .map(|i| {
            let e = predict(i) - labels.f64_at(i);
            e * e
        })
        .sum();
    (sse / test.len() as f64).sqrt()
}

/// Classification accuracy of a prediction function over a test relation.
pub fn accuracy<F>(test: &Relation, label: AttrId, predict: F) -> f64
where
    F: Fn(usize) -> f64,
{
    if test.is_empty() {
        return 0.0;
    }
    let label_col = test.position(label).expect("label must be a test column");
    let labels = test.column(label_col);
    let correct = (0..test.len())
        .filter(|&i| (predict(i) - labels.f64_at(i)).abs() < 0.5)
        .count();
    correct as f64 / test.len() as f64
}

/// RMSE of a linear model over the full join, computed from aggregates only:
/// with `θ' = (θ0, …, θn, −1)` the residual sum of squares expands as
/// `θ'ᵀ C θ'` over the covar matrix of the model's features plus the label,
/// so not a single tuple of the join is materialized. Negative values caused
/// by floating-point cancellation are clamped to zero.
pub fn linreg_rmse_via_aggregates(
    engine: &Engine,
    model: &LinearRegressionModel,
    label: AttrId,
) -> Result<f64, EngineError> {
    let mut attrs = model.features.clone();
    attrs.push(label);
    let covar = covar_matrix(engine, &CovarSpec::continuous_only(attrs))?;
    if covar.count <= 0.0 {
        return Ok(0.0);
    }
    let mut theta = model.theta.clone();
    theta.push(-1.0);
    let mut rss = 0.0;
    for (tj, row) in theta.iter().zip(&covar.matrix) {
        for (tk, c) in theta.iter().zip(row) {
            rss += tj * c * tk;
        }
    }
    Ok((rss.max(0.0) / covar.count).sqrt())
}

/// RMSE of a decision tree over a materialized test relation.
pub fn tree_rmse(tree: &DecisionTree, test: &Relation, label: AttrId) -> f64 {
    rmse(test, label, |i| {
        tree.predict(&|a: AttrId| match test.position(a) {
            Some(col) => test.value(i, col),
            None => lmfao_data::Value::Null,
        })
    })
}

/// Accuracy of a classification tree over a materialized test relation.
pub fn tree_accuracy(tree: &DecisionTree, test: &Relation, label: AttrId) -> f64 {
    accuracy(test, label, |i| {
        tree.predict(&|a: AttrId| match test.position(a) {
            Some(col) => test.value(i, col),
            None => lmfao_data::Value::Null,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{RelationSchema, Value};

    fn test_relation() -> Relation {
        Relation::from_rows(
            RelationSchema::new("T", vec![AttrId(0), AttrId(1)]),
            vec![
                vec![Value::Double(1.0), Value::Double(2.0)],
                vec![Value::Double(2.0), Value::Double(4.0)],
                vec![Value::Double(3.0), Value::Double(6.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn perfect_predictions_have_zero_rmse_and_full_accuracy() {
        let t = test_relation();
        assert_eq!(rmse(&t, AttrId(1), |i| (i as f64 + 1.0) * 2.0), 0.0);
        assert_eq!(accuracy(&t, AttrId(1), |i| (i as f64 + 1.0) * 2.0), 1.0);
    }

    #[test]
    fn constant_predictions_have_expected_errors() {
        let t = test_relation();
        let r = rmse(&t, AttrId(1), |_| 4.0);
        assert!((r - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let a = accuracy(&t, AttrId(1), |_| 4.0);
        assert!((a - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_test_set_is_harmless() {
        let t = Relation::new(RelationSchema::new("E", vec![AttrId(0)]));
        assert_eq!(rmse(&t, AttrId(0), |_| 0.0), 0.0);
        assert_eq!(accuracy(&t, AttrId(0), |_| 0.0), 0.0);
    }
}
