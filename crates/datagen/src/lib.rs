//! # lmfao-datagen
//!
//! Scale-parameterized synthetic generators for the four datasets of the
//! LMFAO paper (Retailer, Favorita, Yelp, TPC-DS) plus the chain schema of
//! Example 3.3. The real datasets are proprietary or too large to ship; the
//! generators reproduce their schemas, join trees (Figure 6), key/foreign-key
//! structure, attribute types and skew so that every experiment can be
//! re-run end to end. See DESIGN.md for the substitution rationale.

#![warn(missing_docs)]

pub mod chain;
pub mod common;
pub mod favorita;
pub mod retailer;
pub mod tpcds;
pub mod updates;
pub mod yelp;

pub use common::{Dataset, Scale};
pub use updates::{fact_relation, transaction_stream, txn_relations, update_stream, UpdateMix};

/// All four paper datasets at the given scale, in the order of Table 1.
pub fn all_datasets(scale: Scale) -> Vec<Dataset> {
    vec![
        retailer::generate(scale),
        favorita::generate(scale),
        yelp::generate(scale),
        tpcds::generate(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generates_the_four_paper_datasets() {
        let ds = all_datasets(Scale::small());
        let names: Vec<&str> = ds.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["Retailer", "Favorita", "Yelp", "TPC-DS"]);
        for d in &ds {
            assert!(d.total_tuples() > 0);
            assert!(d.tree.num_nodes() >= 5);
        }
    }
}
