//! Synthetic Yelp dataset (star schema with many-to-many joins, Figure 6c).
//!
//! Relations:
//! * `Review(user_id, business_id, stars, useful, review_year)` — the fact table,
//! * `User(user_id, user_review_count, user_avg_stars, user_since, fans)`,
//! * `Business(business_id, bcity, bstate, bstars, breview_count, is_open)`,
//! * `Category(business_id, category)` — many-to-many,
//! * `Attribute(business_id, battribute)` — many-to-many.
//!
//! Join tree: Review — {User, Business}, Business — {Category, Attribute}.
//! Because a business has several categories and attributes, the join result
//! is much larger than the input database (Table 1's Yelp row), which is the
//! case where avoiding join materialization matters most.

use crate::common::{build_relation, skewed_index, tree_from_edges, Dataset, Scale};
use lmfao_data::{AttrType, Database, DatabaseSchema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates the synthetic Yelp dataset at the given scale.
pub fn generate(scale: Scale) -> Dataset {
    let mut rng = scale.rng();
    let n_reviews = scale.fact_rows.max(10);
    let n_users = (n_reviews / 10).clamp(10, 10_000);
    let n_businesses = (n_reviews / 20).clamp(5, 5_000);
    let n_categories = 20usize;
    let n_attributes = 15usize;

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "Review",
        &[
            ("user_id", AttrType::Int),
            ("business_id", AttrType::Int),
            ("stars", AttrType::Double),
            ("useful", AttrType::Int),
            ("review_year", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "User",
        &[
            ("user_id", AttrType::Int),
            ("user_review_count", AttrType::Double),
            ("user_avg_stars", AttrType::Double),
            ("user_since", AttrType::Int),
            ("fans", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Business",
        &[
            ("business_id", AttrType::Int),
            ("bcity", AttrType::Categorical),
            ("bstate", AttrType::Categorical),
            ("bstars", AttrType::Double),
            ("breview_count", AttrType::Double),
            ("is_open", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "Category",
        &[
            ("business_id", AttrType::Int),
            ("category", AttrType::Categorical),
        ],
    );
    schema.add_relation_with_attrs(
        "Attribute",
        &[
            ("business_id", AttrType::Int),
            ("battribute", AttrType::Categorical),
        ],
    );

    let review = build_relation(&schema, "Review", n_reviews, |_| {
        let user = skewed_index(&mut rng, n_users) as i64;
        let business = skewed_index(&mut rng, n_businesses) as i64;
        vec![
            Value::Int(user),
            Value::Int(business),
            Value::Double(rng.gen_range(1..=5) as f64),
            Value::Int(rng.gen_range(0..20)),
            Value::Int(rng.gen_range(2010..2018)),
        ]
    });
    let user = build_relation(&schema, "User", n_users, |i| {
        vec![
            Value::Int(i as i64),
            Value::Double(rng.gen_range(1.0..500.0f64).round()),
            Value::Double((rng.gen_range(1.0..5.0f64) * 100.0).round() / 100.0),
            Value::Int(rng.gen_range(2004..2017)),
            Value::Double(rng.gen_range(0.0..200.0f64).round()),
        ]
    });
    let business = build_relation(&schema, "Business", n_businesses, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..12)),
            Value::Cat(rng.gen_range(0..6)),
            Value::Double(rng.gen_range(1.0..5.0f64)),
            Value::Double(rng.gen_range(3.0..1000.0f64).round()),
            Value::Int(i64::from(rng.gen_bool(0.8))),
        ]
    });
    // Many-to-many: each business gets 2–5 categories and 1–4 attributes.
    // Per-business fanouts come from a dedicated seeded RNG that is replayed
    // during generation (once to size the relation, once to stream its rows),
    // so neither edge table is materialized in an intermediate vector.
    let fanout_total = |salt: u64, lo: usize, hi: usize| -> usize {
        let mut counts = StdRng::seed_from_u64(scale.seed ^ salt);
        (0..n_businesses).map(|_| counts.gen_range(lo..=hi)).sum()
    };
    let n_cat_rows = fanout_total(0xca7e, 2, 5);
    let mut cat_counts = StdRng::seed_from_u64(scale.seed ^ 0xca7e);
    let (mut cat_business, mut cat_left) = (0usize, 0usize);
    let category = build_relation(&schema, "Category", n_cat_rows, |_| {
        while cat_left == 0 {
            cat_left = cat_counts.gen_range(2..=5);
            cat_business += 1;
        }
        cat_left -= 1;
        vec![
            Value::Int((cat_business - 1) as i64),
            Value::Cat(rng.gen_range(0..n_categories) as u32),
        ]
    });
    let n_attr_rows = fanout_total(0xa77e, 1, 4);
    let mut attr_counts = StdRng::seed_from_u64(scale.seed ^ 0xa77e);
    let (mut attr_business, mut attr_left) = (0usize, 0usize);
    let attribute = build_relation(&schema, "Attribute", n_attr_rows, |_| {
        while attr_left == 0 {
            attr_left = attr_counts.gen_range(1..=4);
            attr_business += 1;
        }
        attr_left -= 1;
        vec![
            Value::Int((attr_business - 1) as i64),
            Value::Cat(rng.gen_range(0..n_attributes) as u32),
        ]
    });

    let db = Database::new(
        schema.clone(),
        vec![review, user, business, category, attribute],
    )
    .expect("yelp relations match the schema");
    let tree = tree_from_edges(
        &schema,
        &[
            ("Review", "User"),
            ("Review", "Business"),
            ("Business", "Category"),
            ("Business", "Attribute"),
        ],
    )
    .expect("yelp join tree is valid");

    Dataset {
        name: "Yelp".to_string(),
        db,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_jointree::natural_join;

    #[test]
    fn structure_matches_figure() {
        let ds = generate(Scale::small());
        assert_eq!(ds.db.schema().num_relations(), 5);
        let review = ds.tree.node_of_relation("Review").unwrap();
        let business = ds.tree.node_of_relation("Business").unwrap();
        assert_eq!(ds.tree.neighbors(review).len(), 2);
        assert_eq!(ds.tree.neighbors(business).len(), 3);
    }

    #[test]
    fn many_to_many_joins_blow_up_the_join_result() {
        let ds = generate(Scale::new(400, 3));
        // Join Business ⋈ Category ⋈ Attribute alone multiplies rows.
        let b = ds.db.relation("Business").unwrap();
        let c = ds.db.relation("Category").unwrap();
        let a = ds.db.relation("Attribute").unwrap();
        let j = natural_join(&[b, c, a], "BCA");
        assert!(j.len() > b.len() * 2, "join must be larger than the input");
    }

    #[test]
    fn deterministic() {
        let a = generate(Scale::new(200, 11));
        let b = generate(Scale::new(200, 11));
        assert_eq!(a.total_tuples(), b.total_tuples());
    }
}
