//! Synthetic TPC-DS excerpt (snowflake around Store Sales, Figure 6d).
//!
//! Ten relations, following the paper's excerpt of the TPC-DS store-sales
//! snowflake (strings turned into integer ids, null-free, irrelevant columns
//! dropped):
//!
//! * `StoreSales(customer, dateid, timeid, item, store, hdemo, quantity,
//!    salesprice, discount, netpaid)` — the fact table,
//! * `Customer(customer, caddress, cdemo, birth_year, preferred)` — the
//!   `preferred` flag is the classification label used in Table 5,
//! * `CustomerAddress(caddress, acity, astate, gmt_offset)`,
//! * `CustomerDemographics(cdemo, gender, marital, education, purchase_estimate)`,
//! * `DateDim(dateid, year, moy, dom, weekday)`,
//! * `TimeDim(timeid, hour, minute, shift)`,
//! * `ItemDim(item, icategory, ibrand, iprice)`,
//! * `StoreDim(store, scity, sstate, floor_space)`,
//! * `HouseholdDemographics(hdemo, incband, buy_potential, dep_count)`,
//! * `IncomeBand(incband, lower_bound, upper_bound)`.
//!
//! Join tree: StoreSales — {Customer, DateDim, TimeDim, ItemDim, StoreDim,
//! HouseholdDemographics}, Customer — {CustomerAddress, CustomerDemographics},
//! HouseholdDemographics — IncomeBand.

use crate::common::{build_relation, skewed_index, tree_from_edges, Dataset, Scale};
use lmfao_data::{AttrType, Database, DatabaseSchema, Value};
use rand::Rng;

/// Generates the synthetic TPC-DS excerpt at the given scale.
pub fn generate(scale: Scale) -> Dataset {
    let mut rng = scale.rng();
    let n_sales = scale.fact_rows.max(10);
    let n_customers = (n_sales / 20).clamp(10, 20_000);
    let n_addresses = (n_customers / 2).max(5);
    let n_cdemos = (n_customers / 4).max(5);
    let n_dates = (n_sales / 100).clamp(10, 1_000);
    let n_times = 48usize;
    let n_items = (n_sales / 40).clamp(10, 5_000);
    let n_stores = (n_sales / 2_000).clamp(3, 50);
    let n_hdemos = 72usize;
    let n_incbands = 20usize;

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "StoreSales",
        &[
            ("customer", AttrType::Int),
            ("dateid", AttrType::Int),
            ("timeid", AttrType::Int),
            ("item", AttrType::Int),
            ("store", AttrType::Int),
            ("hdemo", AttrType::Int),
            ("quantity", AttrType::Double),
            ("salesprice", AttrType::Double),
            ("discount", AttrType::Double),
            ("netpaid", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Customer",
        &[
            ("customer", AttrType::Int),
            ("caddress", AttrType::Int),
            ("cdemo", AttrType::Int),
            ("birth_year", AttrType::Int),
            ("preferred", AttrType::Categorical),
        ],
    );
    schema.add_relation_with_attrs(
        "CustomerAddress",
        &[
            ("caddress", AttrType::Int),
            ("acity", AttrType::Categorical),
            ("astate", AttrType::Categorical),
            ("gmt_offset", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "CustomerDemographics",
        &[
            ("cdemo", AttrType::Int),
            ("gender", AttrType::Categorical),
            ("marital", AttrType::Categorical),
            ("education", AttrType::Categorical),
            ("purchase_estimate", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "DateDim",
        &[
            ("dateid", AttrType::Int),
            ("year", AttrType::Int),
            ("moy", AttrType::Int),
            ("dom", AttrType::Int),
            ("weekday", AttrType::Categorical),
        ],
    );
    schema.add_relation_with_attrs(
        "TimeDim",
        &[
            ("timeid", AttrType::Int),
            ("hour", AttrType::Int),
            ("minute", AttrType::Int),
            ("shift", AttrType::Categorical),
        ],
    );
    schema.add_relation_with_attrs(
        "ItemDim",
        &[
            ("item", AttrType::Int),
            ("icategory", AttrType::Categorical),
            ("ibrand", AttrType::Categorical),
            ("iprice", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "StoreDim",
        &[
            ("store", AttrType::Int),
            ("scity", AttrType::Categorical),
            ("sstate", AttrType::Categorical),
            ("floor_space", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "HouseholdDemographics",
        &[
            ("hdemo", AttrType::Int),
            ("incband", AttrType::Int),
            ("buy_potential", AttrType::Categorical),
            ("dep_count", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "IncomeBand",
        &[
            ("incband", AttrType::Int),
            ("lower_bound", AttrType::Double),
            ("upper_bound", AttrType::Double),
        ],
    );

    // Customers: the "preferred" label correlates with demographics so the
    // classification tree of Table 5 has signal to find.
    let customer = build_relation(&schema, "Customer", n_customers, |i| {
        let cdemo = rng.gen_range(0..n_cdemos);
        let birth = rng.gen_range(1930..2000);
        let preferred = u32::from(cdemo.is_multiple_of(3) || (birth > 1980 && rng.gen_bool(0.6)));
        vec![
            Value::Int(i as i64),
            Value::Int(rng.gen_range(0..n_addresses) as i64),
            Value::Int(cdemo as i64),
            Value::Int(birth),
            Value::Cat(preferred),
        ]
    });
    let store_sales = build_relation(&schema, "StoreSales", n_sales, |_| {
        let qty = rng.gen_range(1..20) as f64;
        let price = (rng.gen_range(1.0..300.0f64) * 100.0).round() / 100.0;
        let discount = (price * rng.gen_range(0.0..0.3)).round();
        vec![
            Value::Int(skewed_index(&mut rng, n_customers) as i64),
            Value::Int(skewed_index(&mut rng, n_dates) as i64),
            Value::Int(rng.gen_range(0..n_times) as i64),
            Value::Int(skewed_index(&mut rng, n_items) as i64),
            Value::Int(rng.gen_range(0..n_stores) as i64),
            Value::Int(rng.gen_range(0..n_hdemos) as i64),
            Value::Double(qty),
            Value::Double(price),
            Value::Double(discount),
            Value::Double((qty * price - discount).max(0.0).round()),
        ]
    });
    let customer_address = build_relation(&schema, "CustomerAddress", n_addresses, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..25)),
            Value::Cat(rng.gen_range(0..10)),
            Value::Int(rng.gen_range(-8..-4)),
        ]
    });
    let customer_demographics = build_relation(&schema, "CustomerDemographics", n_cdemos, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat((i % 2) as u32),
            Value::Cat(rng.gen_range(0..5)),
            Value::Cat(rng.gen_range(0..7)),
            Value::Double(rng.gen_range(500.0..10_000.0f64).round()),
        ]
    });
    let date_dim = build_relation(&schema, "DateDim", n_dates, |i| {
        vec![
            Value::Int(i as i64),
            Value::Int(2000 + (i / 365) as i64),
            Value::Int(1 + ((i / 30) % 12) as i64),
            Value::Int(1 + (i % 28) as i64),
            Value::Cat((i % 7) as u32),
        ]
    });
    let time_dim = build_relation(&schema, "TimeDim", n_times, |i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i / 2) as i64),
            Value::Int(((i % 2) * 30) as i64),
            Value::Cat((i / 16) as u32),
        ]
    });
    let item_dim = build_relation(&schema, "ItemDim", n_items, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..10)),
            Value::Cat(rng.gen_range(0..50)),
            Value::Double((rng.gen_range(1.0..400.0f64) * 100.0).round() / 100.0),
        ]
    });
    let store_dim = build_relation(&schema, "StoreDim", n_stores, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..15)),
            Value::Cat(rng.gen_range(0..8)),
            Value::Double(rng.gen_range(5_000.0..90_000.0f64).round()),
        ]
    });
    let household_demographics = build_relation(&schema, "HouseholdDemographics", n_hdemos, |i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_incbands) as i64),
            Value::Cat(rng.gen_range(0..5)),
            Value::Int(rng.gen_range(0..6)),
        ]
    });
    let income_band = build_relation(&schema, "IncomeBand", n_incbands, |i| {
        let lower = (i * 10_000) as f64;
        vec![
            Value::Int(i as i64),
            Value::Double(lower),
            Value::Double(lower + 10_000.0),
        ]
    });

    let db = Database::new(
        schema.clone(),
        vec![
            store_sales,
            customer,
            customer_address,
            customer_demographics,
            date_dim,
            time_dim,
            item_dim,
            store_dim,
            household_demographics,
            income_band,
        ],
    )
    .expect("tpcds relations match the schema");
    let tree = tree_from_edges(
        &schema,
        &[
            ("StoreSales", "Customer"),
            ("Customer", "CustomerAddress"),
            ("Customer", "CustomerDemographics"),
            ("StoreSales", "DateDim"),
            ("StoreSales", "TimeDim"),
            ("StoreSales", "ItemDim"),
            ("StoreSales", "StoreDim"),
            ("StoreSales", "HouseholdDemographics"),
            ("HouseholdDemographics", "IncomeBand"),
        ],
    )
    .expect("tpcds join tree is valid");

    Dataset {
        name: "TPC-DS".to_string(),
        db,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_relations_snowflake() {
        let ds = generate(Scale::small());
        assert_eq!(ds.db.schema().num_relations(), 10);
        assert_eq!(ds.tree.num_nodes(), 10);
        let fact = ds.tree.node_of_relation("StoreSales").unwrap();
        assert_eq!(ds.tree.neighbors(fact).len(), 6);
        let customer = ds.tree.node_of_relation("Customer").unwrap();
        assert_eq!(ds.tree.neighbors(customer).len(), 3);
    }

    #[test]
    fn label_is_binary_and_present() {
        let ds = generate(Scale::small());
        let customer = ds.db.relation("Customer").unwrap();
        let col = customer.position(ds.attr("preferred")).unwrap();
        let distinct = customer.distinct_count(col);
        assert!((1..=2).contains(&distinct));
    }

    #[test]
    fn many_attributes_overall() {
        let ds = generate(Scale::small());
        assert!(ds.db.schema().num_attributes() >= 35);
        assert!(!ds
            .db
            .attributes_of_type(lmfao_data::AttrType::Categorical)
            .is_empty());
    }

    #[test]
    fn deterministic() {
        let a = generate(Scale::new(250, 2));
        let b = generate(Scale::new(250, 2));
        assert_eq!(a.total_tuples(), b.total_tuples());
        assert_eq!(
            a.db.relation("StoreSales").unwrap().row(3),
            b.db.relation("StoreSales").unwrap().row(3)
        );
    }
}
