//! Shared helpers for the synthetic dataset generators.
//!
//! The paper evaluates on four datasets (Retailer, Favorita, Yelp, TPC-DS)
//! that are either proprietary or too large to ship with a library. The
//! generators in this crate produce scale-parameterized synthetic databases
//! with the same schemas, join trees, key/foreign-key structure and attribute
//! types, so that every experiment of the paper can be re-run end to end.

use lmfao_data::{Database, DatabaseSchema, Relation, Value};
use lmfao_jointree::{join_tree_from_named_edges, Hypergraph, JoinTree, JoinTreeError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated dataset: its name, database and join tree (matching Figure 6
/// of the paper).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name, e.g. `"Retailer"`.
    pub name: String,
    /// The synthetic database.
    pub db: Database,
    /// The join tree used for all experiments over this dataset.
    pub tree: JoinTree,
}

impl Dataset {
    /// Looks up an attribute id by name.
    pub fn attr(&self, name: &str) -> lmfao_data::AttrId {
        self.db
            .schema()
            .attr_id(name)
            .unwrap_or_else(|_| panic!("dataset {} has no attribute `{name}`", self.name))
    }

    /// Total number of tuples across all relations (Table 1's "Tuples in
    /// Database" row).
    pub fn total_tuples(&self) -> usize {
        self.db.total_tuples()
    }
}

/// Scale factor of a generated dataset. `Scale::small()` is suitable for unit
/// tests; `Scale::benchmark()` for the benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Approximate number of tuples in the fact relation.
    pub fact_rows: usize,
    /// RNG seed, so datasets are reproducible.
    pub seed: u64,
}

impl Scale {
    /// A tiny dataset for unit tests (hundreds of fact tuples).
    pub fn small() -> Self {
        Scale {
            fact_rows: 500,
            seed: 42,
        }
    }

    /// A medium dataset for integration tests (thousands of fact tuples).
    pub fn medium() -> Self {
        Scale {
            fact_rows: 5_000,
            seed: 42,
        }
    }

    /// The default benchmark scale (tens of thousands of fact tuples — small
    /// enough for CI, large enough that the optimization layers matter).
    pub fn benchmark() -> Self {
        Scale {
            fact_rows: 50_000,
            seed: 42,
        }
    }

    /// A custom scale.
    pub fn new(fact_rows: usize, seed: u64) -> Self {
        Scale { fact_rows, seed }
    }

    /// This scale with `factor`× the fact rows (same seed). The scaling sweep
    /// uses it to grow the benchmark databases 10–100×; generation streams,
    /// so memory stays proportional to the output relations themselves.
    pub fn scaled(self, factor: usize) -> Self {
        Scale {
            fact_rows: self.fact_rows.saturating_mul(factor.max(1)),
            ..self
        }
    }

    /// The RNG for this scale.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Builds a relation by calling `make_row(i)` for `rows` rows.
pub fn build_relation<F>(
    schema: &DatabaseSchema,
    name: &str,
    rows: usize,
    mut make_row: F,
) -> Relation
where
    F: FnMut(usize) -> Vec<Value>,
{
    let rel_schema = schema
        .relation(name)
        .unwrap_or_else(|_| panic!("relation {name} not registered"))
        .clone();
    let mut rel = Relation::new(rel_schema);
    rel.reserve(rows);
    for i in 0..rows {
        rel.push_row_unchecked(&make_row(i));
    }
    rel
}

/// Builds the join tree of a schema from explicit parent—child edges.
pub fn tree_from_edges(
    schema: &DatabaseSchema,
    edges: &[(&str, &str)],
) -> Result<JoinTree, JoinTreeError> {
    join_tree_from_named_edges(&Hypergraph::from_schema(schema), edges)
}

/// A skewed integer in `[0, n)`: low values are more frequent, mimicking the
/// Zipf-like skew of real fact tables (popular items / stores / dates).
pub fn skewed_index<R: Rng>(rng: &mut R, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let u: f64 = rng.gen::<f64>();
    // Quadratic skew: density 2(1-x); cheap and monotone.
    let x = 1.0 - (1.0 - u).sqrt();
    ((x * n as f64) as usize).min(n - 1)
}

/// A uniformly random double in `[lo, hi)`.
pub fn uniform<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::AttrType;

    #[test]
    fn scale_constructors() {
        assert!(Scale::small().fact_rows < Scale::medium().fact_rows);
        assert!(Scale::medium().fact_rows < Scale::benchmark().fact_rows);
        assert_eq!(Scale::new(123, 7).fact_rows, 123);
        assert_eq!(Scale::new(123, 7).scaled(10).fact_rows, 1_230);
        assert_eq!(Scale::new(123, 7).scaled(0).fact_rows, 123);
        assert_eq!(Scale::new(123, 7).scaled(10).seed, 7);
    }

    #[test]
    fn skewed_index_is_in_range_and_skewed() {
        let mut rng = Scale::small().rng();
        let n = 100;
        let mut counts = vec![0usize; n];
        for _ in 0..10_000 {
            counts[skewed_index(&mut rng, n)] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 10_000));
        // The first decile must be visited more often than the last.
        let low: usize = counts[..10].iter().sum();
        let high: usize = counts[90..].iter().sum();
        assert!(low > high);
        assert_eq!(skewed_index(&mut rng, 0), 0);
        assert_eq!(skewed_index(&mut rng, 1), 0);
    }

    #[test]
    fn build_relation_produces_requested_rows() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int), ("b", AttrType::Double)]);
        let rel = build_relation(&schema, "R", 10, |i| {
            vec![Value::Int(i as i64), Value::Double(i as f64 * 0.5)]
        });
        assert_eq!(rel.len(), 10);
        assert_eq!(rel.value(3, 0), Value::Int(3));
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = Scale::new(10, 9).rng();
        let mut b = Scale::new(10, 9).rng();
        let xa: f64 = a.gen();
        let xb: f64 = b.gen();
        assert_eq!(xa, xb);
    }
}
