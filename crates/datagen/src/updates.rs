//! Update-stream generation: reproducible insert/delete mixes per dataset.
//!
//! Incremental maintenance needs workloads of *changes*, not just static
//! databases. [`update_stream`] turns any generated [`Dataset`] relation into
//! a deterministic sequence of [`TableDelta`]s: inserts clone existing tuples
//! (keeping every foreign key valid against the dimension tables) and
//! optionally perturb their non-key measure columns; deletes always remove a
//! tuple that currently exists, tracking the relation state across the whole
//! stream so every delta applies cleanly. [`UpdateMix`] captures the paper
//! datasets' natural mixes — fact tables are append-heavy, dimension tables
//! see occasional corrections. [`transaction_stream`] lifts per-relation
//! streams into multi-relation [`Transaction`]s ([`txn_relations`] names
//! each dataset's natural fact + dimension bundle) for the transactional
//! commit path.

use lmfao_data::{Column, TableDelta, Transaction, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::Dataset;

/// Shape of an update stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateMix {
    /// Total tuple operations across the stream.
    pub operations: usize,
    /// Operations bundled into one [`TableDelta`] (1 = single-tuple deltas).
    pub batch_size: usize,
    /// Fraction of operations that are inserts (the rest are deletes).
    pub insert_ratio: f64,
    /// Probability that an inserted tuple's float measures are re-drawn
    /// instead of cloned verbatim (exercises new value ranges).
    pub perturb_ratio: f64,
    /// RNG seed; streams are reproducible per (relation, mix).
    pub seed: u64,
}

impl UpdateMix {
    /// Fact-table traffic: mostly appends, single-tuple deltas.
    pub fn insert_heavy(operations: usize) -> Self {
        UpdateMix {
            operations,
            batch_size: 1,
            insert_ratio: 0.85,
            perturb_ratio: 0.5,
            seed: 42,
        }
    }

    /// Balanced churn: half inserts, half deletes.
    pub fn balanced(operations: usize) -> Self {
        UpdateMix {
            operations,
            batch_size: 1,
            insert_ratio: 0.5,
            perturb_ratio: 0.5,
            seed: 42,
        }
    }

    /// Dimension corrections: delete + re-insert pairs (batch size 2 with a
    /// 50/50 mix tends to produce them back to back).
    pub fn corrections(operations: usize) -> Self {
        UpdateMix {
            operations,
            batch_size: 2,
            insert_ratio: 0.5,
            perturb_ratio: 1.0,
            seed: 42,
        }
    }

    /// Builder: replaces the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: replaces the batch size (clamped to at least 1).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }
}

/// The paper datasets' fact relations — the default update target of each.
pub fn fact_relation(dataset: &str) -> &'static str {
    match dataset {
        "Retailer" => "Inventory",
        "Favorita" => "Sales",
        "Yelp" => "Review",
        "TPC-DS" => "StoreSales",
        other => panic!("no fact relation known for dataset `{other}`"),
    }
}

/// The relations a multi-relation transaction workload updates together:
/// the fact relation plus its joining dimension tables — the natural shape
/// of a business event that lands new facts *and* corrects the entities
/// they reference in one atomic change. The wider a transaction, the more
/// per-generation work (projection, certificate, snapshot publication) the
/// one-DAG-walk commit amortizes over a single publish.
pub fn txn_relations(dataset: &str) -> Vec<&'static str> {
    match dataset {
        "Retailer" => vec!["Inventory", "Location", "Census", "Item", "Weather"],
        "Favorita" => vec![
            "Sales",
            "Holidays",
            "StoRes",
            "Items",
            "Transactions",
            "Oil",
        ],
        "Yelp" => vec!["Review", "Business", "User", "Category", "Attribute"],
        "TPC-DS" => vec!["StoreSales", "ItemDim", "StoreDim", "DateDim", "Customer"],
        other => panic!("no transaction relations known for dataset `{other}`"),
    }
}

/// Generates a reproducible stream of multi-relation [`Transaction`]s
/// against `relations` of `ds`.
///
/// Each relation gets its own [`update_stream`] of `mix.operations`
/// operations (independently seeded from `mix.seed`, so relation streams
/// are uncorrelated but the whole ensemble is reproducible); transaction
/// `t` bundles the `t`-th delta of every stream that still has one. The
/// per-transaction changesets are [coalesced](Transaction::coalesce), so a
/// batched delta's same-row churn nets out instead of tripping the commit
/// path's conflict check, and transactions that fully cancel are dropped.
/// Applied in order, every transaction's deltas hit live tuples, exactly as
/// the single-relation streams guarantee.
pub fn transaction_stream(ds: &Dataset, relations: &[&str], mix: &UpdateMix) -> Vec<Transaction> {
    let streams: Vec<Vec<TableDelta>> = relations
        .iter()
        .enumerate()
        .map(|(i, relation)| {
            let per_relation = mix.seed(mix.seed.wrapping_add(0x9e37_79b9 * i as u64));
            update_stream(ds, relation, &per_relation)
        })
        .collect();
    let rounds = streams.iter().map(Vec::len).max().unwrap_or(0);
    let mut transactions = Vec::new();
    for round in 0..rounds {
        let mut txn = Transaction::new();
        for stream in &streams {
            if let Some(delta) = stream.get(round) {
                txn.push(delta.clone())
                    .expect("stream deltas agree on their relation's schema");
            }
        }
        let txn = txn.coalesce();
        if !txn.is_empty() {
            transactions.push(txn);
        }
    }
    transactions
}

/// Generates a reproducible stream of deltas against `relation` of `ds`.
///
/// Every delta in the stream applies cleanly when the deltas are applied in
/// order: deletes target tuples that exist at that point of the stream
/// (including tuples inserted earlier by the stream itself — a batched delta
/// may insert a tuple and delete that same tuple, which `Relation::apply`
/// cancels to a net no-op), and inserts derive from existing tuples so join
/// keys stay resolvable. Perturbed inserts re-draw only `Column::Float`
/// measures; key columns (ints, dictionary codes) are always cloned.
pub fn update_stream(ds: &Dataset, relation: &str, mix: &UpdateMix) -> Vec<TableDelta> {
    let rel = ds
        .db
        .relation(relation)
        .unwrap_or_else(|_| panic!("dataset {} has no relation `{relation}`", ds.name));
    let mut rng = StdRng::seed_from_u64(mix.seed ^ 0x5eed_cafe);
    // Live tuple multiset, tracked so deletes always hit. Base tuples are
    // referenced by index into the relation (not cloned), so the tracker
    // costs 8 bytes per base row at any scale; only rows the stream itself
    // inserts are materialized.
    #[derive(Clone, Copy)]
    enum LiveRef {
        Base(u32),
        Inserted(u32),
    }
    let mut inserted_rows: Vec<Vec<Value>> = Vec::new();
    let mut live: Vec<LiveRef> = (0..rel.len()).map(|i| LiveRef::Base(i as u32)).collect();
    let fetch = |r: LiveRef, inserted: &[Vec<Value>]| -> Vec<Value> {
        match r {
            LiveRef::Base(i) => rel.row(i as usize).to_vec(),
            LiveRef::Inserted(i) => inserted[i as usize].clone(),
        }
    };
    let float_cols: Vec<(usize, f64, f64)> = rel
        .columns()
        .iter()
        .enumerate()
        .filter_map(|(c, col)| match col {
            Column::Float(_) => rel.min_max(c).map(|(lo, hi)| (c, lo.as_f64(), hi.as_f64())),
            _ => None,
        })
        .collect();

    // Template for forced inserts when deletes drain the relation empty.
    let fallback_template: Option<Vec<Value>> = rel.rows().next().map(|r| r.to_vec());

    let mut deltas = Vec::new();
    let mut current = TableDelta::for_relation(rel);
    for _ in 0..mix.operations {
        let do_insert = live.is_empty() || rng.gen::<f64>() < mix.insert_ratio;
        if do_insert {
            let template = match live.is_empty() {
                // Drained relation: fall back to a pristine row (or end the
                // stream if the relation started empty).
                true => match &fallback_template {
                    Some(t) => t.clone(),
                    None => break,
                },
                false => fetch(live[rng.gen_range(0..live.len())], &inserted_rows),
            };
            let mut row = template;
            if !float_cols.is_empty() && rng.gen::<f64>() < mix.perturb_ratio {
                let &(c, lo, hi) = &float_cols[rng.gen_range(0..float_cols.len())];
                let span = (hi - lo).max(1.0);
                row[c] = Value::Double((lo + rng.gen::<f64>() * span).round());
            }
            current
                .insert(&row)
                .expect("template row matches the schema");
            live.push(LiveRef::Inserted(inserted_rows.len() as u32));
            inserted_rows.push(row);
        } else {
            let victim = rng.gen_range(0..live.len());
            let row = fetch(live.swap_remove(victim), &inserted_rows);
            current.delete(&row).expect("live row matches the schema");
        }
        if current.len() >= mix.batch_size {
            deltas.push(std::mem::replace(
                &mut current,
                TableDelta::for_relation(rel),
            ));
        }
    }
    if !current.is_empty() {
        deltas.push(current);
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::Scale;

    #[test]
    fn streams_apply_cleanly_to_every_dataset_fact_table() {
        for mut ds in crate::all_datasets(Scale::small()) {
            let relation = fact_relation(&ds.name);
            let before = ds.db.relation(relation).unwrap().len();
            let mix = UpdateMix::balanced(20).seed(7);
            let stream = update_stream(&ds, relation, &mix);
            assert_eq!(stream.iter().map(TableDelta::len).sum::<usize>(), 20);
            let mut inserted = 0isize;
            for delta in &stream {
                inserted += delta.num_inserts() as isize - delta.num_deletes() as isize;
                ds.db
                    .relation_mut(relation)
                    .unwrap()
                    .apply(delta)
                    .expect("stream deltas must apply in order");
            }
            let after = ds.db.relation(relation).unwrap().len();
            assert_eq!(after as isize, before as isize + inserted, "{}", ds.name);
        }
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let ds = crate::retailer::generate(Scale::small());
        let mix = UpdateMix::insert_heavy(10).seed(3);
        let a = update_stream(&ds, "Inventory", &mix);
        let b = update_stream(&ds, "Inventory", &mix);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.signs(), y.signs());
            let (xr, yr) = (x.rows(), y.rows());
            for i in 0..xr.len() {
                assert_eq!(xr.row(i).to_vec(), yr.row(i).to_vec());
            }
        }
        let c = update_stream(&ds, "Inventory", &UpdateMix::insert_heavy(10).seed(4));
        assert!(a.iter().zip(&c).any(|(x, y)| {
            x.signs() != y.signs()
                || (0..x.rows().len()).any(|i| x.rows().row(i).to_vec() != y.rows().row(i).to_vec())
        }));
    }

    #[test]
    fn batching_groups_operations() {
        let ds = crate::retailer::generate(Scale::small());
        let mix = UpdateMix::corrections(10);
        let stream = update_stream(&ds, "Inventory", &mix);
        assert!(stream.iter().all(|d| d.len() <= 2));
        assert_eq!(stream.iter().map(TableDelta::len).sum::<usize>(), 10);
    }

    #[test]
    fn insert_heavy_streams_grow_the_relation() {
        let ds = crate::favorita::generate(Scale::small());
        let stream = update_stream(&ds, fact_relation("Favorita"), &UpdateMix::insert_heavy(40));
        let ins: usize = stream.iter().map(TableDelta::num_inserts).sum();
        let del: usize = stream.iter().map(TableDelta::num_deletes).sum();
        assert!(ins > del * 2);
    }

    #[test]
    fn delete_heavy_streams_survive_draining_the_relation() {
        // More delete-biased operations than live tuples: the generator must
        // fall back to a pristine template instead of panicking on an empty
        // live set, and every delta must still apply in order.
        let mut ds = crate::retailer::generate(Scale::new(10, 1));
        // Shrink the fact table to 3 rows so deletes drain it quickly.
        let rel = ds.db.relation("Inventory").unwrap();
        let small = lmfao_data::Relation::from_rows(
            rel.schema().clone(),
            rel.rows().take(3).map(|r| r.to_vec()).collect(),
        )
        .unwrap();
        *ds.db.relation_mut("Inventory").unwrap() = small;
        let mix = UpdateMix {
            operations: 40,
            batch_size: 1,
            insert_ratio: 0.1,
            perturb_ratio: 0.0,
            seed: 2,
        };
        let stream = update_stream(&ds, "Inventory", &mix);
        assert_eq!(stream.iter().map(TableDelta::len).sum::<usize>(), 40);
        for delta in &stream {
            ds.db
                .relation_mut("Inventory")
                .unwrap()
                .apply(delta)
                .unwrap();
        }
    }

    #[test]
    fn batched_streams_with_same_tuple_churn_apply_cleanly() {
        // corrections() produces delete+insert batches; with a tiny relation
        // a batch can insert a fresh tuple and delete it again — the apply
        // side cancels the pair. Try several seeds to exercise the case.
        let ds = crate::retailer::generate(Scale::new(10, 1));
        for seed in 0..6 {
            let mut db = ds.db.clone();
            let stream = update_stream(&ds, "Item", &UpdateMix::corrections(12).seed(seed));
            for delta in &stream {
                db.relation_mut("Item")
                    .unwrap()
                    .apply(delta)
                    .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no fact relation")]
    fn unknown_dataset_has_no_fact_relation() {
        fact_relation("Unknown");
    }

    #[test]
    #[should_panic(expected = "no transaction relations")]
    fn unknown_dataset_has_no_txn_relations() {
        txn_relations("Unknown");
    }

    #[test]
    fn transaction_streams_apply_cleanly_to_every_dataset() {
        for mut ds in crate::all_datasets(Scale::small()) {
            let relations = txn_relations(&ds.name);
            for relation in &relations {
                assert!(ds.db.relation(relation).is_ok(), "{}: {relation}", ds.name);
            }
            let stream = transaction_stream(&ds, &relations, &UpdateMix::balanced(12).seed(5));
            assert!(!stream.is_empty(), "{}", ds.name);
            assert!(
                stream.iter().any(|t| t.num_relations() == relations.len()),
                "{}: some transaction must span all {} relations",
                ds.name,
                relations.len()
            );
            for txn in &stream {
                assert!(
                    txn.conflict().is_none(),
                    "{}: coalesced streams commit",
                    ds.name
                );
                for delta in txn.deltas() {
                    ds.db
                        .relation_mut(delta.relation())
                        .unwrap()
                        .apply(delta)
                        .expect("transaction deltas must apply in order");
                }
            }
        }
    }

    #[test]
    fn transaction_streams_are_deterministic_per_seed() {
        let ds = crate::retailer::generate(Scale::small());
        let relations = txn_relations("Retailer");
        let mix = UpdateMix::corrections(8).seed(11);
        let a = transaction_stream(&ds, &relations, &mix);
        let b = transaction_stream(&ds, &relations, &mix);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.len(), y.len());
            assert_eq!(
                x.relations().collect::<Vec<_>>(),
                y.relations().collect::<Vec<_>>()
            );
        }
    }
}
