//! Synthetic Retailer dataset (snowflake schema, Figure 6a).
//!
//! Relations:
//! * `Inventory(locn, dateid, ksn, inventoryunits)` — the fact table,
//! * `Location(locn, zip, rgn_cd, clim_zn_nbr, tot_area_sq_ft, sell_area_sq_ft,
//!    avghhi, distance_comp)`,
//! * `Census(zip, population, white, asian, pacific, black, medianage,
//!    occupiedhouseunits, houseunits, families, households, husbwife, males,
//!    females, householdschildren, hispanic)`,
//! * `Weather(locn, dateid, rain, snow, maxtemp, mintemp, meanwind, thunder)`,
//! * `Item(ksn, subcategory, category, categorycluster, prices)`.
//!
//! Join tree: Inventory — {Location, Weather, Item}, Location — Census. The
//! fact table has few attributes and most aggregates are computed over the
//! dimension tables, which is why the paper sees the largest speedups here.

use crate::common::{build_relation, skewed_index, tree_from_edges, Dataset, Scale};
use lmfao_data::{AttrType, Database, DatabaseSchema, Value};
use rand::Rng;

/// Generates the synthetic Retailer dataset at the given scale.
pub fn generate(scale: Scale) -> Dataset {
    let mut rng = scale.rng();
    let n_inventory = scale.fact_rows.max(10);
    let n_locations = (n_inventory / 800).clamp(5, 200);
    let n_dates = (n_inventory / 100).clamp(10, 1_500);
    let n_items = (n_inventory / 50).clamp(20, 5_000);
    let n_zips = (n_locations / 2).max(3);

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "Inventory",
        &[
            ("locn", AttrType::Int),
            ("dateid", AttrType::Int),
            ("ksn", AttrType::Int),
            ("inventoryunits", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Location",
        &[
            ("locn", AttrType::Int),
            ("zip", AttrType::Int),
            ("rgn_cd", AttrType::Categorical),
            ("clim_zn_nbr", AttrType::Categorical),
            ("tot_area_sq_ft", AttrType::Double),
            ("sell_area_sq_ft", AttrType::Double),
            ("avghhi", AttrType::Double),
            ("distance_comp", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Census",
        &[
            ("zip", AttrType::Int),
            ("population", AttrType::Double),
            ("white", AttrType::Double),
            ("asian", AttrType::Double),
            ("pacific", AttrType::Double),
            ("black", AttrType::Double),
            ("medianage", AttrType::Double),
            ("occupiedhouseunits", AttrType::Double),
            ("houseunits", AttrType::Double),
            ("families", AttrType::Double),
            ("households", AttrType::Double),
            ("husbwife", AttrType::Double),
            ("males", AttrType::Double),
            ("females", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Weather",
        &[
            ("locn", AttrType::Int),
            ("dateid", AttrType::Int),
            ("rain", AttrType::Int),
            ("snow", AttrType::Int),
            ("maxtemp", AttrType::Double),
            ("mintemp", AttrType::Double),
            ("meanwind", AttrType::Double),
            ("thunder", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "Item",
        &[
            ("ksn", AttrType::Int),
            ("subcategory", AttrType::Categorical),
            ("category", AttrType::Categorical),
            ("categorycluster", AttrType::Categorical),
            ("prices", AttrType::Double),
        ],
    );

    let inventory = build_relation(&schema, "Inventory", n_inventory, |_| {
        let locn = skewed_index(&mut rng, n_locations) as i64;
        let date = skewed_index(&mut rng, n_dates) as i64;
        let ksn = skewed_index(&mut rng, n_items) as i64;
        let units = 1.0 + (ksn % 17) as f64 + rng.gen_range(0.0..30.0) + (locn % 5) as f64;
        vec![
            Value::Int(locn),
            Value::Int(date),
            Value::Int(ksn),
            Value::Double(units.round()),
        ]
    });
    let location = build_relation(&schema, "Location", n_locations, |i| {
        vec![
            Value::Int(i as i64),
            Value::Int((i % n_zips) as i64),
            Value::Cat(rng.gen_range(0..6)),
            Value::Cat(rng.gen_range(0..9)),
            Value::Double(rng.gen_range(40_000.0..200_000.0f64).round()),
            Value::Double(rng.gen_range(20_000.0..120_000.0f64).round()),
            Value::Double(rng.gen_range(30_000.0..110_000.0f64).round()),
            Value::Double(rng.gen_range(0.5..25.0)),
        ]
    });
    let census = build_relation(&schema, "Census", n_zips, |i| {
        let pop = rng.gen_range(5_000.0..90_000.0f64).round();
        let mut row = vec![Value::Int(i as i64), Value::Double(pop)];
        for _ in 0..12 {
            row.push(Value::Double((pop * rng.gen_range(0.05..0.6)).round()));
        }
        row
    });
    // Weather: one row per (locn, date) pair, like the real dataset. The
    // key grid is enumerated arithmetically instead of materializing a
    // locations × dates key vector, so generation stays streaming at any
    // scale factor.
    let weather = build_relation(&schema, "Weather", n_locations * n_dates, |i| {
        let locn = (i / n_dates) as i64;
        let date = (i % n_dates) as i64;
        let max = rng.gen_range(30.0..100.0f64).round();
        vec![
            Value::Int(locn),
            Value::Int(date),
            Value::Int(i64::from(rng.gen_bool(0.3))),
            Value::Int(i64::from(rng.gen_bool(0.05))),
            Value::Double(max),
            Value::Double(max - rng.gen_range(5.0..30.0f64).round()),
            Value::Double(rng.gen_range(0.0..25.0f64).round()),
            Value::Int(i64::from(rng.gen_bool(0.1))),
        ]
    });
    let item = build_relation(&schema, "Item", n_items, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..40)),
            Value::Cat(rng.gen_range(0..12)),
            Value::Cat(rng.gen_range(0..5)),
            Value::Double((rng.gen_range(0.5..100.0f64) * 100.0).round() / 100.0),
        ]
    });

    let db = Database::new(
        schema.clone(),
        vec![inventory, location, census, weather, item],
    )
    .expect("retailer relations match the schema");
    let tree = tree_from_edges(
        &schema,
        &[
            ("Inventory", "Location"),
            ("Location", "Census"),
            ("Inventory", "Weather"),
            ("Inventory", "Item"),
        ],
    )
    .expect("retailer join tree is valid");

    Dataset {
        name: "Retailer".to_string(),
        db,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snowflake_structure() {
        let ds = generate(Scale::small());
        assert_eq!(ds.db.schema().num_relations(), 5);
        let inv = ds.tree.node_of_relation("Inventory").unwrap();
        let loc = ds.tree.node_of_relation("Location").unwrap();
        let census = ds.tree.node_of_relation("Census").unwrap();
        assert_eq!(ds.tree.neighbors(inv).len(), 3);
        // Census hangs off Location, not off the fact table.
        assert_eq!(ds.tree.neighbors(census), &[loc]);
    }

    #[test]
    fn fact_table_has_few_attributes() {
        let ds = generate(Scale::small());
        assert_eq!(ds.db.relation("Inventory").unwrap().arity(), 4);
        assert!(ds.db.relation("Census").unwrap().arity() >= 14);
    }

    #[test]
    fn keys_resolve_along_the_snowflake() {
        let ds = generate(Scale::small());
        let loc = ds.db.relation("Location").unwrap();
        let zip_col = loc.position(ds.attr("zip")).unwrap();
        let n_zips = ds.db.relation("Census").unwrap().len() as i64;
        for i in 0..loc.len() {
            assert!(loc.value(i, zip_col).as_i64() < n_zips);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(Scale::new(300, 5));
        let b = generate(Scale::new(300, 5));
        assert_eq!(
            a.db.relation("Inventory").unwrap().row(7),
            b.db.relation("Inventory").unwrap().row(7)
        );
    }
}
