//! The chain schema of Example 3.3: `S_k(X_k, X_{k+1})` for `k ∈ [n-1]`.
//!
//! The paper uses this schema to show why different queries should be rooted
//! at different nodes: computing all `Q_i(X_i; COUNT)` over a single root
//! requires views of quadratic size, whereas rooting `Q_i` at `S_i` keeps
//! every view linear. The `multiroot_chain` benchmark regenerates that
//! comparison.

use crate::common::{build_relation, Dataset, Scale};
use lmfao_data::{AttrType, Database, DatabaseSchema, Value};
use lmfao_jointree::{build_join_tree, Hypergraph};
use rand::Rng;

/// Generates a chain database with `n` attributes `X1..Xn` (hence `n-1`
/// relations) and `tuples_per_relation` tuples each. Attribute domains have
/// `domain` distinct values.
pub fn generate(n: usize, tuples_per_relation: usize, domain: usize, scale: Scale) -> Dataset {
    assert!(n >= 2, "a chain needs at least two attributes");
    let mut rng = scale.rng();
    let mut schema = DatabaseSchema::new();
    for k in 1..n {
        schema.add_relation_with_attrs(
            format!("S{k}"),
            &[
                (&format!("X{k}"), AttrType::Int),
                (&format!("X{}", k + 1), AttrType::Int),
            ],
        );
    }
    let relations = (1..n)
        .map(|k| {
            build_relation(&schema, &format!("S{k}"), tuples_per_relation, |_| {
                vec![
                    Value::Int(rng.gen_range(0..domain as i64)),
                    Value::Int(rng.gen_range(0..domain as i64)),
                ]
            })
        })
        .collect();
    let db = Database::new(schema.clone(), relations).expect("chain relations match schema");
    let tree = build_join_tree(&Hypergraph::from_schema(&schema)).expect("chain is acyclic");
    Dataset {
        name: format!("Chain{n}"),
        db,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_structure() {
        let ds = generate(5, 100, 10, Scale::small());
        assert_eq!(ds.db.schema().num_relations(), 4);
        assert_eq!(ds.tree.num_nodes(), 4);
        // The tree is a path: exactly two nodes of degree 1.
        let leaves = (0..4).filter(|&i| ds.tree.neighbors(i).len() == 1).count();
        assert_eq!(leaves, 2);
    }

    #[test]
    fn domains_are_bounded() {
        let ds = generate(3, 200, 7, Scale::small());
        for rel in ds.db.relations() {
            for col in 0..rel.arity() {
                assert!(rel.distinct_count(col) <= 7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two attributes")]
    fn rejects_degenerate_chains() {
        generate(1, 10, 5, Scale::small());
    }
}
