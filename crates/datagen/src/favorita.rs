//! Synthetic Favorita dataset (star schema, Figure 3 / Figure 6b).
//!
//! Relations:
//! * `Sales(date, store, item, units, promo)` — the fact table,
//! * `Holidays(date, htype, locale, transferred)`,
//! * `StoRes(store, city, state, stype, cluster)`,
//! * `Items(item, family, class, perishable)`,
//! * `Transactions(date, store, txns)`,
//! * `Oil(date, price)`.
//!
//! Join tree: Sales — {Holidays, Items, Transactions}, Transactions — {StoRes, Oil}.

use crate::common::{build_relation, skewed_index, tree_from_edges, Dataset, Scale};
use lmfao_data::{AttrType, Database, DatabaseSchema, Value};
use rand::Rng;

/// Generates the synthetic Favorita dataset at the given scale.
pub fn generate(scale: Scale) -> Dataset {
    let mut rng = scale.rng();
    let n_sales = scale.fact_rows.max(10);
    let n_dates = (n_sales / 50).clamp(10, 2_000);
    let n_stores = (n_sales / 500).clamp(4, 60);
    let n_items = (n_sales / 100).clamp(10, 4_000);
    let n_families = 12usize;
    let n_cities = 8usize;

    let mut schema = DatabaseSchema::new();
    schema.add_relation_with_attrs(
        "Sales",
        &[
            ("date", AttrType::Int),
            ("store", AttrType::Int),
            ("item", AttrType::Int),
            ("units", AttrType::Double),
            ("promo", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "Holidays",
        &[
            ("date", AttrType::Int),
            ("htype", AttrType::Categorical),
            ("locale", AttrType::Categorical),
            ("transferred", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "StoRes",
        &[
            ("store", AttrType::Int),
            ("city", AttrType::Categorical),
            ("state", AttrType::Categorical),
            ("stype", AttrType::Categorical),
            ("cluster", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "Items",
        &[
            ("item", AttrType::Int),
            ("family", AttrType::Categorical),
            ("class", AttrType::Int),
            ("perishable", AttrType::Int),
        ],
    );
    schema.add_relation_with_attrs(
        "Transactions",
        &[
            ("date", AttrType::Int),
            ("store", AttrType::Int),
            ("txns", AttrType::Double),
        ],
    );
    schema.add_relation_with_attrs(
        "Oil",
        &[("date", AttrType::Int), ("price", AttrType::Double)],
    );

    let sales = build_relation(&schema, "Sales", n_sales, |_| {
        let date = skewed_index(&mut rng, n_dates) as i64;
        let store = skewed_index(&mut rng, n_stores) as i64;
        let item = skewed_index(&mut rng, n_items) as i64;
        let base = 1.0 + (item % 20) as f64;
        let units = base + rng.gen_range(0.0..10.0) + if store % 3 == 0 { 5.0 } else { 0.0 };
        let promo = i64::from(rng.gen_bool(0.15));
        vec![
            Value::Int(date),
            Value::Int(store),
            Value::Int(item),
            Value::Double((units * 100.0).round() / 100.0),
            Value::Int(promo),
        ]
    });
    let holidays = build_relation(&schema, "Holidays", n_dates, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat(rng.gen_range(0..4)),
            Value::Cat(rng.gen_range(0..3)),
            Value::Int(i64::from(rng.gen_bool(0.05))),
        ]
    });
    let stores = build_relation(&schema, "StoRes", n_stores, |i| {
        let city = (i % n_cities) as u32;
        vec![
            Value::Int(i as i64),
            Value::Cat(city),
            Value::Cat(city / 2),
            Value::Cat(rng.gen_range(0..4)),
            Value::Int(rng.gen_range(1..18)),
        ]
    });
    let items = build_relation(&schema, "Items", n_items, |i| {
        vec![
            Value::Int(i as i64),
            Value::Cat((i % n_families) as u32),
            Value::Int(rng.gen_range(1000..4000)),
            Value::Int(i64::from(rng.gen_bool(0.25))),
        ]
    });
    // One Transactions tuple per (date, store) pair that could appear in
    // Sales. The key grid is enumerated arithmetically rather than staged in
    // an intermediate vector, so generation streams at any scale factor.
    let transactions = build_relation(&schema, "Transactions", n_dates * n_stores, |i| {
        let date = (i / n_stores) as i64;
        let store = (i % n_stores) as i64;
        vec![
            Value::Int(date),
            Value::Int(store),
            Value::Double(rng.gen_range(100.0..5000.0f64).round()),
        ]
    });
    let oil = build_relation(&schema, "Oil", n_dates, |i| {
        vec![
            Value::Int(i as i64),
            Value::Double(40.0 + 20.0 * ((i as f64) / 30.0).sin() + rng.gen_range(-2.0..2.0)),
        ]
    });

    let db = Database::new(
        schema.clone(),
        vec![sales, holidays, stores, items, transactions, oil],
    )
    .expect("favorita relations match the schema");
    let tree = tree_from_edges(
        &schema,
        &[
            ("Sales", "Holidays"),
            ("Sales", "Items"),
            ("Sales", "Transactions"),
            ("Transactions", "StoRes"),
            ("Transactions", "Oil"),
        ],
    )
    .expect("favorita join tree is valid");

    Dataset {
        name: "Favorita".to_string(),
        db,
        tree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_the_paper() {
        let ds = generate(Scale::small());
        assert_eq!(ds.db.schema().num_relations(), 6);
        assert_eq!(ds.tree.num_nodes(), 6);
        assert_eq!(ds.tree.edges().len(), 5);
        // Sales has degree 3, Transactions degree 3 (Sales + StoRes + Oil).
        let sales = ds.tree.node_of_relation("Sales").unwrap();
        let txn = ds.tree.node_of_relation("Transactions").unwrap();
        assert_eq!(ds.tree.neighbors(sales).len(), 3);
        assert_eq!(ds.tree.neighbors(txn).len(), 3);
    }

    #[test]
    fn foreign_keys_always_resolve() {
        let ds = generate(Scale::small());
        let sales = ds.db.relation("Sales").unwrap();
        let items = ds.db.relation("Items").unwrap();
        let n_items = items.len() as i64;
        let item_col = sales.position(ds.attr("item")).unwrap();
        for i in 0..sales.len() {
            let v = sales.value(i, item_col).as_i64();
            assert!(v >= 0 && v < n_items);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Scale::small());
        let b = generate(Scale::small());
        assert_eq!(a.total_tuples(), b.total_tuples());
        let ra = a.db.relation("Sales").unwrap();
        let rb = b.db.relation("Sales").unwrap();
        assert_eq!(ra.row(0), rb.row(0));
        assert_eq!(ra.row(ra.len() - 1), rb.row(rb.len() - 1));
    }

    #[test]
    fn scale_controls_fact_size() {
        let small = generate(Scale::new(200, 1));
        let larger = generate(Scale::new(2_000, 1));
        assert!(
            larger.db.relation("Sales").unwrap().len() > small.db.relation("Sales").unwrap().len()
        );
    }
}
