//! Certificate emission — the *untrusted* half of the trust split.
//!
//! The engine produces [`lmfao_certify::Certificate`]s describing what an
//! execution or a maintenance step did: per-view-group provenance with
//! fixed-point aggregate totals, and signed delta accounting for every view a
//! refresh touched. The independent checker (`lmfao-certify`) re-derives the
//! accounting identities from nothing but the certificate; this module's only
//! job is to report honestly out of the engine's actual data structures.
//!
//! Two invariants keep the emitted numbers exactly checkable:
//!
//! 1. **Sums of encodings, never encodings of sums.** Every total is
//!    `Σ encode_fixed(value)` over concrete entries. Integer (`i128`)
//!    addition is associative, so the checker's re-derivation cannot drift.
//! 2. **Ledger totals.** The maintainer carries per-view `i128` running
//!    totals (the *shadow ledger*) forward generation to generation; each
//!    apply adds the exact encoded net of the delta. Re-encoding the merged
//!    `f64` state instead would break `after == before + net` by float
//!    rounding. The ledger tracks the float state to within the fixed-point
//!    quantization per entry per apply; tying the float state to ground truth
//!    remains the recompute referee's job (see the README's trust split).

use crate::engine::BatchResult;
use crate::error::EngineError;
use crate::prepared::PreparedPlans;
use crate::view::{ComputedView, ViewSource};
use lmfao_certify::{
    Certificate, ExecuteCertificate, GroupProvenance, QueryTotals, ViewProvenance,
    CERTIFICATE_VERSION,
};
use lmfao_data::encode_fixed;

/// Per-aggregate fixed-point totals of a computed view: the sum over all
/// entries of each aggregate column, every value encoded before summing.
pub(crate) fn encoded_totals(cv: &ComputedView) -> Vec<i128> {
    let mut totals = vec![0i128; cv.num_aggregates];
    for (_, values) in cv.iter() {
        for (t, v) in totals.iter_mut().zip(values) {
            *t += encode_fixed(*v);
        }
    }
    totals
}

/// Per-query totals derived from the *published results* — deliberately the
/// projected `BatchResult` rather than the views, so the execute checker's
/// "query totals equal view totals at the query's aggregate indices" identity
/// crosses two independent data paths inside the engine.
pub(crate) fn result_query_totals(
    inner: &PreparedPlans,
    results: &BatchResult,
) -> Vec<QueryTotals> {
    inner
        .queries
        .iter()
        .zip(&results.queries)
        .map(|(pq, qr)| {
            let mut totals = vec![0i128; pq.aggregate_indices.len()];
            for values in qr.data.values() {
                for (t, v) in totals.iter_mut().zip(values) {
                    *t += encode_fixed(*v);
                }
            }
            QueryTotals {
                name: pq.name.clone(),
                view: pq.view.0 as u32,
                rows: qr.data.len() as u64,
                aggregate_indices: pq.aggregate_indices.iter().map(|&i| i as u32).collect(),
                totals,
            }
        })
        .collect()
}

/// Emits the certificate of one full batch execution: every group's
/// provenance (scanned relation, cardinality, incoming views, produced views
/// with totals) in topological order, plus the published query totals.
pub(crate) fn emit_execute<V: ViewSource>(
    inner: &PreparedPlans,
    relation_rows: impl Fn(&str) -> u64,
    computed: &V,
    generation: u64,
    results: &BatchResult,
) -> Result<Certificate, EngineError> {
    let catalog = &inner.pushdown.catalog;
    let order = inner.grouping.topological_order();
    let mut groups = Vec::with_capacity(order.len());
    for gid in order {
        let g = &inner.grouping.groups[gid];
        let relation = inner.tree.node(g.node).relation.clone();
        let rows_scanned = relation_rows(&relation);
        let mut incoming: Vec<u32> = Vec::new();
        for &vid in &g.views {
            for dep in catalog.view(vid).dependencies() {
                let raw = dep.0 as u32;
                if !g.views.contains(&dep) && !incoming.contains(&raw) {
                    incoming.push(raw);
                }
            }
        }
        incoming.sort_unstable();
        let mut outputs = Vec::with_capacity(g.views.len());
        for &vid in &g.views {
            let cv = computed
                .view_result(vid)
                .ok_or(EngineError::ViewNotComputed(vid))?;
            outputs.push(ViewProvenance {
                view: vid.0 as u32,
                rows: cv.len() as u64,
                totals: encoded_totals(cv),
            });
        }
        outputs.sort_by_key(|o| o.view);
        groups.push(GroupProvenance {
            group: gid as u32,
            relation,
            rows_scanned,
            incoming,
            outputs,
        });
    }
    Ok(Certificate::Execute(ExecuteCertificate {
        version: CERTIFICATE_VERSION,
        generation,
        groups,
        queries: result_query_totals(inner, results),
    }))
}
