//! Incremental view maintenance: prepared batches that refresh under updates.
//!
//! A [`crate::prepared::PreparedBatch`] replays its plans against frozen
//! data. [`MaintainedBatch`] goes one step further and turns the batch into
//! *live materialized state*: every [`ComputedView`] of every group is
//! retained, and when a base relation receives a signed
//! [`TableDelta`] (inserts + deletes), [`MaintainedBatch::apply`] refreshes
//! the state with work proportional to the delta — the dynamic-evaluation
//! setting of Berkholz et al. ("Answering FO+MOD queries under updates")
//! brought to LMFAO's view trees.
//!
//! The refresh exploits two structural properties of the engine:
//!
//! 1. **Additive merges.** Every view aggregate is a sum over the scanned
//!    tuples, which is why [`crate::exec::execute_group`] can already run
//!    over arbitrary row partitions and merge partials by addition. A delta
//!    partition (the inserted or deleted rows, sorted into trie order) is
//!    just another partition: scanning it yields exactly the view delta, with
//!    deletions contributing through a signed merge
//!    ([`ComputedView::merge_signed`]).
//! 2. **Multilinearity in incoming views.** Each product term of a view
//!    references each child view at most once, so replacing a changed
//!    incoming view's payload by its *delta* payload — while unchanged views
//!    keep their retained results — computes exactly that term's output
//!    delta. Terms that reference no changed view contribute nothing and are
//!    masked out (their partial-product register is zeroed before the scan,
//!    so the existing all-zero pruning skips subtrees that do not probe into
//!    the delta's keys).
//!
//! Propagation therefore walks the group-dependency DAG once, in topological
//! order: groups scanning the changed relation re-scan only the delta
//! partition; groups downstream re-scan with delta-overlaid probes and
//! masked terms; every other group is untouched
//! ([`crate::group::Grouping::transitive_dependents`]).
//!
//! A delta targets **one** base relation. To change several relations, apply
//! one delta per relation in sequence — this keeps every term's inputs with
//! at most one changed factor, which is what makes the single substitution
//! pass exact.
//!
//! Floating-point caveat: refreshed sums are mathematically identical to a
//! full recompute but may differ in the last ulp, because float addition is
//! not associative (`(a + b) − b` need not bit-equal `a`). Integer-valued
//! aggregates (counts, sums of integers within 2⁵³) are exact.

use crate::engine::BatchResult;
use crate::error::EngineError;
use crate::exec::{execute_group, execute_group_scan};
use crate::plan::{build_group_plan, DepthUpdate, GroupPlan};
use crate::prepared::{project_results, PreparedBatch, PreparedPlans};
use crate::view::{ComputedView, ViewId, ViewSource};
use lmfao_data::{Database, FxHashMap, Relation, TableDelta};
use lmfao_expr::DynamicRegistry;
use std::sync::Arc;

/// What one [`MaintainedBatch::apply`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Rows in the applied delta (inserts + deletes).
    pub delta_rows: usize,
    /// Groups re-scanned over the delta partition (they scan the changed
    /// relation itself).
    pub seed_groups: usize,
    /// Downstream groups re-scanned with delta-overlaid incoming views.
    pub propagated_groups: usize,
    /// Groups left untouched because nothing they depend on changed.
    pub skipped_groups: usize,
    /// Views whose retained state actually changed.
    pub views_changed: usize,
}

/// Resolves incoming views during a propagation scan: changed views resolve
/// to their signed deltas, unchanged views to the retained full results.
struct DeltaOverlay<'a> {
    full: &'a FxHashMap<ViewId, ComputedView>,
    deltas: &'a FxHashMap<ViewId, ComputedView>,
}

impl ViewSource for DeltaOverlay<'_> {
    fn view_result(&self, id: ViewId) -> Option<&ComputedView> {
        self.deltas.get(&id).or_else(|| self.full.get(&id))
    }
}

/// A prepared batch promoted to live, incrementally maintained state.
///
/// Built with [`PreparedBatch::into_maintained`]; owns a private mutable copy
/// of the database (base relations are updated in place by
/// [`MaintainedBatch::apply`]) plus the retained result of every view.
/// Current query results are available at any time through
/// [`MaintainedBatch::results`] without re-running any scan.
#[derive(Debug)]
pub struct MaintainedBatch {
    /// Private mutable database copy; deltas are applied to its relations.
    db: Database,
    /// The plans the batch was prepared with.
    inner: Arc<PreparedPlans>,
    /// Physical plans for every group. When the batch was prepared with
    /// specialization off (the interpreted ablation rungs), the plans are
    /// built here — maintenance always runs the specialized executor.
    plans: Vec<GroupPlan>,
    /// Retained result of every view of the catalog.
    computed: FxHashMap<ViewId, ComputedView>,
    /// Cached topological order of the groups.
    topo: Vec<usize>,
}

impl PreparedBatch {
    /// Executes the batch once, retaining every computed view, and returns
    /// the state as a [`MaintainedBatch`] that refreshes under
    /// [`TableDelta`]s instead of recomputing.
    ///
    /// This clones the shared database once — the maintained batch needs its
    /// own mutable copy to apply deltas to.
    pub fn into_maintained(
        self,
        dynamics: &DynamicRegistry,
    ) -> Result<MaintainedBatch, EngineError> {
        let db: Database = self.db.database().clone();
        let inner = Arc::clone(&self.inner);
        let plans: Vec<GroupPlan> = if inner.plans.is_empty() {
            inner
                .grouping
                .groups
                .iter()
                .map(|g| build_group_plan(&db, &inner.tree, &inner.pushdown.catalog, g))
                .collect::<Result<_, _>>()?
        } else {
            inner.plans.clone()
        };
        let topo = inner.grouping.topological_order();

        // Initial full computation, one group at a time in dependency order
        // (deterministic regardless of the batch's thread configuration).
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for &gid in &topo {
            for (vid, cv) in execute_group(&db, &plans[gid], &computed, dynamics, None)? {
                computed.insert(vid, cv);
            }
        }

        Ok(MaintainedBatch {
            db,
            inner,
            plans,
            computed,
            topo,
        })
    }
}

impl MaintainedBatch {
    /// The maintained database (base relations reflect every applied delta).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The retained result of a view, if it exists in the catalog.
    pub fn view_state(&self, id: ViewId) -> Option<&ComputedView> {
        self.computed.get(&id)
    }

    /// The groups a delta against `relation` would touch (seed groups plus
    /// transitive dependents), in refresh order — the exposure of the
    /// group-dependency reachability the refresh runs on.
    pub fn affected_groups(&self, relation: &str) -> Vec<usize> {
        let seeds: Vec<usize> = self
            .plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.relation == relation)
            .map(|(g, _)| g)
            .collect();
        self.inner.grouping.transitive_dependents(&seeds)
    }

    /// Current results of every query of the batch, projected from the
    /// retained output views — no scan runs here.
    pub fn results(&self) -> Result<BatchResult, EngineError> {
        project_results(&self.inner, &self.computed)
    }

    /// Applies a signed delta to one base relation and refreshes every
    /// affected view, leaving unaffected groups untouched. Results afterwards
    /// match a full recompute over the updated database (exactly for
    /// integer-valued aggregates; up to float-addition reassociation
    /// otherwise — see the module docs).
    ///
    /// The base relation is updated in place (sorted-merge, so trie order is
    /// preserved); an unmatched delete fails atomically before any state
    /// changes.
    pub fn apply(
        &mut self,
        delta: &TableDelta,
        dynamics: &DynamicRegistry,
    ) -> Result<RefreshStats, EngineError> {
        let mut stats = RefreshStats {
            delta_rows: delta.len(),
            ..RefreshStats::default()
        };
        if delta.is_empty() {
            stats.skipped_groups = self.plans.len();
            return Ok(stats);
        }

        // Update the base relation first (atomic: fails before any view
        // state or relation data changes on an unmatched delete). The seed
        // scans below read only the delta partitions and the retained
        // incoming views, so they are independent of this ordering.
        self.db.relation_mut(delta.relation())?.apply(delta)?;

        // Sort the delta partitions into the trie order of the node that
        // scans this relation, so the seed scans see valid tries.
        let (mut inserts, mut deletes) = delta.partition();
        if let Some(plan) = self.plans.iter().find(|p| p.relation == delta.relation()) {
            inserts.sort_by_positions(&plan.attr_order_cols);
            deletes.sort_by_positions(&plan.attr_order_cols);
        }
        let num_attrs = self.db.schema().num_attributes();

        // Walk the groups in dependency order, accumulating signed view
        // deltas. `changed` holds the delta (not the new value) of every view
        // refreshed so far.
        let mut changed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for &gid in &self.topo {
            let plan = &self.plans[gid];
            let group_deltas: Vec<(ViewId, ComputedView)> = if plan.relation == delta.relation() {
                // Seed group: re-run the scan over the delta partitions only.
                // Incoming views of a seed group cannot have changed (the
                // changed relation lives at this node, not in any child
                // subtree), so the retained results are the right probes.
                stats.seed_groups += 1;
                let mut out = scan_partition(&inserts, num_attrs, plan, &self.computed, dynamics)?;
                if !deletes.is_empty() {
                    let neg = scan_partition(&deletes, num_attrs, plan, &self.computed, dynamics)?;
                    for ((vid, acc), (nvid, d)) in out.iter_mut().zip(&neg) {
                        debug_assert_eq!(vid, nvid);
                        acc.merge_signed(d, -1.0);
                    }
                }
                out
            } else {
                // Downstream group: refresh only if an incoming view changed.
                let changed_incoming: Vec<bool> = plan
                    .incoming
                    .iter()
                    .map(|inc| changed.contains_key(&inc.view))
                    .collect();
                if !changed_incoming.iter().any(|&c| c) {
                    stats.skipped_groups += 1;
                    continue;
                }
                stats.propagated_groups += 1;
                let mask = active_slots(plan, &changed_incoming);
                let overlay = DeltaOverlay {
                    full: &self.computed,
                    deltas: &changed,
                };
                let relation = self
                    .db
                    .relation(&plan.relation)
                    .map_err(|_| EngineError::UnknownRelation(plan.relation.clone()))?;
                execute_group_scan(
                    relation,
                    num_attrs,
                    plan,
                    &overlay,
                    dynamics,
                    None,
                    Some(&mask),
                )?
            };
            for (vid, cv) in group_deltas {
                // An empty delta means the view did not change: leaving it
                // out lets downstream groups skip entirely.
                if !cv.is_empty() {
                    changed.insert(vid, cv);
                }
            }
        }

        // Fold the signed deltas into the retained state, pruning keys whose
        // aggregates cancelled to zero (absent keys mean all-zero aggregates
        // to every reader, matching what a recompute would produce).
        for (vid, d) in changed {
            stats.views_changed += 1;
            let entry = self
                .computed
                .entry(vid)
                .or_insert_with(|| ComputedView::new(d.key_attrs.clone(), d.num_aggregates));
            entry.merge_signed(&d, 1.0);
            entry.prune_zero_entries();
        }
        Ok(stats)
    }
}

/// Runs a seed group's plan over one delta partition (already sorted into
/// the plan's trie order), skipping the scan entirely for empty partitions.
fn scan_partition(
    partition: &Relation,
    num_attrs: usize,
    plan: &GroupPlan,
    computed: &FxHashMap<ViewId, ComputedView>,
    dynamics: &DynamicRegistry,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    if partition.is_empty() {
        return Ok(plan
            .outputs
            .iter()
            .map(|o| {
                (
                    o.view,
                    ComputedView::new(o.key_attrs.clone(), o.aggregates.len()),
                )
            })
            .collect());
    }
    execute_group_scan(partition, num_attrs, plan, computed, dynamics, None, None)
}

/// The term slots of `plan` that reference at least one changed incoming
/// view — the only terms that can contribute to the group's output delta
/// when changed views are overlaid with their deltas. Everything else is
/// masked to zero.
fn active_slots(plan: &GroupPlan, changed_incoming: &[bool]) -> Vec<bool> {
    let mut active = vec![false; plan.num_slots];
    for program in &plan.programs {
        for update in program {
            if let DepthUpdate::ScalarView { slot, incoming, .. } = update {
                if changed_incoming[*incoming] {
                    active[*slot] = true;
                }
            }
        }
    }
    for output in &plan.outputs {
        for agg in &output.aggregates {
            for term in &agg.terms {
                if term
                    .extra_refs
                    .iter()
                    .any(|&(inc, _)| changed_incoming[inc])
                {
                    active[term.slot] = true;
                }
            }
        }
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use lmfao_data::{AttrId, AttrType, DatabaseSchema, RelationSchema, Value};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph, JoinTree};

    /// Sales(store, item, units) ⋈ Items(item, price), integer-valued
    /// doubles so every sum is exact and comparisons can be bit-strict.
    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let ids: Vec<AttrId> = ["store", "item", "units", "price"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let sales = Relation::from_rows(
            RelationSchema::new("Sales", vec![ids[0], ids[1], ids[2]]),
            (0..40)
                .map(|i| {
                    vec![
                        Value::Int(i % 5),
                        Value::Int(i % 7),
                        Value::Double((i % 11) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let items = Relation::from_rows(
            RelationSchema::new("Items", vec![ids[1], ids[3]]),
            (0..7)
                .map(|i| vec![Value::Int(i), Value::Double((3 * (i + 1)) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn batch(db: &Database) -> QueryBatch {
        let store = db.schema().attr_id("store").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("rev", vec![], vec![Aggregate::sum_product(units, price)]);
        batch.push(
            "per_store",
            vec![store],
            vec![Aggregate::sum(units), Aggregate::count()],
        );
        batch.push("per_price", vec![price], vec![Aggregate::sum(units)]);
        batch
    }

    fn assert_same_results(a: &BatchResult, b: &BatchResult) {
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.name, y.name);
            // Absent keys mean all-zero aggregates; compare value-wise.
            let keys: std::collections::BTreeSet<_> =
                x.data.keys().chain(y.data.keys()).cloned().collect();
            for key in keys {
                let zero = vec![0.0; x.num_aggregates];
                let xv = x.get(&key).unwrap_or(&zero);
                let yv = y.get(&key).unwrap_or(&zero);
                assert_eq!(xv, yv, "query {} key {key:?}", x.name);
            }
        }
    }

    fn recompute(db: &Database, tree: &JoinTree, cfg: EngineConfig, b: &QueryBatch) -> BatchResult {
        Engine::new(db.clone(), tree.clone(), cfg)
            .execute(b)
            .unwrap()
    }

    #[test]
    fn fact_inserts_refresh_to_the_recomputed_result() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let mut maintained = engine
                .prepare(&b)
                .unwrap()
                .into_maintained(&DynamicRegistry::new())
                .unwrap();
            let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
            delta
                .insert(&[Value::Int(1), Value::Int(3), Value::Double(100.0)])
                .unwrap();
            delta
                .insert(&[Value::Int(9), Value::Int(2), Value::Double(50.0)])
                .unwrap();
            let stats = maintained.apply(&delta, &DynamicRegistry::new()).unwrap();
            assert!(stats.seed_groups > 0, "{name}");
            let expected = recompute(maintained.database(), &tree, cfg, &b);
            assert_same_results(&maintained.results().unwrap(), &expected);
        }
    }

    #[test]
    fn dimension_updates_propagate_through_the_dag() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        // Repricing item 3: delete the old tuple, insert the new one.
        let mut delta = TableDelta::for_relation(db.relation("Items").unwrap());
        delta.delete(&[Value::Int(3), Value::Double(12.0)]).unwrap();
        delta.insert(&[Value::Int(3), Value::Double(40.0)]).unwrap();
        let stats = maintained.apply(&delta, &DynamicRegistry::new()).unwrap();
        assert!(stats.seed_groups > 0);
        let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
        assert_same_results(&maintained.results().unwrap(), &expected);
    }

    #[test]
    fn delete_then_reinsert_is_a_no_op() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let prepared = engine.prepare(&b).unwrap();
        let before = prepared.execute(&DynamicRegistry::new()).unwrap();
        let mut maintained = prepared.into_maintained(&DynamicRegistry::new()).unwrap();
        let row = vec![Value::Int(0), Value::Int(0), Value::Double(0.0)];
        let mut del = TableDelta::for_relation(db.relation("Sales").unwrap());
        del.delete(&row).unwrap();
        maintained.apply(&del, &DynamicRegistry::new()).unwrap();
        let mut ins = TableDelta::for_relation(db.relation("Sales").unwrap());
        ins.insert(&row).unwrap();
        maintained.apply(&ins, &DynamicRegistry::new()).unwrap();
        assert_same_results(&maintained.results().unwrap(), &before);
    }

    #[test]
    fn unaffected_groups_are_skipped() {
        let (db, tree) = db_and_tree();
        // A batch whose queries root at Sales: the Items→Sales view changes
        // only under Items deltas; a Sales delta must leave the Items group
        // untouched.
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut b = QueryBatch::new();
        b.push("rev", vec![], vec![Aggregate::sum_product(units, price)]);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let affected = maintained.affected_groups("Sales");
        assert!(!affected.is_empty());
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[Value::Int(1), Value::Int(1), Value::Double(2.0)])
            .unwrap();
        let stats = maintained.apply(&delta, &DynamicRegistry::new()).unwrap();
        assert!(stats.skipped_groups > 0, "the Items group must be skipped");
        assert_eq!(
            stats.seed_groups + stats.propagated_groups,
            affected.len(),
            "refreshed groups must equal the exposed frontier"
        );
        let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
        assert_same_results(&maintained.results().unwrap(), &expected);
    }

    #[test]
    fn unmatched_delete_fails_atomically() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let before = maintained.results().unwrap();
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .delete(&[Value::Int(77), Value::Int(77), Value::Double(77.0)])
            .unwrap();
        let err = maintained
            .apply(&delta, &DynamicRegistry::new())
            .unwrap_err();
        assert!(matches!(err, EngineError::Data(_)));
        assert_same_results(&maintained.results().unwrap(), &before);
        assert_eq!(maintained.database().relation("Sales").unwrap().len(), 40);
    }

    #[test]
    fn empty_delta_touches_nothing() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        let stats = maintained.apply(&delta, &DynamicRegistry::new()).unwrap();
        assert_eq!(stats.seed_groups + stats.propagated_groups, 0);
        assert_eq!(stats.views_changed, 0);
    }

    #[test]
    fn maintained_results_track_a_stream_of_mixed_updates() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        // Alternate fact and dimension updates, checking after every step.
        for step in 0..6i64 {
            let mut delta = if step % 2 == 0 {
                let mut d = TableDelta::for_relation(db.relation("Sales").unwrap());
                d.insert(&[
                    Value::Int(step % 5),
                    Value::Int(step % 7),
                    Value::Double((step * 2) as f64),
                ])
                .unwrap();
                d
            } else {
                let mut d = TableDelta::for_relation(db.relation("Items").unwrap());
                d.insert(&[Value::Int(step % 7), Value::Double((step * 5) as f64)])
                    .unwrap();
                d
            };
            if step == 4 {
                // Also retract the tuple inserted at step 0.
                delta
                    .delete(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
                    .unwrap();
            }
            maintained.apply(&delta, &DynamicRegistry::new()).unwrap();
            let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
            assert_same_results(&maintained.results().unwrap(), &expected);
        }
    }
}
