//! Incremental view maintenance: prepared batches that refresh under updates.
//!
//! A [`crate::prepared::PreparedBatch`] replays its plans against frozen
//! data. [`MaintainedBatch`] goes one step further and turns the batch into
//! *live materialized state*: every [`ComputedView`] of every group is
//! retained, and when the base relations receive a [`Transaction`] — an
//! atomic set of signed [`TableDelta`](lmfao_data::TableDelta)s (inserts + deletes), one per touched
//! relation — [`MaintainedBatch::commit`] refreshes the state with work
//! proportional to the deltas — the dynamic-evaluation setting of Berkholz
//! et al. ("Answering FO+MOD queries under updates") brought to LMFAO's view
//! trees.
//!
//! The refresh exploits two structural properties of the engine:
//!
//! 1. **Additive merges.** Every view aggregate is a sum over the scanned
//!    tuples, which is why [`crate::exec::execute_group`] can already run
//!    over arbitrary row partitions and merge partials by addition. A delta
//!    partition (the inserted or deleted rows, sorted into trie order) is
//!    just another partition: scanning it yields exactly the view delta, with
//!    deletions contributing through a signed merge
//!    ([`ComputedView::merge_signed`]).
//! 2. **Multilinearity in incoming views.** Each product term of a view
//!    references each child view at most once, so replacing a changed
//!    incoming view's payload by its *delta* payload — while unchanged views
//!    keep their retained results — computes exactly that term's output
//!    delta. Terms that reference no changed view contribute nothing and are
//!    masked out (their partial-product register is zeroed before the scan,
//!    so the existing all-zero pruning skips subtrees that do not probe into
//!    the delta's keys).
//!
//! Propagation therefore walks the group-dependency DAG once per committed
//! transaction, in topological order: groups scanning a changed relation
//! re-scan only that relation's delta partitions; groups downstream re-scan
//! with delta-overlaid probes and masked terms; every other group is
//! untouched ([`crate::group::Grouping::transitive_dependents`]). A
//! transaction touching several relations unions the refresh frontiers and
//! still visits each group **once**: a group's change splits exactly into a
//! seed contribution (its relation's delta against the old incoming views)
//! plus a propagation contribution (the incoming-view deltas against the
//! updated relation), and the rare term that multiplies two changed views
//! together is handled by an exact telescoped substitution — see
//! [`crate::snapshot`] for the algebra.
//!
//! Since the serving milestone the refresh machinery itself lives in
//! [`crate::snapshot`]: a [`MaintainedBatch`] is a thin single-owner wrapper
//! around a [`Maintainer`], which publishes one refreshed generation per
//! committed transaction as an immutable
//! [`crate::snapshot::ViewSnapshot`]. Use the wrapper when one
//! owner both commits transactions and reads results; call
//! [`MaintainedBatch::snapshot`] / [`MaintainedBatch::handle`] (or unwrap
//! with [`MaintainedBatch::into_serving`]) when readers on other threads
//! should keep answering while deltas are applied.
//!
//! Floating-point caveat: refreshed sums are mathematically identical to a
//! full recompute but may differ in the last ulp, because float addition is
//! not associative (`(a + b) − b` need not bit-equal `a`). Integer-valued
//! aggregates (counts, sums of integers within 2⁵³) are exact, and residues
//! that are zero up to rounding are snapped to exact zero
//! ([`ComputedView::merge_signed_snapped`]) so cancelling streams prune
//! their dead keys.

use crate::engine::{BatchResult, QueryResult};
use crate::error::EngineError;
use crate::prepared::PreparedBatch;
use crate::snapshot::{Maintainer, SnapshotHandle, ViewSnapshot};
use crate::view::{ComputedView, ViewId};
use lmfao_data::{DatabaseSnapshot, Transaction};
use lmfao_expr::DynamicRegistry;
use std::sync::Arc;

/// What one [`MaintainedBatch::commit`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Rows across the transaction's deltas (inserts + deletes).
    pub delta_rows: usize,
    /// Distinct base relations the transaction changed.
    pub relations_changed: usize,
    /// Groups re-scanned over delta partitions (they scan a changed relation
    /// itself; a group both seeded and propagated counts here only).
    pub seed_groups: usize,
    /// Downstream groups re-scanned with delta-overlaid incoming views only.
    pub propagated_groups: usize,
    /// Groups left untouched because nothing they depend on changed.
    pub skipped_groups: usize,
    /// Views whose retained state actually changed.
    pub views_changed: usize,
    /// Physical group scans executed (delta-partition scans plus overlay
    /// scans). The probe that makes "one DAG walk per transaction"
    /// measurable: committing a multi-relation transaction runs strictly
    /// fewer scans than applying its deltas one at a time.
    pub group_scans: usize,
}

/// A prepared batch promoted to live, incrementally maintained state.
///
/// Built with [`PreparedBatch::into_maintained`]; owns a private
/// copy-on-write database state (base relations are updated by
/// [`MaintainedBatch::commit`]) plus the retained result of every view.
/// Current query results are available at any time through
/// [`MaintainedBatch::results`] without re-running any scan.
#[derive(Debug)]
pub struct MaintainedBatch {
    writer: Maintainer,
}

impl PreparedBatch {
    /// Executes the batch once, retaining every computed view, and returns
    /// the state as a [`MaintainedBatch`] that refreshes under
    /// [`TableDelta`](lmfao_data::TableDelta)s instead of recomputing.
    ///
    /// This clones the shared database once — the maintained batch needs its
    /// own (copy-on-write) database state to apply deltas to.
    pub fn into_maintained(
        self,
        dynamics: &DynamicRegistry,
    ) -> Result<MaintainedBatch, EngineError> {
        Ok(MaintainedBatch {
            writer: self.into_serving(dynamics)?,
        })
    }
}

impl MaintainedBatch {
    /// The maintained database state (base relations reflect every applied
    /// delta).
    pub fn database(&self) -> &DatabaseSnapshot {
        self.writer.database()
    }

    /// The retained result of a view, if it exists in the catalog.
    pub fn view_state(&self, id: ViewId) -> Option<&ComputedView> {
        self.writer.view_state(id)
    }

    /// The groups a delta against `relation` would touch (seed groups plus
    /// transitive dependents), in refresh order — the exposure of the
    /// group-dependency reachability the refresh runs on.
    pub fn affected_groups(&self, relation: &str) -> Vec<usize> {
        self.writer.affected_groups(relation)
    }

    /// Current results of every query of the batch, projected from the
    /// retained output views — no scan runs here.
    ///
    /// **Freshness**: the returned results always reflect the state after
    /// the *last successful* [`MaintainedBatch::commit`] (a failed commit
    /// changes nothing). They are a point-in-time copy: results obtained
    /// before a `commit` keep their old values — hold a
    /// [`MaintainedBatch::snapshot`] instead if you want an explicitly
    /// pinned generation.
    pub fn results(&self) -> Result<BatchResult, EngineError> {
        Ok(self.writer.snapshot().results().clone())
    }

    /// The current result of the named query, or
    /// [`EngineError::UnknownQuery`] — the fallible by-name lookup for
    /// callers serving externally supplied names. Reflects the last
    /// successful [`MaintainedBatch::commit`], like
    /// [`MaintainedBatch::results`].
    pub fn query(&self, name: &str) -> Result<QueryResult, EngineError> {
        let snapshot = self.writer.snapshot();
        snapshot.query(name).cloned()
    }

    /// The latest published immutable generation. The returned snapshot is
    /// pinned: it keeps answering with its own state however many deltas are
    /// applied afterwards.
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        self.writer.snapshot()
    }

    /// The execution certificate of the latest published generation: the
    /// `Execute` root after construction, a chained `Maintenance` certificate
    /// after every successful [`MaintainedBatch::commit`]. See
    /// [`ViewSnapshot::certificate`].
    pub fn certificate(&self) -> Arc<lmfao_certify::Certificate> {
        Arc::clone(self.writer.snapshot().certificate())
    }

    /// The publication cell readers can clone into other threads; see
    /// [`crate::snapshot::SnapshotHandle`].
    pub fn handle(&self) -> SnapshotHandle {
        self.writer.handle()
    }

    /// Unwraps the serving-layer writer, for callers that want the explicit
    /// writer/reader split of [`crate::snapshot`].
    pub fn into_serving(self) -> Maintainer {
        self.writer
    }

    /// Commits a [`Transaction`] — signed deltas over one or more base
    /// relations — atomically, refreshing every affected view in a single
    /// DAG walk and leaving unaffected groups untouched. Results afterwards
    /// match a full recompute over the updated database (exactly for
    /// integer-valued aggregates; up to float-addition reassociation plus
    /// residue snapping otherwise — see the module docs).
    ///
    /// Accepts anything convertible into a [`Transaction`], so a bare
    /// [`TableDelta`](lmfao_data::TableDelta) still commits directly. The base relations are updated
    /// copy-on-write (sorted-merge, so trie order is preserved); an unmatched
    /// delete, an empty transaction ([`EngineError::EmptyTransaction`]), or a
    /// row both inserted and deleted ([`EngineError::ConflictingDelta`])
    /// fails atomically before any state changes. Each successful commit
    /// publishes the refreshed state as exactly one new generation through
    /// [`MaintainedBatch::handle`].
    pub fn commit(
        &mut self,
        txn: impl Into<Transaction>,
        dynamics: &DynamicRegistry,
    ) -> Result<RefreshStats, EngineError> {
        self.writer.commit(txn, dynamics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use lmfao_data::{
        AttrId, AttrType, Database, DatabaseSchema, Relation, RelationSchema, TableDelta, Value,
    };
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph, JoinTree};

    /// Sales(store, item, units) ⋈ Items(item, price), integer-valued
    /// doubles so every sum is exact and comparisons can be bit-strict.
    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let ids: Vec<AttrId> = ["store", "item", "units", "price"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let sales = Relation::from_rows(
            RelationSchema::new("Sales", vec![ids[0], ids[1], ids[2]]),
            (0..40)
                .map(|i| {
                    vec![
                        Value::Int(i % 5),
                        Value::Int(i % 7),
                        Value::Double((i % 11) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let items = Relation::from_rows(
            RelationSchema::new("Items", vec![ids[1], ids[3]]),
            (0..7)
                .map(|i| vec![Value::Int(i), Value::Double((3 * (i + 1)) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn batch(db: &Database) -> QueryBatch {
        let store = db.schema().attr_id("store").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("rev", vec![], vec![Aggregate::sum_product(units, price)]);
        batch.push(
            "per_store",
            vec![store],
            vec![Aggregate::sum(units), Aggregate::count()],
        );
        batch.push("per_price", vec![price], vec![Aggregate::sum(units)]);
        batch
    }

    fn assert_same_results(a: &BatchResult, b: &BatchResult) {
        for (x, y) in a.queries.iter().zip(&b.queries) {
            assert_eq!(x.name, y.name);
            // Absent keys mean all-zero aggregates; compare value-wise.
            let keys: std::collections::BTreeSet<_> =
                x.data.keys().chain(y.data.keys()).cloned().collect();
            for key in keys {
                let zero = vec![0.0; x.num_aggregates];
                let xv = x.get(&key).unwrap_or(&zero);
                let yv = y.get(&key).unwrap_or(&zero);
                assert_eq!(xv, yv, "query {} key {key:?}", x.name);
            }
        }
    }

    fn recompute(
        db: &DatabaseSnapshot,
        tree: &JoinTree,
        cfg: EngineConfig,
        b: &QueryBatch,
    ) -> BatchResult {
        Engine::new(db.materialize(), tree.clone(), cfg)
            .execute(b)
            .unwrap()
    }

    #[test]
    fn fact_inserts_refresh_to_the_recomputed_result() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let mut maintained = engine
                .prepare(&b)
                .unwrap()
                .into_maintained(&DynamicRegistry::new())
                .unwrap();
            let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
            delta
                .insert(&[Value::Int(1), Value::Int(3), Value::Double(100.0)])
                .unwrap();
            delta
                .insert(&[Value::Int(9), Value::Int(2), Value::Double(50.0)])
                .unwrap();
            let stats = maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
            assert!(stats.seed_groups > 0, "{name}");
            let expected = recompute(maintained.database(), &tree, cfg, &b);
            assert_same_results(&maintained.results().unwrap(), &expected);
        }
    }

    #[test]
    fn dimension_updates_propagate_through_the_dag() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        // Repricing item 3: delete the old tuple, insert the new one.
        let mut delta = TableDelta::for_relation(db.relation("Items").unwrap());
        delta.delete(&[Value::Int(3), Value::Double(12.0)]).unwrap();
        delta.insert(&[Value::Int(3), Value::Double(40.0)]).unwrap();
        let stats = maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
        assert!(stats.seed_groups > 0);
        let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
        assert_same_results(&maintained.results().unwrap(), &expected);
    }

    #[test]
    fn delete_then_reinsert_is_a_no_op() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let prepared = engine.prepare(&b).unwrap();
        let before = prepared.execute(&DynamicRegistry::new()).unwrap();
        let mut maintained = prepared.into_maintained(&DynamicRegistry::new()).unwrap();
        let row = vec![Value::Int(0), Value::Int(0), Value::Double(0.0)];
        let mut del = TableDelta::for_relation(db.relation("Sales").unwrap());
        del.delete(&row).unwrap();
        maintained.commit(&del, &DynamicRegistry::new()).unwrap();
        let mut ins = TableDelta::for_relation(db.relation("Sales").unwrap());
        ins.insert(&row).unwrap();
        maintained.commit(&ins, &DynamicRegistry::new()).unwrap();
        assert_same_results(&maintained.results().unwrap(), &before);
    }

    #[test]
    fn unaffected_groups_are_skipped() {
        let (db, tree) = db_and_tree();
        // A batch whose queries root at Sales: the Items→Sales view changes
        // only under Items deltas; a Sales delta must leave the Items group
        // untouched.
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut b = QueryBatch::new();
        b.push("rev", vec![], vec![Aggregate::sum_product(units, price)]);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let affected = maintained.affected_groups("Sales");
        assert!(!affected.is_empty());
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[Value::Int(1), Value::Int(1), Value::Double(2.0)])
            .unwrap();
        let stats = maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
        assert!(stats.skipped_groups > 0, "the Items group must be skipped");
        assert_eq!(
            stats.seed_groups + stats.propagated_groups,
            affected.len(),
            "refreshed groups must equal the exposed frontier"
        );
        let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
        assert_same_results(&maintained.results().unwrap(), &expected);
    }

    #[test]
    fn unmatched_delete_fails_atomically() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let before = maintained.results().unwrap();
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .delete(&[Value::Int(77), Value::Int(77), Value::Double(77.0)])
            .unwrap();
        let err = maintained
            .commit(&delta, &DynamicRegistry::new())
            .unwrap_err();
        assert!(matches!(err, EngineError::Data(_)));
        assert_same_results(&maintained.results().unwrap(), &before);
        assert_eq!(maintained.database().relation("Sales").unwrap().len(), 40);
    }

    #[test]
    fn empty_delta_is_a_typed_error() {
        // With the legacy `apply` shim gone, `commit` is the only write
        // entry point and an empty delta is strict: typed error, no phantom
        // generation, state untouched.
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let generation_before = maintained.handle().generation();
        let delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        let err = maintained
            .commit(&delta, &DynamicRegistry::new())
            .unwrap_err();
        assert!(matches!(err, EngineError::EmptyTransaction));
        assert_eq!(maintained.handle().generation(), generation_before);
    }

    #[test]
    fn empty_transaction_is_a_typed_error() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree, EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let before = maintained.results().unwrap();
        let err = maintained
            .commit(Transaction::new(), &DynamicRegistry::new())
            .unwrap_err();
        assert!(matches!(err, EngineError::EmptyTransaction));
        assert_same_results(&maintained.results().unwrap(), &before);
        assert_eq!(maintained.snapshot().generation(), 0, "nothing published");
    }

    #[test]
    fn conflicting_delta_is_a_typed_error() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree, EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let before = maintained.results().unwrap();
        let row = vec![Value::Int(0), Value::Int(0), Value::Double(0.0)];
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta.insert(&row).unwrap();
        delta.delete(&row).unwrap();
        let err = maintained
            .commit(&delta, &DynamicRegistry::new())
            .unwrap_err();
        assert!(
            matches!(err, EngineError::ConflictingDelta { ref relation, .. } if relation == "Sales")
        );
        assert_same_results(&maintained.results().unwrap(), &before);
        assert_eq!(maintained.snapshot().generation(), 0, "nothing published");
    }

    #[test]
    fn multi_relation_transaction_commits_in_one_walk() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let mut sequential = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();

        let mut sales = TableDelta::for_relation(db.relation("Sales").unwrap());
        sales
            .insert(&[Value::Int(1), Value::Int(3), Value::Double(100.0)])
            .unwrap();
        sales
            .delete(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        let mut items = TableDelta::for_relation(db.relation("Items").unwrap());
        items.delete(&[Value::Int(3), Value::Double(12.0)]).unwrap();
        items.insert(&[Value::Int(3), Value::Double(40.0)]).unwrap();

        let txn: Transaction = [sales.clone(), items.clone()].into_iter().collect();
        let stats = maintained.commit(txn, &DynamicRegistry::new()).unwrap();
        assert_eq!(stats.relations_changed, 2);
        assert_eq!(
            maintained.snapshot().generation(),
            1,
            "one generation for the whole transaction"
        );

        // Sequential application of the same deltas publishes two
        // generations and walks the DAG twice; results must match
        // bit-for-bit (integer-valued doubles throughout the fixture).
        let s1 = sequential.commit(&sales, &DynamicRegistry::new()).unwrap();
        let s2 = sequential.commit(&items, &DynamicRegistry::new()).unwrap();
        assert_eq!(sequential.snapshot().generation(), 2);
        // The scan-count probe for "one DAG walk": the transaction visits
        // every group at most once (seed and propagation fused), so it
        // refreshes strictly fewer groups than the two walks combined, and
        // never runs more physical scans.
        let txn_visits = stats.seed_groups + stats.propagated_groups;
        let seq_visits =
            s1.seed_groups + s1.propagated_groups + s2.seed_groups + s2.propagated_groups;
        assert!(
            txn_visits < seq_visits,
            "one DAG walk ({txn_visits} group visits) must beat two ({seq_visits})"
        );
        assert!(
            txn_visits + stats.skipped_groups
                == s1.seed_groups + s1.propagated_groups + s1.skipped_groups,
            "each group is visited or skipped exactly once"
        );
        assert!(
            stats.group_scans <= s1.group_scans + s2.group_scans,
            "one DAG walk ({}) must not out-scan two ({} + {})",
            stats.group_scans,
            s1.group_scans,
            s2.group_scans
        );
        assert_same_results(
            &maintained.results().unwrap(),
            &sequential.results().unwrap(),
        );
        let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
        assert_same_results(&maintained.results().unwrap(), &expected);
    }

    #[test]
    fn results_reflect_the_last_apply() {
        // The stale-read footgun, pinned down: results() is a point-in-time
        // copy — a copy taken before an apply keeps its old values, a copy
        // taken after reflects the delta. No other sequence is possible.
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let before = maintained.results().unwrap();
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[Value::Int(1), Value::Int(1), Value::Double(5.0)])
            .unwrap();
        maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
        let after = maintained.results().unwrap();
        assert_eq!(before.query("count").scalar()[0], 40.0, "old copy is old");
        assert_eq!(after.query("count").scalar()[0], 41.0, "new copy is new");
        assert_eq!(
            maintained.query("count").unwrap().scalar()[0],
            41.0,
            "by-name lookup reflects the last apply"
        );
    }

    #[test]
    fn query_by_unknown_name_is_a_typed_error() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree, EngineConfig::default());
        let maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        assert!(maintained.query("count").is_ok());
        let err = maintained.query("no_such_query").unwrap_err();
        assert!(matches!(err, EngineError::UnknownQuery(ref n) if n == "no_such_query"));
        assert!(err.to_string().contains("no_such_query"));
    }

    #[test]
    fn old_snapshot_still_answers_after_apply() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree, EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        let pinned = maintained.snapshot();
        let handle = maintained.handle();
        let mut delta = TableDelta::for_relation(db.relation("Sales").unwrap());
        delta
            .insert(&[Value::Int(2), Value::Int(2), Value::Double(7.0)])
            .unwrap();
        maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
        assert_eq!(pinned.generation(), 0);
        assert_eq!(pinned.query("count").unwrap().scalar()[0], 40.0);
        assert_eq!(handle.generation(), 1);
        assert_eq!(handle.load().query("count").unwrap().scalar()[0], 41.0);
    }

    #[test]
    fn maintained_results_track_a_stream_of_mixed_updates() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let engine = Engine::new(db.clone(), tree.clone(), EngineConfig::default());
        let mut maintained = engine
            .prepare(&b)
            .unwrap()
            .into_maintained(&DynamicRegistry::new())
            .unwrap();
        // Alternate fact and dimension updates, checking after every step.
        for step in 0..6i64 {
            let mut delta = if step % 2 == 0 {
                let mut d = TableDelta::for_relation(db.relation("Sales").unwrap());
                d.insert(&[
                    Value::Int(step % 5),
                    Value::Int(step % 7),
                    Value::Double((step * 2) as f64),
                ])
                .unwrap();
                d
            } else {
                let mut d = TableDelta::for_relation(db.relation("Items").unwrap());
                d.insert(&[Value::Int(step % 7), Value::Double((step * 5) as f64)])
                    .unwrap();
                d
            };
            if step == 4 {
                // Also retract the tuple inserted at step 0.
                delta
                    .delete(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
                    .unwrap();
            }
            maintained.commit(&delta, &DynamicRegistry::new()).unwrap();
            let expected = recompute(maintained.database(), &tree, EngineConfig::default(), &b);
            assert_same_results(&maintained.results().unwrap(), &expected);
        }
    }
}
