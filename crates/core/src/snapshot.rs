//! Epoch-published snapshots: writers refresh, readers never block.
//!
//! [`crate::maintain::MaintainedBatch`] refreshes retained view state under
//! [`Transaction`]s, but its `commit` takes `&mut self` — every refresh
//! stalls every query. This module splits that one mutable object into the
//! reader/writer separation a serving system needs:
//!
//! * [`ViewSnapshot`] — one **immutable** generation of the world: the
//!   database snapshot, every retained [`ComputedView`] and the projected
//!   per-query results, all behind `Arc`s. Readers answer named-query
//!   lookups straight from the projected results with zero scans and zero
//!   locks held.
//! * [`Maintainer`] — the single writer. It commits [`Transaction`]s —
//!   atomic sets of [`TableDelta`](lmfao_data::TableDelta)s over one or more base relations —
//!   against its private next-generation state, one DAG walk and one
//!   published generation per transaction, each new generation an
//!   `Arc<ViewSnapshot>` swapped through the shared [`SnapshotHandle`].
//! * [`SnapshotHandle`] — the publication cell readers clone into their
//!   threads. [`SnapshotHandle::load`] returns the latest published
//!   generation; whatever a reader loaded stays valid (and immutable)
//!   forever, however many generations the writer publishes afterwards —
//!   readers *pin* generations, they never see partial state.
//!
//! # Copy-on-write, at two granularities
//!
//! Publishing a full copy of every view per generation would make refresh
//! cost proportional to the database, not the delta. Instead the maintainer
//! keeps its state in `Arc`s and clones lazily:
//!
//! * **Views**: the retained state is a map of `Arc<ComputedView>`. Folding
//!   a view delta goes through [`Arc::make_mut`] — only views on the refresh
//!   frontier (those whose state actually changed) are copied, and only when
//!   a published snapshot still pins the old version. Views untouched by the
//!   delta are shared by every generation that ever existed.
//! * **Relations**: the base data lives in a [`DatabaseSnapshot`], which
//!   applies deltas copy-on-write at relation granularity — a delta against
//!   the fact table copies the fact table once and shares every dimension
//!   table with all previous generations.
//!
//! # The publication cell
//!
//! Publication is an atomic pointer swap, for real: the handle wraps a
//! hazard-pointer cell ([`crossbeam::hazard::HazardCell`]) whose `load` is a
//! lock-free pointer acquire — announce the pointer in the handle's private
//! hazard slot, validate the cell still holds it, bump the `Arc` count. No
//! `RwLock`, no `Mutex`, no reader ever takes a lock, at any reader count;
//! the only retry is a publication racing the two-instruction handshake.
//! The writer's `publish` swaps the pointer and reclaims superseded
//! snapshots once no hazard slot still protects them. The price of the slot
//! discipline is that [`SnapshotHandle`] is `Send` but **not** `Sync`: each
//! reader thread clones its own handle (as every caller already did), and
//! sharing one handle between two threads is now a compile error instead of
//! a data race.
//!
//! # Generation GC
//!
//! The maintainer keeps a bounded history of recently published generations
//! (see [`Maintainer::set_history_window`], default
//! [`DEFAULT_HISTORY_WINDOW`]). Generations beyond the window are retired
//! from the writer side; since snapshots are plain `Arc`s, an unpinned
//! generation frees immediately while a long-pinned reader keeps exactly its
//! own generation alive — never the whole chain, because copy-on-write
//! shares unchanged relations and views *forward* across generations.
//! [`Maintainer::retained_generations`] and [`Maintainer::retained_bytes`]
//! report the writer-side footprint (pointer-deduplicated, so shared storage
//! counts once).
//!
//! # The parallel frontier walk
//!
//! With `threads > 1` in the engine config, a commit refreshes independent
//! groups of the affected frontier concurrently: a dependency-counted ready
//! queue (the same discipline as the morsel executor in
//! [`crate::parallel`]) runs each group's seed/propagation scans as soon as
//! every upstream group's view delta is in, then folds the per-group
//! outputs in topological order — so the published state, the certificate
//! and the refresh stats are identical to the sequential walk's.
//!
//! Float caveat: refreshed sums may differ from a fresh build in the last
//! ulp (float addition is not associative). The maintainer folds deltas with
//! [`ComputedView::merge_signed_snapped`], which snaps residues that are
//! zero-up-to-rounding back to exact zero so long cancelling streams prune
//! their dead keys — see [`CANCELLATION_REL_EPS`].

use crate::certificate::{emit_execute, encoded_totals};
use crate::engine::{BatchResult, QueryResult};
use crate::error::EngineError;
use crate::exec::execute_group_scan;
use crate::maintain::RefreshStats;
use crate::parallel::{execute_all, scan_morsels};
use crate::plan::{build_group_plan, DepthUpdate, GroupPlan};
use crate::prepared::{project_results, PreparedBatch, PreparedPlans};
use crate::view::{ComputedView, ViewId, ViewSource};
use crossbeam::hazard::HazardCell;
use lmfao_certify::{
    fingerprint, Certificate, MaintenanceCertificate, QueryTotals, RelationDeltaAccount,
    ViewDeltaAccount, CERTIFICATE_VERSION,
};
use lmfao_data::{Database, DatabaseSnapshot, FxHashMap, FxHashSet, Relation, Transaction};
use lmfao_expr::DynamicRegistry;
use lmfao_jointree::JoinTree;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Relative epsilon of the maintainer's residue snapping: after folding a
/// view delta value `v` into an entry `e`, `e` is snapped to exact zero when
/// `|e| ≤ CANCELLATION_REL_EPS · |v|`. A cancelling stream of `n` updates
/// leaves a residue of order `n · ulp ≈ n · 2⁻⁵²` relative to the delta
/// magnitude, so `1e-11` absorbs streams of hundreds of thousands of updates
/// while sitting far below the `1e-9` relative tolerance the maintenance
/// layer guarantees for float aggregates.
pub const CANCELLATION_REL_EPS: f64 = 1e-11;

/// Default bound on the maintainer's generation history: how many recently
/// published [`ViewSnapshot`]s stay retained writer-side for audits before
/// being retired (readers' own pins are unaffected). See
/// [`Maintainer::set_history_window`].
pub const DEFAULT_HISTORY_WINDOW: usize = 8;

/// One immutable, published generation of maintained state.
///
/// Everything a reader needs lives here: the projected per-query results
/// (answered by [`ViewSnapshot::query`] with a hash lookup), the retained
/// view state, and the [`DatabaseSnapshot`] the generation was computed
/// over — which is what lets a recompute referee audit *this* generation
/// long after the writer has moved on.
#[derive(Debug)]
pub struct ViewSnapshot {
    generation: u64,
    txn: u64,
    db: DatabaseSnapshot,
    computed: FxHashMap<ViewId, Arc<ComputedView>>,
    results: BatchResult,
    inner: Arc<PreparedPlans>,
    certificate: Arc<Certificate>,
}

impl ViewSnapshot {
    /// The generation number: 0 for the initial full computation, +1 per
    /// published refresh.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Identifier of the transaction that published this generation: 0 for
    /// the initial full computation, then the 1-based commit counter. The
    /// engine publishes exactly one generation per committed transaction, so
    /// `txn_id == generation` — an invariant the black-box isolation checker
    /// (`crate::isocheck`) verifies from recorded histories rather than
    /// trusting this comment.
    pub fn txn_id(&self) -> u64 {
        self.txn
    }

    /// The projected results of every query of the batch, as of this
    /// generation.
    pub fn results(&self) -> &BatchResult {
        &self.results
    }

    /// The result of the named query, or [`EngineError::UnknownQuery`]. This
    /// is the read path of the serving loop: no scan, no lock, no `&mut`.
    pub fn query(&self, name: &str) -> Result<&QueryResult, EngineError> {
        self.results.try_query(name)
    }

    /// The database state this generation was computed over.
    pub fn database(&self) -> &DatabaseSnapshot {
        &self.db
    }

    /// The retained result of a view, if it exists in the catalog.
    pub fn view_state(&self, id: ViewId) -> Option<&ComputedView> {
        self.computed.get(&id).map(|cv| &**cv)
    }

    /// The join tree the state was planned under (what a recompute referee
    /// replans from).
    pub fn join_tree(&self) -> &JoinTree {
        &self.inner.tree
    }

    /// The engine configuration the state was planned under.
    pub fn config(&self) -> &crate::config::EngineConfig {
        &self.inner.config
    }

    /// The execution certificate of this generation: an `Execute`
    /// certificate for generation 0, a `Maintenance` certificate (chained to
    /// the parent generation by fingerprint) for every refresh. Collect the
    /// certificates of consecutive generations and feed them to
    /// `lmfao_certify::check_chain` to audit the full history.
    pub fn certificate(&self) -> &Arc<Certificate> {
        &self.certificate
    }

    /// True if `self` and `other` share the storage of view `id` — the
    /// observable face of the copy-on-write discipline: a view off the
    /// refresh frontier is never copied between generations.
    pub fn shares_view_with(&self, other: &ViewSnapshot, id: ViewId) -> bool {
        match (self.computed.get(&id), other.computed.get(&id)) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// The publication cell: readers clone the handle into their threads and
/// [`load`](SnapshotHandle::load) the latest generation per request.
///
/// `load` is a lock-free pointer acquire through a hazard-pointer cell — no
/// `RwLock`, no `Mutex`, no lock of any kind on the read path, at any reader
/// count. The writer's publish is one atomic swap plus reclamation of
/// generations no reader still has in flight.
///
/// The handle is `Send` but deliberately **not** `Sync`: each handle owns a
/// private hazard slot, so each reader thread clones its own handle (clone
/// takes a registry lock once; reads never do). Sharing `&SnapshotHandle`
/// across threads is a compile error rather than a data race.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    cell: HazardCell<ViewSnapshot>,
}

impl SnapshotHandle {
    fn new(initial: Arc<ViewSnapshot>) -> Self {
        SnapshotHandle {
            cell: HazardCell::new(initial),
        }
    }

    /// The latest published generation. The returned `Arc` pins that
    /// generation: it stays valid and immutable regardless of how many
    /// generations are published afterwards. Lock-free: the only retry is a
    /// concurrent publication racing the hazard handshake.
    pub fn load(&self) -> Arc<ViewSnapshot> {
        self.cell.load()
    }

    /// Generation number of the latest published snapshot.
    pub fn generation(&self) -> u64 {
        self.load().generation
    }

    fn publish(&self, snapshot: Arc<ViewSnapshot>) {
        self.cell.publish(snapshot);
    }
}

/// The single writer of a served batch: applies [`TableDelta`](lmfao_data::TableDelta)s against
/// private next-generation state and publishes each refreshed generation
/// through its [`SnapshotHandle`].
///
/// Built with [`PreparedBatch::into_serving`] (or unwrapped from a
/// [`crate::maintain::MaintainedBatch`] via
/// [`crate::maintain::MaintainedBatch::into_serving`]). The maintainer is
/// deliberately not `Sync` to share — there is exactly one writer; readers
/// hold clones of the handle, never the maintainer.
#[derive(Debug)]
pub struct Maintainer {
    /// Next-generation database state (copy-on-write against published
    /// generations).
    db: DatabaseSnapshot,
    /// The plans the batch was prepared with.
    inner: Arc<PreparedPlans>,
    /// Physical plans for every group (built here when the batch was
    /// prepared with specialization off — maintenance always runs the
    /// specialized executor).
    plans: Vec<GroupPlan>,
    /// Cached topological order of the groups.
    topo: Vec<usize>,
    /// Next-generation view state; `Arc::make_mut` clones exactly the views
    /// a refresh touches.
    computed: FxHashMap<ViewId, Arc<ComputedView>>,
    /// The shadow ledger: per-view fixed-point aggregate totals carried
    /// exactly from generation to generation (`after = before + net`, in
    /// `i128`). Emitting certificate totals from this ledger — instead of
    /// re-encoding the merged `f64` state — is what makes the checker's
    /// accounting identities exact.
    shadow: FxHashMap<ViewId, Vec<i128>>,
    /// Fingerprint of the last emitted certificate; the next maintenance
    /// certificate records it as `parent_hash`.
    last_fingerprint: u64,
    /// Generation of the latest published snapshot.
    generation: u64,
    /// Number of transactions committed so far (the next commit is `txns+1`).
    txns: u64,
    /// The publication cell shared with every reader.
    handle: SnapshotHandle,
    /// Bounded history of recently published generations, oldest first (the
    /// back is always the current generation). Generations that fall out are
    /// retired writer-side; readers' own pins keep theirs alive.
    history: VecDeque<Arc<ViewSnapshot>>,
    /// Maximum length of `history` (at least 1 — the current generation).
    history_window: usize,
}

impl PreparedBatch {
    /// Executes the batch once, retains every computed view, publishes the
    /// result as generation 0 and returns the [`Maintainer`] whose
    /// [`SnapshotHandle`] serves it.
    ///
    /// This clones the shared database once — the maintainer needs its own
    /// (copy-on-write) database state to apply deltas to.
    pub fn into_serving(self, dynamics: &DynamicRegistry) -> Result<Maintainer, EngineError> {
        let db: Database = self.db.database().clone();
        let inner = Arc::clone(&self.inner);
        let plans: Vec<GroupPlan> = if inner.plans.is_empty() {
            inner
                .grouping
                .groups
                .iter()
                .map(|g| build_group_plan(&db, &inner.tree, &inner.pushdown.catalog, g))
                .collect::<Result<_, _>>()?
        } else {
            inner.plans.clone()
        };
        let topo = inner.grouping.topological_order();

        // Initial full computation on the morsel scheduler. Its morsel-order
        // merge is deterministic for any thread count, so the published
        // generation 0 does not depend on thread timing.
        let flat = execute_all(&db, &plans, &inner.grouping, dynamics, &inner.config)?;
        let computed: FxHashMap<ViewId, Arc<ComputedView>> =
            flat.into_iter().map(|(k, v)| (k, Arc::new(v))).collect();
        let db: DatabaseSnapshot = db.into();
        let results = project_results(&inner, &computed)?;

        // Seed the shadow ledger and emit the chain root: an `Execute`
        // certificate whose view totals the ledger starts from.
        let shadow: FxHashMap<ViewId, Vec<i128>> = computed
            .iter()
            .map(|(vid, cv)| (*vid, encoded_totals(cv)))
            .collect();
        let certificate = emit_execute(
            &inner,
            |name| db.relation(name).map(|r| r.len() as u64).unwrap_or(0),
            &computed,
            0,
            &results,
        )?;
        let last_fingerprint = fingerprint(&certificate);

        let snapshot = Arc::new(ViewSnapshot {
            generation: 0,
            txn: 0,
            db: db.clone(),
            computed: computed.clone(),
            results,
            inner: Arc::clone(&inner),
            certificate: Arc::new(certificate),
        });
        Ok(Maintainer {
            db,
            inner,
            plans,
            topo,
            computed,
            shadow,
            last_fingerprint,
            generation: 0,
            txns: 0,
            handle: SnapshotHandle::new(Arc::clone(&snapshot)),
            history: VecDeque::from([snapshot]),
            history_window: DEFAULT_HISTORY_WINDOW,
        })
    }
}

impl Maintainer {
    /// The publication cell. Clone it into every reader thread.
    pub fn handle(&self) -> SnapshotHandle {
        self.handle.clone()
    }

    /// The latest published snapshot (same as `self.handle().load()`).
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        self.handle.load()
    }

    /// Generation of the latest published snapshot.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The maintainer's database state (reflects every applied delta).
    pub fn database(&self) -> &DatabaseSnapshot {
        &self.db
    }

    /// The retained result of a view, if it exists in the catalog.
    pub fn view_state(&self, id: ViewId) -> Option<&ComputedView> {
        self.computed.get(&id).map(|cv| &**cv)
    }

    /// The groups a delta against `relation` would touch (seed groups plus
    /// transitive dependents), in refresh order.
    pub fn affected_groups(&self, relation: &str) -> Vec<usize> {
        let seeds: Vec<usize> = self
            .plans
            .iter()
            .enumerate()
            .filter(|(_, p)| p.relation == relation)
            .map(|(g, _)| g)
            .collect();
        self.inner.grouping.transitive_dependents(&seeds)
    }

    /// Bound on the writer-side generation history. See
    /// [`Maintainer::set_history_window`].
    pub fn history_window(&self) -> usize {
        self.history_window
    }

    /// Sets the generation-GC window: how many recently published
    /// generations the maintainer retains (for audits and late readers)
    /// before retiring them. Clamped to at least 1 — the current generation
    /// is always retained. Shrinking the window retires immediately.
    ///
    /// Retiring drops the *writer's* reference only: an unpinned generation
    /// frees at once, while a reader that pinned one through
    /// [`SnapshotHandle::load`] keeps exactly its own generation alive for
    /// as long as it holds the `Arc`.
    pub fn set_history_window(&mut self, window: usize) {
        self.history_window = window.max(1);
        while self.history.len() > self.history_window {
            self.history.pop_front();
        }
    }

    /// Number of generations currently retained writer-side (bounded by the
    /// history window).
    pub fn retained_generations(&self) -> usize {
        self.history.len()
    }

    /// The retained generations, oldest first (the last is the current one).
    pub fn retained_snapshots(&self) -> impl Iterator<Item = &Arc<ViewSnapshot>> {
        self.history.iter()
    }

    /// Approximate bytes of relation and view storage reachable from the
    /// retained history, deduplicated by storage pointer — copy-on-write
    /// shares unchanged relations and views across generations, and shared
    /// storage counts once.
    pub fn retained_bytes(&self) -> usize {
        let mut seen: FxHashSet<usize> = FxHashSet::default();
        let mut bytes = 0usize;
        for snap in &self.history {
            for rel in snap.db.relations() {
                if seen.insert(rel as *const Relation as usize) {
                    bytes += rel.size_bytes();
                }
            }
            for cv in snap.computed.values() {
                if seen.insert(Arc::as_ptr(cv) as usize) {
                    bytes += cv.size_bytes();
                }
            }
        }
        bytes
    }

    /// Commits a transaction: applies every per-relation delta atomically,
    /// refreshes the **union** of the affected refresh frontiers in one
    /// dependency-ordered DAG walk, and publishes exactly one generation.
    /// A bare [`TableDelta`](lmfao_data::TableDelta) commits as a single-relation transaction via
    /// `Into<Transaction>`.
    ///
    /// Published results match a full recompute over the updated database
    /// (exactly for integer-valued aggregates; within float-addition
    /// reassociation plus residue snapping otherwise — see the module docs).
    /// Readers keep answering from previously published generations
    /// throughout; they observe all of the transaction's effects or none.
    ///
    /// Typed failures, all before any state changes: an empty transaction is
    /// [`EngineError::EmptyTransaction`] (a commit always publishes — an
    /// empty one would publish a phantom generation), a transaction that
    /// both inserts and deletes one row is
    /// [`EngineError::ConflictingDelta`] (resolve ordered streams with
    /// [`Transaction::coalesce`] or a [`crate::buffer::DeltaBuffer`] first),
    /// and an unmatched delete in *any* delta fails the whole transaction.
    pub fn commit(
        &mut self,
        txn: impl Into<Transaction>,
        dynamics: &DynamicRegistry,
    ) -> Result<RefreshStats, EngineError> {
        self.commit_txn(txn.into(), dynamics)
    }

    fn commit_txn(
        &mut self,
        txn: Transaction,
        dynamics: &DynamicRegistry,
    ) -> Result<RefreshStats, EngineError> {
        if txn.is_empty() {
            return Err(EngineError::EmptyTransaction);
        }
        if let Some((relation, row)) = txn.conflict() {
            return Err(EngineError::ConflictingDelta { relation, row });
        }
        let mut stats = RefreshStats {
            delta_rows: txn.len(),
            relations_changed: txn.num_relations(),
            ..RefreshStats::default()
        };

        // Stage the database: every delta lands on a private copy-on-write
        // clone, so an unmatched delete in any of them fails before the
        // maintainer's own state changes — the transaction is atomic against
        // the writer, not just against readers.
        let mut staged_db = self.db.clone();
        let mut relation_accounts = Vec::with_capacity(txn.num_relations());
        for delta in txn.deltas() {
            let rows_before = staged_db
                .relation(delta.relation())
                .map_err(|_| EngineError::UnknownRelation(delta.relation().to_string()))?
                .len() as u64;
            staged_db.apply(delta)?;
            let rows_after = staged_db
                .relation(delta.relation())
                .map_err(|_| EngineError::UnknownRelation(delta.relation().to_string()))?
                .len() as u64;
            relation_accounts.push(RelationDeltaAccount {
                relation: delta.relation().to_string(),
                rows_inserted: delta.num_inserts() as u64,
                rows_deleted: delta.num_deletes() as u64,
                rows_before,
                rows_after,
            });
        }

        // Sort each relation's delta partitions into the trie order of the
        // node that scans it, so the seed scans see valid tries (every group
        // of one relation scans at the same node, hence one order suffices).
        let mut partitions: FxHashMap<&str, (Relation, Relation)> = FxHashMap::default();
        for delta in txn.deltas() {
            let (mut inserts, mut deletes) = delta.partition();
            if let Some(plan) = self.plans.iter().find(|p| p.relation == delta.relation()) {
                inserts.sort_by_positions(&plan.attr_order_cols);
                deletes.sort_by_positions(&plan.attr_order_cols);
            }
            partitions.insert(delta.relation(), (inserts, deletes));
        }
        let num_attrs = staged_db.schema().num_attributes();

        // One walk over the groups in dependency order, accumulating signed
        // view deltas. Each group's output change decomposes exactly (by
        // linearity of the aggregates in each relation/view) as
        //
        //   ΔF = F(ΔR, V_old)                 — the *seed* contribution
        //      + F(R_new, V_new) - F(R_new, V_old)   — the *propagation*
        //
        // so a group whose relation changed *and* whose incoming views
        // changed (possible only for multi-relation transactions) is still
        // visited exactly once. `changed` holds the delta (not the new
        // value) of every view refreshed so far; `seed_split` the per-view
        // insert/delete contribution split and `prop_split` the summed
        // per-scan propagation totals, both in fixed point and captured
        // before any merge — this is the `net == inserted - deleted +
        // propagated` half of the certificate ("sums of encodings, never
        // encodings of sums").
        //
        // The per-group work lives in `refresh_group`, which reads only the
        // staged database, the retained (old) views and the upstream deltas
        // — so with `threads > 1` independent groups of the frontier refresh
        // concurrently under a dependency-counted ready queue, and the
        // outputs fold here in topological order either way. Both modes
        // produce identical state: every group sees exactly its producers'
        // deltas, and the morsel scans themselves are thread-count
        // deterministic.
        let mut changed: FxHashMap<ViewId, Arc<ComputedView>> = FxHashMap::default();
        let mut seed_split: FxHashMap<ViewId, (Vec<i128>, Vec<i128>)> = FxHashMap::default();
        let mut prop_split: FxHashMap<ViewId, Vec<i128>> = FxHashMap::default();

        // The affected set: seed groups plus transitive dependents, in
        // refresh order. An over-approximation of the groups that actually
        // run — a dependent still skips when every upstream delta cancelled
        // to empty.
        let seeds: Vec<usize> = self
            .plans
            .iter()
            .enumerate()
            .filter(|(_, p)| partitions.contains_key(p.relation.as_str()))
            .map(|(g, _)| g)
            .collect();
        let affected = self.inner.grouping.transitive_dependents(&seeds);
        let threads = self.inner.config.threads.max(1);

        if threads > 1 && affected.len() > 1 {
            stats.skipped_groups += self.plans.len() - affected.len();
            let outcomes = refresh_frontier_parallel(
                &affected,
                &self.plans,
                &partitions,
                num_attrs,
                &staged_db,
                &self.computed,
                dynamics,
                threads,
            )?;
            for (_, outcome) in outcomes {
                match outcome {
                    None => stats.skipped_groups += 1,
                    Some(out) => fold_group_refresh(
                        out,
                        &mut stats,
                        &mut changed,
                        &mut seed_split,
                        &mut prop_split,
                    ),
                }
            }
        } else {
            for &gid in &self.topo {
                let plan = &self.plans[gid];
                let seed = partitions.get(plan.relation.as_str());
                let propagate = plan
                    .incoming
                    .iter()
                    .any(|inc| changed.contains_key(&inc.view));
                if seed.is_none() && !propagate {
                    stats.skipped_groups += 1;
                    continue;
                }
                let out = refresh_group(
                    plan,
                    seed,
                    num_attrs,
                    &staged_db,
                    &self.computed,
                    &changed,
                    dynamics,
                    threads,
                )?;
                fold_group_refresh(
                    out,
                    &mut stats,
                    &mut changed,
                    &mut seed_split,
                    &mut prop_split,
                );
            }
        }

        // Fold the signed deltas into the retained state. `Arc::make_mut`
        // is the copy-on-write step: only views on the refresh frontier are
        // cloned, and only when a published generation still pins them.
        // Residues that are zero up to rounding snap to exact zero so the
        // pruning below drops keys whose aggregates cancelled. Each fold
        // also settles the view's certificate account: the exact encoded
        // net moves the shadow ledger, never the re-encoded float state.
        let mut accounts = Vec::with_capacity(changed.len());
        for (vid, d) in changed {
            stats.views_changed += 1;
            let rows_before = self.computed.get(&vid).map_or(0, |cv| cv.len() as u64);
            let entry = self.computed.entry(vid).or_insert_with(|| {
                Arc::new(ComputedView::new(d.key_attrs.clone(), d.num_aggregates))
            });
            let cv = Arc::make_mut(entry);
            cv.merge_signed_snapped(&d, 1.0, CANCELLATION_REL_EPS);
            cv.prune_zero_entries();

            let split = seed_split.remove(&vid);
            let prop = prop_split.remove(&vid);
            let (inserted, deleted, propagated, net) = match (split, prop) {
                // Seeded views: net is defined as inserted - deleted (+ the
                // propagated component when the same transaction also changed
                // an incoming view), so the checker's signed identity holds
                // exactly.
                (Some((ins, del)), prop) => {
                    let net: Vec<i128> = ins
                        .iter()
                        .zip(&del)
                        .enumerate()
                        .map(|(i, (a, b))| a - b + prop.as_ref().map_or(0, |p| p[i]))
                        .collect();
                    (Some(ins), Some(del), prop, net)
                }
                // Purely propagated views: the net is the sum of the encoded
                // per-scan totals; the certificate carries no split.
                (None, Some(p)) => (None, None, None, p),
                // Unreachable (every changed view came from a scan above),
                // but harmless: observe the net from the merged delta.
                (None, None) => (None, None, None, encoded_totals(&d)),
            };
            let totals_before = self
                .shadow
                .get(&vid)
                .cloned()
                .unwrap_or_else(|| vec![0; net.len()]);
            let totals_after: Vec<i128> =
                totals_before.iter().zip(&net).map(|(a, b)| a + b).collect();
            self.shadow.insert(vid, totals_after.clone());
            accounts.push(ViewDeltaAccount {
                view: vid.0 as u32,
                rows_before,
                rows_after: cv.len() as u64,
                inserted,
                deleted,
                propagated,
                net,
                totals_before,
                totals_after,
            });
        }
        accounts.sort_by_key(|a| a.view);

        // Publish: swap in the staged database, project the new results,
        // emit the chained maintenance certificate and swap the handle's
        // pointer. Everything above ran on private state; readers observe
        // the new generation — one per transaction — atomically or not at
        // all.
        self.db = staged_db;
        self.generation += 1;
        self.txns += 1;
        let results = project_results(&self.inner, &self.computed)?;
        let certificate = Certificate::Maintenance(MaintenanceCertificate {
            version: CERTIFICATE_VERSION,
            generation: self.generation,
            txn: self.txns,
            parent_generation: self.generation - 1,
            parent_hash: self.last_fingerprint,
            relations: relation_accounts,
            views: accounts,
            queries: self.ledger_query_totals(),
        });
        self.last_fingerprint = fingerprint(&certificate);
        let snapshot = Arc::new(ViewSnapshot {
            generation: self.generation,
            txn: self.txns,
            db: self.db.clone(),
            computed: self.computed.clone(),
            results,
            inner: Arc::clone(&self.inner),
            certificate: Arc::new(certificate),
        });
        self.handle.publish(Arc::clone(&snapshot));
        // Generation GC: retain the new generation writer-side and retire
        // the oldest past the window. Retiring only drops the writer's
        // reference — pinned readers keep their own generation alive.
        self.history.push_back(snapshot);
        while self.history.len() > self.history_window {
            self.history.pop_front();
        }
        Ok(stats)
    }

    /// Per-query totals as of the maintainer's current state, read from the
    /// shadow ledger (the chain checker verifies them against the state it
    /// tracks independently from the execute root forward).
    fn ledger_query_totals(&self) -> Vec<QueryTotals> {
        self.inner
            .queries
            .iter()
            .map(|pq| QueryTotals {
                name: pq.name.clone(),
                view: pq.view.0 as u32,
                rows: self.computed.get(&pq.view).map_or(0, |cv| cv.len() as u64),
                aggregate_indices: pq.aggregate_indices.iter().map(|&i| i as u32).collect(),
                totals: pq
                    .aggregate_indices
                    .iter()
                    .map(|&i| self.shadow.get(&pq.view).map_or(0, |t| t[i]))
                    .collect(),
            })
            .collect()
    }
}

/// Encoded (inserted, deleted) totals of one view's seed refresh — the two
/// signed halves the maintenance certificate accounts separately.
type SeedTotals = (Vec<i128>, Vec<i128>);

/// The private output of one group's frontier refresh: everything the commit
/// folds into shared state afterwards, so a group can run on any worker
/// without touching the maintainer.
struct GroupRefresh {
    /// True when the group's own relation changed (a seed refresh), false
    /// for a purely propagated one.
    seeded: bool,
    /// Delta scans the group executed.
    scans: usize,
    /// Merged signed output delta per view, in plan output order (empty
    /// deltas included; the fold filters them).
    deltas: Vec<(ViewId, Arc<ComputedView>)>,
    /// Encoded (inserted, deleted) seed totals per view.
    seed_split: Vec<(ViewId, SeedTotals)>,
    /// Summed encoded propagation totals per view.
    prop_split: Vec<(ViewId, Vec<i128>)>,
}

/// Refreshes one group of the frontier: the seed contribution of its
/// relation's delta partitions plus the propagation of upstream view deltas,
/// exactly as the sequential walk computes them. Pure with respect to the
/// maintainer — reads the staged database, the retained (old) views, and the
/// deltas of upstream views; returns everything it produced.
#[allow(clippy::too_many_arguments)]
fn refresh_group(
    plan: &GroupPlan,
    seed: Option<&(Relation, Relation)>,
    num_attrs: usize,
    staged_db: &DatabaseSnapshot,
    computed: &FxHashMap<ViewId, Arc<ComputedView>>,
    upstream: &FxHashMap<ViewId, Arc<ComputedView>>,
    dynamics: &DynamicRegistry,
    scan_threads: usize,
) -> Result<GroupRefresh, EngineError> {
    let changed_incoming: Vec<bool> = plan
        .incoming
        .iter()
        .map(|inc| upstream.contains_key(&inc.view))
        .collect();
    let propagate = changed_incoming.iter().any(|&c| c);
    let mut out = GroupRefresh {
        seeded: seed.is_some(),
        scans: 0,
        deltas: Vec::new(),
        seed_split: Vec::new(),
        prop_split: Vec::new(),
    };

    // Seed contribution: the delta partitions scanned against the retained
    // (old) incoming views.
    let mut group_deltas: Option<Vec<(ViewId, ComputedView)>> = None;
    if let Some((inserts, deletes)) = seed {
        out.scans += [inserts, deletes]
            .into_iter()
            .filter(|p| !p.is_empty())
            .count();
        let mut acc = scan_partition(inserts, num_attrs, plan, computed, dynamics)?;
        let neg = scan_partition(deletes, num_attrs, plan, computed, dynamics)?;
        for ((vid, a), (nvid, d)) in acc.iter_mut().zip(&neg) {
            debug_assert_eq!(vid, nvid);
            out.seed_split
                .push((*vid, (encoded_totals(a), encoded_totals(d))));
            a.merge_signed(d, -1.0);
        }
        group_deltas = Some(acc);
    }

    // Propagation contribution: charge the incoming-view deltas against the
    // *updated* relation.
    if propagate {
        let relation = staged_db
            .relation(&plan.relation)
            .map_err(|_| EngineError::UnknownRelation(plan.relation.clone()))?;
        let scans: Vec<Vec<(ViewId, ComputedView)>> =
            if multi_changed_terms(plan, &changed_incoming) {
                // Some term multiplies two changed views together, so the output
                // delta is not linear in any single view. Telescope: step t
                // charges the t-th changed view's delta, with earlier changed
                // views at their NEW state and later ones still OLD — the steps
                // sum exactly to the total change. The NEW states are built
                // locally from old + delta (recomputed per group; only the rare
                // multi-changed-term shape pays this).
                let steps: Vec<(usize, ViewId)> = plan
                    .incoming
                    .iter()
                    .enumerate()
                    .filter(|(_, inc)| upstream.contains_key(&inc.view))
                    .map(|(i, inc)| (i, inc.view))
                    .collect();
                let mut staged_views: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
                for &(_, vid) in &steps {
                    staged_views.entry(vid).or_insert_with(|| {
                        let d = &upstream[&vid];
                        let mut nv = computed.get(&vid).map_or_else(
                            || ComputedView::new(d.key_attrs.clone(), d.num_aggregates),
                            |cv| (**cv).clone(),
                        );
                        nv.merge_signed(d, 1.0);
                        nv.prune_zero_entries();
                        nv
                    });
                }
                let mut earlier: FxHashSet<ViewId> = FxHashSet::default();
                let mut scans = Vec::with_capacity(steps.len());
                for &(idx, vid) in &steps {
                    let mut one_hot = vec![false; plan.incoming.len()];
                    one_hot[idx] = true;
                    let mask = active_slots(plan, &one_hot);
                    let overlay = TelescopeOverlay {
                        full: computed,
                        staged: &staged_views,
                        deltas: upstream,
                        current: vid,
                        earlier: &earlier,
                    };
                    scans.push(scan_morsels(
                        relation,
                        num_attrs,
                        plan,
                        &overlay,
                        dynamics,
                        Some(&mask),
                        scan_threads,
                    )?);
                    earlier.insert(vid);
                }
                scans
            } else {
                // No term references two changed views, so the output delta is
                // jointly linear in them: one combined scan with every changed
                // view overlaid by its delta and every affected slot unmasked.
                let mask = active_slots(plan, &changed_incoming);
                let overlay = DeltaOverlay {
                    full: computed,
                    deltas: upstream,
                };
                vec![scan_morsels(
                    relation,
                    num_attrs,
                    plan,
                    &overlay,
                    dynamics,
                    Some(&mask),
                    scan_threads,
                )?]
            };
        out.scans += scans.len();
        for scan in scans {
            for (vid, d) in &scan {
                let enc = encoded_totals(d);
                match out.prop_split.iter_mut().find(|(v, _)| v == vid) {
                    Some((_, totals)) => {
                        for (t, e) in totals.iter_mut().zip(&enc) {
                            *t += e;
                        }
                    }
                    None => out.prop_split.push((*vid, enc)),
                }
            }
            match &mut group_deltas {
                Some(acc) => {
                    for ((vid, a), (svid, d)) in acc.iter_mut().zip(&scan) {
                        debug_assert_eq!(vid, svid);
                        a.merge_signed(d, 1.0);
                    }
                }
                None => group_deltas = Some(scan),
            }
        }
    }

    out.deltas = group_deltas
        .unwrap_or_default()
        .into_iter()
        .map(|(vid, cv)| (vid, Arc::new(cv)))
        .collect();
    Ok(out)
}

/// Folds one group's private refresh output into the commit's shared
/// accumulators, in the same order the sequential walk would.
fn fold_group_refresh(
    out: GroupRefresh,
    stats: &mut RefreshStats,
    changed: &mut FxHashMap<ViewId, Arc<ComputedView>>,
    seed_split: &mut FxHashMap<ViewId, (Vec<i128>, Vec<i128>)>,
    prop_split: &mut FxHashMap<ViewId, Vec<i128>>,
) {
    if out.seeded {
        stats.seed_groups += 1;
    } else {
        stats.propagated_groups += 1;
    }
    stats.group_scans += out.scans;
    for (vid, split) in out.seed_split {
        seed_split.insert(vid, split);
    }
    for (vid, enc) in out.prop_split {
        let totals = prop_split.entry(vid).or_insert_with(|| vec![0; enc.len()]);
        for (t, e) in totals.iter_mut().zip(&enc) {
            *t += e;
        }
    }
    for (vid, cv) in out.deltas {
        // An empty delta means the view did not change: leaving it out lets
        // downstream groups skip entirely.
        if !cv.is_empty() {
            changed.insert(vid, cv);
        }
    }
}

/// Shared state of the parallel frontier walk — the commit-side analog of
/// the executor's dependency-counted ready queue.
struct FrontierSched {
    ready: Vec<usize>,
    indegree: FxHashMap<usize, usize>,
    /// Published view deltas of completed groups (non-empty ones only, the
    /// same contract as the sequential walk's `changed` map).
    deltas: FxHashMap<ViewId, Arc<ComputedView>>,
    outcomes: FxHashMap<usize, Option<GroupRefresh>>,
    remaining: usize,
    error: Option<EngineError>,
}

fn lock_sched(m: &Mutex<FrontierSched>) -> MutexGuard<'_, FrontierSched> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Refreshes the affected groups concurrently: a group becomes ready once
/// every producer among `affected` has finished, runs its scans against a
/// snapshot of the published deltas, and releases its dependents. Outer
/// workers carry the parallelism, so each group's scans run single-threaded
/// (no pool oversubscription). Returns one outcome per affected group in
/// `affected` (topological) order — `None` for groups whose upstream deltas
/// all cancelled away (skipped without a scan).
///
/// Deterministic by construction: a group's inputs are fixed at readiness
/// (exactly its producers' deltas, regardless of worker schedule), the
/// morsel scans are thread-count invariant, and the caller folds outcomes
/// in topological order.
#[allow(clippy::too_many_arguments)]
fn refresh_frontier_parallel(
    affected: &[usize],
    plans: &[GroupPlan],
    partitions: &FxHashMap<&str, (Relation, Relation)>,
    num_attrs: usize,
    staged_db: &DatabaseSnapshot,
    computed: &FxHashMap<ViewId, Arc<ComputedView>>,
    dynamics: &DynamicRegistry,
    threads: usize,
) -> Result<Vec<(usize, Option<GroupRefresh>)>, EngineError> {
    // Producer edges among the affected groups: view -> the affected group
    // producing it, then per-group dependency counts and dependent lists.
    let in_set: FxHashSet<usize> = affected.iter().copied().collect();
    let mut producer: FxHashMap<ViewId, usize> = FxHashMap::default();
    for &gid in affected {
        for output in &plans[gid].outputs {
            producer.insert(output.view, gid);
        }
    }
    let mut dependents: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    let mut indegree: FxHashMap<usize, usize> = FxHashMap::default();
    for &gid in affected {
        let mut deps: Vec<usize> = plans[gid]
            .incoming
            .iter()
            .filter_map(|inc| producer.get(&inc.view).copied())
            .filter(|&p| p != gid && in_set.contains(&p))
            .collect();
        deps.sort_unstable();
        deps.dedup();
        indegree.insert(gid, deps.len());
        for p in deps {
            dependents.entry(p).or_default().push(gid);
        }
    }
    let ready: Vec<usize> = affected
        .iter()
        .copied()
        .filter(|g| indegree[g] == 0)
        .collect();
    let state = Mutex::new(FrontierSched {
        ready,
        indegree,
        deltas: FxHashMap::default(),
        outcomes: FxHashMap::default(),
        remaining: affected.len(),
        error: None,
    });
    let wake = Condvar::new();
    let workers = threads.min(affected.len()).max(1);
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let (gid, upstream) = {
                    let mut st = lock_sched(&state);
                    loop {
                        if st.error.is_some() || st.remaining == 0 {
                            return;
                        }
                        if let Some(gid) = st.ready.pop() {
                            // The delta snapshot is complete for this group:
                            // readiness means every producer already
                            // published. Cloning the map clones Arcs only.
                            break (gid, st.deltas.clone());
                        }
                        st = wake.wait(st).unwrap_or_else(PoisonError::into_inner);
                    }
                };
                let plan = &plans[gid];
                let seed = partitions.get(plan.relation.as_str());
                let propagate = plan
                    .incoming
                    .iter()
                    .any(|inc| upstream.contains_key(&inc.view));
                let outcome = if seed.is_none() && !propagate {
                    Ok(None)
                } else {
                    refresh_group(
                        plan, seed, num_attrs, staged_db, computed, &upstream, dynamics, 1,
                    )
                    .map(Some)
                };
                let mut st = lock_sched(&state);
                match outcome {
                    Err(e) => {
                        st.error.get_or_insert(e);
                        wake.notify_all();
                        return;
                    }
                    Ok(res) => {
                        if let Some(out) = &res {
                            for (vid, cv) in &out.deltas {
                                if !cv.is_empty() {
                                    st.deltas.insert(*vid, Arc::clone(cv));
                                }
                            }
                        }
                        st.outcomes.insert(gid, res);
                        st.remaining -= 1;
                        if let Some(deps) = dependents.get(&gid) {
                            for &dep in deps {
                                let d = st.indegree.get_mut(&dep).expect("dependent is affected");
                                *d -= 1;
                                if *d == 0 {
                                    st.ready.push(dep);
                                }
                            }
                        }
                        wake.notify_all();
                    }
                }
            });
        }
    })
    .expect("frontier worker panicked");
    let mut st = state.into_inner().unwrap_or_else(PoisonError::into_inner);
    if let Some(e) = st.error.take() {
        return Err(e);
    }
    Ok(affected
        .iter()
        .map(|&gid| {
            let outcome = st
                .outcomes
                .remove(&gid)
                .expect("every affected group completed");
            (gid, outcome)
        })
        .collect())
}

/// Resolves incoming views during a propagation scan: changed views resolve
/// to their signed deltas, unchanged views to the retained full results.
struct DeltaOverlay<'a> {
    full: &'a FxHashMap<ViewId, Arc<ComputedView>>,
    deltas: &'a FxHashMap<ViewId, Arc<ComputedView>>,
}

impl ViewSource for DeltaOverlay<'_> {
    fn view_result(&self, id: ViewId) -> Option<&ComputedView> {
        self.deltas
            .get(&id)
            .map(|cv| &**cv)
            .or_else(|| self.full.view_result(id))
    }
}

/// Resolves incoming views during one telescoped propagation step: the
/// current view resolves to its signed delta, views charged in *earlier*
/// steps to their staged NEW state, and everything else to the retained OLD
/// state. Summing the steps telescopes exactly to the group's total change.
struct TelescopeOverlay<'a> {
    full: &'a FxHashMap<ViewId, Arc<ComputedView>>,
    staged: &'a FxHashMap<ViewId, ComputedView>,
    deltas: &'a FxHashMap<ViewId, Arc<ComputedView>>,
    current: ViewId,
    earlier: &'a FxHashSet<ViewId>,
}

impl ViewSource for TelescopeOverlay<'_> {
    fn view_result(&self, id: ViewId) -> Option<&ComputedView> {
        if id == self.current {
            self.deltas.get(&id).map(|cv| &**cv)
        } else if self.earlier.contains(&id) {
            self.staged.get(&id)
        } else {
            self.full.view_result(id)
        }
    }
}

/// True if some term slot of `plan` multiplies together two *different*
/// changed incoming views — the one shape whose output delta is not jointly
/// linear in the changed views, forcing the telescoped propagation.
fn multi_changed_terms(plan: &GroupPlan, changed_incoming: &[bool]) -> bool {
    fn note(slot_ref: &mut [Option<usize>], slot: usize, inc: usize) -> bool {
        match slot_ref[slot] {
            Some(prev) => prev != inc,
            None => {
                slot_ref[slot] = Some(inc);
                false
            }
        }
    }
    let mut slot_ref: Vec<Option<usize>> = vec![None; plan.num_slots];
    for program in &plan.programs {
        for update in program {
            if let DepthUpdate::ScalarView { slot, incoming, .. } = update {
                if changed_incoming[*incoming] && note(&mut slot_ref, *slot, *incoming) {
                    return true;
                }
            }
        }
    }
    for output in &plan.outputs {
        for agg in &output.aggregates {
            for term in &agg.terms {
                for &(inc, _) in &term.extra_refs {
                    if changed_incoming[inc] && note(&mut slot_ref, term.slot, inc) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Runs a seed group's plan over one delta partition (already sorted into
/// the plan's trie order), skipping the scan entirely for empty partitions.
fn scan_partition<V: ViewSource>(
    partition: &Relation,
    num_attrs: usize,
    plan: &GroupPlan,
    computed: &V,
    dynamics: &DynamicRegistry,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    if partition.is_empty() {
        return Ok(plan
            .outputs
            .iter()
            .map(|o| {
                (
                    o.view,
                    ComputedView::new(o.key_attrs.clone(), o.aggregates.len()),
                )
            })
            .collect());
    }
    execute_group_scan(partition, num_attrs, plan, computed, dynamics, None, None)
}

/// The term slots of `plan` that reference at least one changed incoming
/// view — the only terms that can contribute to the group's output delta
/// when changed views are overlaid with their deltas. Everything else is
/// masked to zero.
fn active_slots(plan: &GroupPlan, changed_incoming: &[bool]) -> Vec<bool> {
    let mut active = vec![false; plan.num_slots];
    for program in &plan.programs {
        for update in program {
            if let DepthUpdate::ScalarView { slot, incoming, .. } = update {
                if changed_incoming[*incoming] {
                    active[*slot] = true;
                }
            }
        }
    }
    for output in &plan.outputs {
        for agg in &output.aggregates {
            for term in &agg.terms {
                if term
                    .extra_refs
                    .iter()
                    .any(|&(inc, _)| changed_incoming[inc])
                {
                    active[term.slot] = true;
                }
            }
        }
    }
    active
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::Engine;
    use lmfao_data::{AttrId, AttrType, DatabaseSchema, RelationSchema, TableDelta, Value};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let ids: Vec<AttrId> = ["store", "item", "units", "price"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let sales = lmfao_data::Relation::from_rows(
            RelationSchema::new("Sales", vec![ids[0], ids[1], ids[2]]),
            (0..40)
                .map(|i| {
                    vec![
                        Value::Int(i % 5),
                        Value::Int(i % 7),
                        Value::Double((i % 11) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let items = lmfao_data::Relation::from_rows(
            RelationSchema::new("Items", vec![ids[1], ids[3]]),
            (0..7)
                .map(|i| vec![Value::Int(i), Value::Double((3 * (i + 1)) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn batch(db: &Database) -> QueryBatch {
        let store = db.schema().attr_id("store").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("rev", vec![], vec![Aggregate::sum_product(units, price)]);
        batch.push(
            "per_store",
            vec![store],
            vec![Aggregate::sum(units), Aggregate::count()],
        );
        batch
    }

    fn serving(db: &Database, tree: &JoinTree) -> Maintainer {
        Engine::new(db.clone(), tree.clone(), EngineConfig::default())
            .prepare(&batch(db))
            .unwrap()
            .into_serving(&DynamicRegistry::new())
            .unwrap()
    }

    fn sales_insert(db: &Database, store: i64, item: i64, units: f64) -> TableDelta {
        let mut d = TableDelta::for_relation(db.relation("Sales").unwrap());
        d.insert(&[Value::Int(store), Value::Int(item), Value::Double(units)])
            .unwrap();
        d
    }

    #[test]
    fn generation_zero_is_published_on_build() {
        let (db, tree) = db_and_tree();
        let maintainer = serving(&db, &tree);
        let snap = maintainer.snapshot();
        assert_eq!(snap.generation(), 0);
        assert_eq!(maintainer.generation(), 0);
        assert_eq!(snap.query("count").unwrap().scalar()[0], 40.0);
        assert!(matches!(
            snap.query("nope"),
            Err(EngineError::UnknownQuery(_))
        ));
    }

    #[test]
    fn generation_accessors_label_handle_and_pinned_snapshots() {
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let dynamics = DynamicRegistry::new();
        let handle = maintainer.handle();
        assert_eq!(handle.generation(), 0);
        assert_eq!(handle.load().generation(), 0);
        maintainer
            .commit(sales_insert(&db, 1, 1, 2.0), &dynamics)
            .unwrap();
        let pinned = handle.load();
        assert_eq!(handle.generation(), 1);
        assert_eq!(pinned.generation(), 1);
        maintainer
            .commit(sales_insert(&db, 2, 2, 4.0), &dynamics)
            .unwrap();
        // The handle tracks the latest publication; a pinned snapshot keeps
        // its own label.
        assert_eq!(handle.generation(), 2);
        assert_eq!(pinned.generation(), 1);
        assert_eq!(maintainer.generation(), 2);
    }

    #[test]
    fn certificates_chain_across_generations_and_survive_json() {
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let dynamics = DynamicRegistry::new();
        let mut chain = vec![Arc::clone(maintainer.snapshot().certificate())];
        // Inserts, a dimension update and a deletion: seed accounting with
        // both partitions plus DAG propagation all land in the chain.
        for i in 0..3 {
            maintainer
                .commit(sales_insert(&db, i, i, (i * 2) as f64), &dynamics)
                .unwrap();
            chain.push(Arc::clone(maintainer.snapshot().certificate()));
        }
        let mut reprice = TableDelta::for_relation(db.relation("Items").unwrap());
        reprice
            .delete(&[Value::Int(2), Value::Double(9.0)])
            .unwrap();
        reprice
            .insert(&[Value::Int(2), Value::Double(21.0)])
            .unwrap();
        maintainer.commit(&reprice, &dynamics).unwrap();
        chain.push(Arc::clone(maintainer.snapshot().certificate()));

        let summary = lmfao_certify::check_chain(chain.iter().map(|c| &**c)).unwrap();
        assert_eq!(summary.certificates, 5);
        assert_eq!(summary.final_generation, 4);
        assert!(summary.views_tracked > 0);

        // The chain must also survive serialization: parse back every
        // certificate and re-check (fingerprints hash the canonical JSON, so
        // a round-trip that altered anything would break the linkage).
        let parsed: Vec<lmfao_certify::Certificate> = chain
            .iter()
            .map(|c| lmfao_certify::parse_certificate(&lmfao_certify::to_json(c)).unwrap())
            .collect();
        let re_summary = lmfao_certify::check_chain(parsed.iter()).unwrap();
        assert_eq!(re_summary, summary);
    }

    #[test]
    fn pinned_generations_survive_later_publications() {
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let dynamics = DynamicRegistry::new();
        let gen0 = maintainer.handle().load();
        let count0 = gen0.query("count").unwrap().scalar()[0];
        for i in 0..3 {
            maintainer
                .commit(sales_insert(&db, i, i, 10.0), &dynamics)
                .unwrap();
        }
        let gen3 = maintainer.handle().load();
        assert_eq!(gen3.generation(), 3);
        assert_eq!(gen3.query("count").unwrap().scalar()[0], count0 + 3.0);
        // The pinned generation still answers with its own state.
        assert_eq!(gen0.generation(), 0);
        assert_eq!(gen0.query("count").unwrap().scalar()[0], count0);
        assert_eq!(gen0.database().relation("Sales").unwrap().len(), 40);
        assert_eq!(gen3.database().relation("Sales").unwrap().len(), 43);
    }

    #[test]
    fn refresh_copies_only_the_frontier() {
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let before = maintainer.snapshot();
        // A Sales delta leaves the Items→Sales view (computed at the Items
        // node) off the frontier: its state must stay shared between the
        // generations, while frontier views are copied.
        let stats = maintainer
            .commit(sales_insert(&db, 1, 3, 9.0), &DynamicRegistry::new())
            .unwrap();
        let after = maintainer.snapshot();
        assert!(stats.views_changed > 0);
        let items_plan_views: Vec<ViewId> = maintainer
            .plans
            .iter()
            .filter(|p| p.relation == "Items")
            .flat_map(|p| p.outputs.iter().map(|o| o.view))
            .collect();
        assert!(!items_plan_views.is_empty());
        for vid in items_plan_views {
            assert!(
                before.shares_view_with(&after, vid),
                "off-frontier view {vid:?} must stay shared"
            );
        }
        // Base data: Items is shared, Sales was copied.
        assert!(before
            .database()
            .shares_relation_with(after.database(), "Items"));
        assert!(!before
            .database()
            .shares_relation_with(after.database(), "Sales"));
    }

    #[test]
    fn published_results_match_a_recompute_at_each_generation() {
        let (db, tree) = db_and_tree();
        let b = batch(&db);
        let mut maintainer = serving(&db, &tree);
        let dynamics = DynamicRegistry::new();
        let mut pinned = vec![maintainer.snapshot()];
        for i in 0..4 {
            maintainer
                .commit(sales_insert(&db, i % 5, i % 7, (i * 3) as f64), &dynamics)
                .unwrap();
            pinned.push(maintainer.snapshot());
        }
        for (g, snap) in pinned.iter().enumerate() {
            assert_eq!(snap.generation(), g as u64);
            let fresh = Engine::new(
                snap.database().materialize(),
                snap.join_tree().clone(),
                *snap.config(),
            )
            .execute(&b)
            .unwrap();
            for (got, want) in snap.results().queries.iter().zip(&fresh.queries) {
                assert_eq!(got.data, want.data, "generation {g}, query {}", got.name);
            }
        }
    }

    #[test]
    fn failed_apply_publishes_nothing() {
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let gen0 = maintainer.snapshot();
        let mut bad = TableDelta::for_relation(db.relation("Sales").unwrap());
        bad.delete(&[Value::Int(99), Value::Int(99), Value::Double(99.0)])
            .unwrap();
        assert!(maintainer.commit(&bad, &DynamicRegistry::new()).is_err());
        let still = maintainer.snapshot();
        assert_eq!(still.generation(), 0);
        assert!(Arc::ptr_eq(&gen0, &still), "same snapshot object");
        assert_eq!(maintainer.database().relation("Sales").unwrap().len(), 40);
    }

    #[test]
    fn long_cancelling_stream_leaves_state_identical_to_a_fresh_build() {
        // The float-drift regression: 10k updates that net to zero. Without
        // residue snapping, float reassociation can leave ~n·ulp ghosts that
        // exact-zero pruning never drops; with it, the retained state must
        // match a fresh build key-for-key (counts exactly, floats within the
        // documented 1e-9 relative tolerance).
        let (db, tree) = db_and_tree();
        let mut maintainer = serving(&db, &tree);
        let dynamics = DynamicRegistry::new();
        let fresh_maintainer = serving(&db, &tree);
        let fresh = fresh_maintainer.snapshot();

        // 10k alternating inserts/deletes of a tuple with a non-dyadic
        // measure (0.3 is not exactly representable: maximal rounding
        // mischief), one publication per update.
        let row = [Value::Int(2), Value::Int(3), Value::Double(0.3)];
        for i in 0..10_000 {
            let mut d = TableDelta::for_relation(db.relation("Sales").unwrap());
            if i % 2 == 0 {
                d.insert(&row).unwrap();
            } else {
                d.delete(&row).unwrap();
            }
            maintainer.commit(&d, &dynamics).unwrap();
        }
        assert_eq!(maintainer.generation(), 10_000);

        let snap = maintainer.snapshot();
        assert_eq!(
            snap.database().relation("Sales").unwrap().len(),
            40,
            "stream nets to zero tuples"
        );
        for (got, want) in snap.results().queries.iter().zip(&fresh.results().queries) {
            assert_eq!(
                got.data.len(),
                want.data.len(),
                "query {}: ghost keys survived the cancelling stream",
                got.name
            );
            for (key, wv) in &want.data {
                let gv = got.data.get(key).unwrap_or_else(|| {
                    panic!("query {}: key {key:?} missing after stream", got.name)
                });
                for (g, w) in gv.iter().zip(wv) {
                    assert!(
                        (g - w).abs() <= 1e-9 * w.abs().max(1.0),
                        "query {}: {g} vs {w}",
                        got.name
                    );
                }
            }
        }
    }
}
