//! A black-box snapshot-isolation checker for the serving layer.
//!
//! The serving layer promises snapshot isolation: every commit publishes
//! exactly one immutable generation, a reader pins whatever generation it
//! loads, and what it sees is exactly the state some prefix of committed
//! transactions produced — never a mix of two transactions, never a
//! generation that travels backwards on one handle. The engine *asserts*
//! this; this module **checks** it from the outside, trusting nothing but
//! the events the threads themselves record:
//!
//! - the writer records a [`CommitEvent`] per committed transaction (and
//!   one for the genesis generation 0), carrying the generation it
//!   published and a [digest](snapshot_digest) of the full query results of
//!   that generation;
//! - each reader records a [`ReadEvent`] per observed snapshot, carrying
//!   its own sequence number, the pinned generation, and the digest of the
//!   results *as the reader saw them*.
//!
//! After the run, [`check_history`] replays the merged [`History`] against
//! the snapshot-isolation axioms and returns every [`IsoViolation`] found:
//!
//! 1. **Commits are a clean sequence** — one commit per generation
//!    ([`IsoViolation::DuplicateGeneration`]), no holes
//!    ([`IsoViolation::GenerationGap`]), distinct transaction ids
//!    ([`IsoViolation::DuplicateTxn`]).
//! 2. **Reads see a committed prefix** — a read's generation must exist in
//!    the commit sequence ([`IsoViolation::FutureGeneration`]), and its
//!    digest must equal the committed digest of that generation, byte for
//!    byte; a mismatch means the reader observed state no transaction ever
//!    published — a torn publication ([`IsoViolation::TornRead`]). The
//!    transaction id stamped on the snapshot must match the commit's too
//!    ([`IsoViolation::TxnIdMismatch`]).
//! 3. **Generations are monotonic per reader** — successive reads on one
//!    handle never go backwards ([`IsoViolation::NonMonotonicRead`]).
//!
//! The checker is deliberately dumb: no locks, no knowledge of the DAG, no
//! shared code with the refresh path. It cannot be fooled by a bug in the
//! machinery it checks, which is the point — the negative test in the
//! isolation suite deliberately publishes a two-delta change as two
//! generations while recording it as one commit, and the checker flags
//! both the torn read and the generation bookkeeping.

use crate::engine::QueryResult;
use crate::snapshot::ViewSnapshot;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// One observation by one reader: snapshot `seq` (reader-local, assigned in
/// program order) pinned `generation` and saw results hashing to `digest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadEvent {
    /// Which reader thread recorded this (checker-opaque label).
    pub reader: usize,
    /// Reader-local sequence number, increasing in the reader's own program
    /// order — the order the monotonicity axiom is checked in.
    pub seq: u64,
    /// The generation the snapshot reported ([`ViewSnapshot::generation`]).
    pub generation: u64,
    /// The transaction id the snapshot reported ([`ViewSnapshot::txn_id`]).
    pub txn_id: u64,
    /// [`snapshot_digest`] of the results as this reader saw them.
    pub digest: u64,
}

/// One commit by the writer: transaction `txn_id` published `generation`
/// whose full results hash to `digest`. The genesis generation (0, no
/// transaction) is recorded as a commit with `txn_id` 0 so reads of the
/// initial snapshot have a commit to validate against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitEvent {
    /// The transaction id the published snapshot reports.
    pub txn_id: u64,
    /// The generation this commit published.
    pub generation: u64,
    /// [`snapshot_digest`] of the published snapshot's results.
    pub digest: u64,
}

/// The merged record of a concurrent run: every commit the writer made and
/// every read any reader made, in no particular order (the events carry
/// their own ordering keys).
#[derive(Debug, Clone, Default)]
pub struct History {
    /// All commit events, any order.
    pub commits: Vec<CommitEvent>,
    /// All read events from all readers, any order.
    pub reads: Vec<ReadEvent>,
}

impl History {
    /// An empty history.
    pub fn new() -> Self {
        History::default()
    }

    /// Records a commit.
    pub fn add_commit(&mut self, event: CommitEvent) {
        self.commits.push(event);
    }

    /// Records a read.
    pub fn add_read(&mut self, event: ReadEvent) {
        self.reads.push(event);
    }

    /// Appends another history (e.g. one reader thread's local log).
    pub fn merge(&mut self, other: History) {
        self.commits.extend(other.commits);
        self.reads.extend(other.reads);
    }
}

/// A snapshot-isolation axiom broken by a [`History`]. See the
/// [module docs](self) for the axiom each variant belongs to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsoViolation {
    /// Two commits claim the same generation.
    DuplicateGeneration {
        /// The doubly-published generation.
        generation: u64,
    },
    /// The commit sequence skips a generation: some state was published
    /// without a recorded transaction producing it.
    GenerationGap {
        /// The first missing generation.
        missing: u64,
    },
    /// Two commits claim the same transaction id.
    DuplicateTxn {
        /// The doubly-used transaction id.
        txn_id: u64,
    },
    /// A read pinned a generation no commit ever published.
    FutureGeneration {
        /// The reader that saw it.
        reader: usize,
        /// The reader-local sequence number of the read.
        seq: u64,
        /// The uncommitted generation observed.
        generation: u64,
    },
    /// A read of a committed generation saw results that generation never
    /// had: the reader observed a state between transactions.
    TornRead {
        /// The reader that saw it.
        reader: usize,
        /// The reader-local sequence number of the read.
        seq: u64,
        /// The generation the snapshot claimed to be.
        generation: u64,
        /// The digest the writer committed for that generation.
        expected: u64,
        /// The digest the reader actually observed.
        observed: u64,
    },
    /// A read's snapshot reported a transaction id different from the one
    /// that committed its generation.
    TxnIdMismatch {
        /// The reader that saw it.
        reader: usize,
        /// The reader-local sequence number of the read.
        seq: u64,
        /// The generation read.
        generation: u64,
        /// The transaction id the commit recorded.
        expected: u64,
        /// The transaction id the snapshot reported.
        observed: u64,
    },
    /// One reader's pinned generation went backwards between successive
    /// reads on the same handle.
    NonMonotonicRead {
        /// The reader that went backwards.
        reader: usize,
        /// The sequence number of the offending (later) read.
        seq: u64,
        /// The generation that earlier read pinned.
        previous: u64,
        /// The smaller generation the later read pinned.
        generation: u64,
    },
}

/// Checks a merged [`History`] against the snapshot-isolation axioms and
/// returns every violation found (empty means the run was clean). Purely
/// combinatorial — safe to run on histories of any interleaving.
pub fn check_history(history: &History) -> Vec<IsoViolation> {
    let mut violations = Vec::new();

    // Axiom 1: commits form a clean sequence.
    let mut by_generation: std::collections::BTreeMap<u64, &CommitEvent> =
        std::collections::BTreeMap::new();
    let mut txns_seen: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for commit in &history.commits {
        if by_generation.insert(commit.generation, commit).is_some() {
            violations.push(IsoViolation::DuplicateGeneration {
                generation: commit.generation,
            });
        }
        match txns_seen.get(&commit.txn_id) {
            Some(&generation) if generation != commit.generation => {
                violations.push(IsoViolation::DuplicateTxn {
                    txn_id: commit.txn_id,
                });
            }
            _ => {
                txns_seen.insert(commit.txn_id, commit.generation);
            }
        }
    }
    if let Some(&last) = by_generation.keys().next_back() {
        for generation in 0..=last {
            if !by_generation.contains_key(&generation) {
                violations.push(IsoViolation::GenerationGap {
                    missing: generation,
                });
            }
        }
    }

    // Axioms 2 and 3: validate each read against its commit, and each
    // reader's sequence against itself.
    let mut reads: Vec<&ReadEvent> = history.reads.iter().collect();
    reads.sort_by_key(|r| (r.reader, r.seq));
    let mut previous: Option<(usize, u64)> = None;
    for read in reads {
        match by_generation.get(&read.generation) {
            None => violations.push(IsoViolation::FutureGeneration {
                reader: read.reader,
                seq: read.seq,
                generation: read.generation,
            }),
            Some(commit) => {
                if commit.digest != read.digest {
                    violations.push(IsoViolation::TornRead {
                        reader: read.reader,
                        seq: read.seq,
                        generation: read.generation,
                        expected: commit.digest,
                        observed: read.digest,
                    });
                }
                if commit.txn_id != read.txn_id {
                    violations.push(IsoViolation::TxnIdMismatch {
                        reader: read.reader,
                        seq: read.seq,
                        generation: read.generation,
                        expected: commit.txn_id,
                        observed: read.txn_id,
                    });
                }
            }
        }
        if let Some((reader, prev_gen)) = previous {
            if reader == read.reader && read.generation < prev_gen {
                violations.push(IsoViolation::NonMonotonicRead {
                    reader: read.reader,
                    seq: read.seq,
                    previous: prev_gen,
                    generation: read.generation,
                });
            }
        }
        previous = Some((read.reader, read.generation));
    }

    violations
}

/// An order-independent digest of a snapshot's full query results.
///
/// Each `(query, key, aggregates)` entry hashes independently (aggregate
/// floats by their exact bit patterns) and the entry hashes combine by
/// wrapping addition, so the digest does not depend on map iteration
/// order — two readers of the same generation always compute the same
/// value, and any differing entry changes it.
pub fn snapshot_digest(snapshot: &ViewSnapshot) -> u64 {
    results_digest(snapshot.results().queries.iter())
}

/// [`snapshot_digest`] over an explicit set of query results — the hook for
/// harnesses that read through a narrower surface than a full snapshot.
pub fn results_digest<'a>(queries: impl Iterator<Item = &'a QueryResult>) -> u64 {
    let mut digest = 0u64;
    for query in queries {
        for (key, values) in &query.data {
            let mut hasher = DefaultHasher::new();
            query.name.hash(&mut hasher);
            key.hash(&mut hasher);
            for v in values {
                v.to_bits().hash(&mut hasher);
            }
            digest = digest.wrapping_add(hasher.finish());
        }
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(txn_id: u64, generation: u64, digest: u64) -> CommitEvent {
        CommitEvent {
            txn_id,
            generation,
            digest,
        }
    }

    fn read(reader: usize, seq: u64, generation: u64, digest: u64) -> ReadEvent {
        ReadEvent {
            reader,
            seq,
            generation,
            txn_id: generation,
            digest,
        }
    }

    fn clean_history() -> History {
        let mut h = History::new();
        h.add_commit(commit(0, 0, 100));
        h.add_commit(commit(1, 1, 101));
        h.add_commit(commit(2, 2, 102));
        h.add_read(read(0, 0, 0, 100));
        h.add_read(read(0, 1, 2, 102));
        h.add_read(read(1, 0, 1, 101));
        h.add_read(read(1, 1, 1, 101));
        h
    }

    #[test]
    fn clean_run_has_no_violations() {
        assert_eq!(check_history(&clean_history()), vec![]);
    }

    #[test]
    fn torn_read_is_flagged() {
        let mut h = clean_history();
        h.add_read(read(2, 0, 1, 999));
        assert_eq!(
            check_history(&h),
            vec![IsoViolation::TornRead {
                reader: 2,
                seq: 0,
                generation: 1,
                expected: 101,
                observed: 999,
            }]
        );
    }

    #[test]
    fn non_monotonic_reader_is_flagged() {
        let mut h = clean_history();
        h.add_read(read(1, 2, 0, 100)); // reader 1 was at generation 1
        assert_eq!(
            check_history(&h),
            vec![IsoViolation::NonMonotonicRead {
                reader: 1,
                seq: 2,
                previous: 1,
                generation: 0,
            }]
        );
    }

    #[test]
    fn future_generation_is_flagged() {
        let mut h = clean_history();
        h.add_read(read(0, 2, 7, 107));
        assert_eq!(
            check_history(&h),
            vec![IsoViolation::FutureGeneration {
                reader: 0,
                seq: 2,
                generation: 7,
            }]
        );
    }

    #[test]
    fn generation_bookkeeping_is_checked() {
        let mut h = History::new();
        h.add_commit(commit(0, 0, 100));
        h.add_commit(commit(1, 2, 102)); // skipped generation 1
        h.add_commit(commit(1, 3, 103)); // reused txn id 1
        h.add_commit(commit(4, 3, 104)); // republished generation 3
        let violations = check_history(&h);
        assert!(violations.contains(&IsoViolation::GenerationGap { missing: 1 }));
        assert!(violations.contains(&IsoViolation::DuplicateTxn { txn_id: 1 }));
        assert!(violations.contains(&IsoViolation::DuplicateGeneration { generation: 3 }));
    }

    #[test]
    fn txn_id_mismatch_is_flagged() {
        let mut h = clean_history();
        h.add_read(ReadEvent {
            reader: 3,
            seq: 0,
            generation: 2,
            txn_id: 9,
            digest: 102,
        });
        assert_eq!(
            check_history(&h),
            vec![IsoViolation::TxnIdMismatch {
                reader: 3,
                seq: 0,
                generation: 2,
                expected: 2,
                observed: 9,
            }]
        );
    }

    #[test]
    fn digest_ignores_order_but_not_content() {
        use lmfao_data::{FxHashMap, Value};
        let q = |names: &[(&str, i64, f64)]| -> Vec<QueryResult> {
            names
                .iter()
                .map(|&(name, k, v)| {
                    let mut data = FxHashMap::default();
                    data.insert(vec![Value::Int(k)], vec![v]);
                    QueryResult {
                        name: name.into(),
                        group_by: vec![],
                        num_aggregates: 1,
                        data,
                    }
                })
                .collect()
        };
        let a = q(&[("x", 1, 2.0), ("y", 3, 4.0)]);
        let b = q(&[("y", 3, 4.0), ("x", 1, 2.0)]);
        let c = q(&[("x", 1, 2.0), ("y", 3, 4.5)]);
        assert_eq!(results_digest(a.iter()), results_digest(b.iter()));
        assert_ne!(results_digest(a.iter()), results_digest(c.iter()));
    }
}
