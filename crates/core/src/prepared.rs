//! Prepared batches: plan once, execute many.
//!
//! LMFAO's optimizer layers (find roots → aggregate pushdown → view merging →
//! view grouping → multi-output plans) depend only on the query batch, the
//! join tree and the engine configuration — never on the data values read at
//! execution time or on the closures in a [`DynamicRegistry`]. A
//! [`PreparedBatch`] is the cached product of running all those layers once:
//! the root assignment, the consolidated view catalog and output projections,
//! the view grouping, and the per-group physical plans. Executing it again
//! with a different registry (a new decision-tree split predicate, the next
//! gradient step's weight function) re-runs only the scans.
//!
//! This is the reproduction of the paper's compile-once design: the generated
//! C++ is compiled one time and only the *dynamic functions* are recompiled
//! and re-linked between iterations (Section 4). Here the "compiled" artifact
//! is the `PreparedBatch` and the re-linked part is the registry passed to
//! [`PreparedBatch::execute`].

use crate::config::EngineConfig;
use crate::engine::{BatchResult, EngineStats, QueryResult};
use crate::error::EngineError;
use crate::group::{group_views, Grouping};
use crate::interp::execute_view_interpreted;
use crate::parallel::execute_all;
use crate::plan::{build_group_plan, GroupPlan};
use crate::pushdown::{push_down_batch, PushdownResult};
use crate::roots::assign_roots;
use crate::shared::SharedDatabase;
use crate::view::{ComputedView, ViewId};
use lmfao_certify::Certificate;
use lmfao_data::{AttrId, FxHashMap, Value};
use lmfao_expr::{DynamicRegistry, QueryBatch};
use lmfao_jointree::JoinTree;
use std::sync::Arc;

/// Everything needed to project one query's result out of its output view,
/// resolved at prepare time.
#[derive(Debug, Clone)]
pub(crate) struct PreparedQuery {
    /// Query name (copied from the batch).
    pub(crate) name: String,
    /// Group-by attributes in the query's requested order.
    pub(crate) group_by: Vec<AttrId>,
    /// Number of aggregates of the query.
    pub(crate) num_aggregates: usize,
    /// The output view carrying the query's aggregates.
    pub(crate) view: ViewId,
    /// For each aggregate of the query, its index within the output view.
    pub(crate) aggregate_indices: Vec<usize>,
    /// Permutation from the view's canonical key order to the query's
    /// group-by order.
    pub(crate) key_perm: Vec<usize>,
}

/// A fully optimized query batch, ready to be executed any number of times.
///
/// Built by [`crate::engine::Engine::prepare`]. Holds a [`SharedDatabase`]
/// handle, so it stays valid independently of the engine that created it, and
/// all planned state lives behind an `Arc`: cloning is two reference-count
/// bumps, never a copy of the plans or the data.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    pub(crate) db: SharedDatabase,
    pub(crate) inner: Arc<PreparedPlans>,
}

/// The immutable product of the optimizer layers, shared by every clone of a
/// [`PreparedBatch`] (and retained by a [`crate::maintain::MaintainedBatch`]).
#[derive(Debug)]
pub(crate) struct PreparedPlans {
    pub(crate) tree: JoinTree,
    pub(crate) config: EngineConfig,
    pub(crate) pushdown: PushdownResult,
    pub(crate) grouping: Grouping,
    /// Physical plans, one per group; empty when specialization is off (the
    /// interpreted proxy works straight off the view catalog).
    pub(crate) plans: Vec<GroupPlan>,
    pub(crate) queries: Vec<PreparedQuery>,
    pub(crate) stats: EngineStats,
}

impl PreparedBatch {
    /// Runs every optimizer layer over `batch` and caches the results.
    pub(crate) fn build(
        db: SharedDatabase,
        tree: JoinTree,
        config: EngineConfig,
        batch: &QueryBatch,
    ) -> Result<Self, EngineError> {
        let roots = assign_roots(batch, &tree, &db, &config);
        let pushdown = push_down_batch(batch, &tree, &roots);
        let grouping = group_views(&pushdown.catalog, config.multi_output);
        let plans: Vec<GroupPlan> = if config.specialization {
            grouping
                .groups
                .iter()
                .map(|g| build_group_plan(&db, &tree, &pushdown.catalog, g))
                .collect::<Result<_, _>>()?
        } else {
            Vec::new()
        };

        let queries: Vec<PreparedQuery> = batch
            .queries
            .iter()
            .zip(&pushdown.outputs)
            .map(|(query, output)| {
                let view = pushdown.catalog.view(output.view);
                // Keys of the computed view are in the view's canonical
                // (sorted) order; precompute the reordering to the query's
                // requested order.
                let key_perm: Vec<usize> = query
                    .group_by
                    .iter()
                    .map(|a| {
                        view.group_by
                            .iter()
                            .position(|b| b == a)
                            .expect("query group-by attr must be a view key attr")
                    })
                    .collect();
                PreparedQuery {
                    name: query.name.clone(),
                    group_by: query.group_by.clone(),
                    num_aggregates: query.aggregates.len(),
                    view: output.view,
                    aggregate_indices: output.aggregate_indices.clone(),
                    key_perm,
                }
            })
            .collect();

        let stats = EngineStats {
            application_aggregates: batch.num_aggregates(),
            intermediate_aggregates: pushdown
                .catalog
                .total_aggregates()
                .saturating_sub(batch.num_aggregates()),
            num_views: pushdown.catalog.len(),
            num_groups: grouping.len(),
            num_roots: roots.num_distinct_roots(),
            output_size_bytes: 0,
        };

        Ok(PreparedBatch {
            db,
            inner: Arc::new(PreparedPlans {
                tree,
                config,
                pushdown,
                grouping,
                plans,
                queries,
                stats,
            }),
        })
    }

    /// The Table-2 style planning statistics: application and intermediate
    /// aggregate counts, consolidated views, groups and distinct roots.
    /// `output_size_bytes` is 0 here — output sizes are only known after an
    /// execution (see [`BatchResult::stats`]).
    pub fn stats(&self) -> &EngineStats {
        &self.inner.stats
    }

    /// The configuration the batch was prepared under.
    pub fn config(&self) -> &EngineConfig {
        &self.inner.config
    }

    /// The shared database the batch executes over.
    pub fn database(&self) -> &SharedDatabase {
        &self.db
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.inner.queries.len()
    }

    /// True if the batch holds no query.
    pub fn is_empty(&self) -> bool {
        self.inner.queries.is_empty()
    }

    /// The query names, in batch order.
    pub fn query_names(&self) -> impl Iterator<Item = &str> {
        self.inner.queries.iter().map(|q| q.name.as_str())
    }

    /// Executes the cached plans, resolving dynamic UDAFs through `dynamics`,
    /// and projects the per-query results. No optimizer layer runs here; call
    /// this as many times as needed with changing registries.
    pub fn execute(&self, dynamics: &DynamicRegistry) -> Result<BatchResult, EngineError> {
        let computed = self.compute_views(dynamics)?;
        project_results(&self.inner, &computed)
    }

    /// Like [`PreparedBatch::execute`], but additionally emits the execution
    /// certificate: per-view-group provenance (scanned relation and
    /// cardinality, incoming views, produced views with fixed-point aggregate
    /// totals) plus per-query totals derived from the published results. Feed
    /// the certificate to `lmfao_certify::check_certificate` — the
    /// independent checker — to audit the run.
    pub fn execute_certified(
        &self,
        dynamics: &DynamicRegistry,
    ) -> Result<(BatchResult, Certificate), EngineError> {
        let computed = self.compute_views(dynamics)?;
        let results = project_results(&self.inner, &computed)?;
        let db = self.db.database();
        let certificate = crate::certificate::emit_execute(
            &self.inner,
            |name| db.relation(name).map(|r| r.len() as u64).unwrap_or(0),
            &computed,
            0,
            &results,
        )?;
        Ok((results, certificate))
    }

    /// Runs every group scan and returns the computed result of every view —
    /// the shared first half of [`PreparedBatch::execute`] and
    /// [`PreparedBatch::execute_certified`].
    fn compute_views(
        &self,
        dynamics: &DynamicRegistry,
    ) -> Result<FxHashMap<ViewId, ComputedView>, EngineError> {
        let db = self.db.database();
        let inner = &*self.inner;
        if inner.config.specialization {
            execute_all(db, &inner.plans, &inner.grouping, dynamics, &inner.config)
        } else {
            // Interpreted path: one scan per view, in dependency order.
            let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
            for vid in inner.pushdown.catalog.topological_order() {
                let cv = execute_view_interpreted(
                    db,
                    &inner.tree,
                    &inner.pushdown.catalog,
                    vid,
                    &computed,
                    dynamics,
                )?;
                computed.insert(vid, cv);
            }
            Ok(computed)
        }
    }
}

/// Projects per-query results out of the computed (or maintained) output
/// views — shared by [`PreparedBatch::execute`],
/// [`crate::maintain::MaintainedBatch::results`] and the snapshot publication
/// in [`crate::snapshot`] (which keeps its views behind `Arc`s, hence the
/// [`ViewSource`] bound instead of a concrete map).
pub(crate) fn project_results<V: crate::view::ViewSource>(
    inner: &PreparedPlans,
    computed: &V,
) -> Result<BatchResult, EngineError> {
    let mut queries = Vec::with_capacity(inner.queries.len());
    let mut output_bytes = 0usize;
    for pq in &inner.queries {
        let cv = computed
            .view_result(pq.view)
            .ok_or(EngineError::ViewNotComputed(pq.view))?;
        let mut data: FxHashMap<Vec<Value>, Vec<f64>> = FxHashMap::default();
        for (key, values) in cv.iter() {
            let reordered: Vec<Value> = pq.key_perm.iter().map(|&p| key[p]).collect();
            let selected: Vec<f64> = pq.aggregate_indices.iter().map(|&i| values[i]).collect();
            let entry = data
                .entry(reordered)
                .or_insert_with(|| vec![0.0; pq.aggregate_indices.len()]);
            for (e, v) in entry.iter_mut().zip(&selected) {
                *e += v;
            }
        }
        let result = QueryResult {
            name: pq.name.clone(),
            group_by: pq.group_by.clone(),
            num_aggregates: pq.num_aggregates,
            data,
        };
        output_bytes += result.size_bytes();
        queries.push(result);
    }

    let mut stats = inner.stats.clone();
    stats.output_size_bytes = output_bytes;
    Ok(BatchResult { queries, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use lmfao_data::{AttrType, Database, DatabaseSchema, Relation, RelationSchema};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "R",
            &[
                ("a", AttrType::Int),
                ("b", AttrType::Int),
                ("x", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("y", AttrType::Double)]);
        let ids: Vec<AttrId> = ["a", "b", "x", "y"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![ids[0], ids[1], ids[2]]),
            (0..20)
                .map(|i| {
                    vec![
                        Value::Int(i % 4),
                        Value::Int(i % 3),
                        Value::Double((i % 5) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![ids[1], ids[3]]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Double((i + 1) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn batch(db: &Database) -> QueryBatch {
        let a = db.schema().attr_id("a").unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("xy", vec![], vec![Aggregate::sum_product(x, y)]);
        batch.push("per_a", vec![a], vec![Aggregate::sum(y)]);
        batch
    }

    #[test]
    fn repeated_execution_is_deterministic() {
        let (db, tree) = db_and_tree();
        let batch = batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let prepared = engine.prepare(&batch).unwrap();
        let dynamics = DynamicRegistry::new();
        let first = prepared.execute(&dynamics).unwrap();
        let second = prepared.execute(&dynamics).unwrap();
        assert_eq!(first.queries.len(), second.queries.len());
        for (f, s) in first.queries.iter().zip(&second.queries) {
            assert_eq!(f.data, s.data);
        }
    }

    #[test]
    fn prepared_execution_matches_one_shot_execute() {
        let (db, tree) = db_and_tree();
        let batch = batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let via_prepared = engine
                .prepare(&batch)
                .unwrap()
                .execute(&DynamicRegistry::new())
                .unwrap();
            let one_shot = engine.execute(&batch).unwrap();
            for (p, o) in via_prepared.queries.iter().zip(&one_shot.queries) {
                assert_eq!(p.data, o.data, "{name}");
            }
        }
    }

    #[test]
    fn execute_certified_passes_the_independent_checker() {
        let (db, tree) = db_and_tree();
        let batch = batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let prepared = engine.prepare(&batch).unwrap();
            let (results, cert) = prepared.execute_certified(&DynamicRegistry::new()).unwrap();
            lmfao_certify::check_certificate(&cert).unwrap_or_else(|e| panic!("{name}: {e}"));
            // The certified path publishes the same results as the plain one.
            let plain = prepared.execute(&DynamicRegistry::new()).unwrap();
            for (a, b) in results.queries.iter().zip(&plain.queries) {
                assert_eq!(a.data, b.data, "{name}");
            }
        }
    }

    #[test]
    fn planning_stats_match_executed_stats() {
        let (db, tree) = db_and_tree();
        let batch = batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let prepared = engine.prepare(&batch).unwrap();
        assert_eq!(prepared.len(), 3);
        assert!(!prepared.is_empty());
        assert_eq!(
            prepared.query_names().collect::<Vec<_>>(),
            vec!["count", "xy", "per_a"]
        );
        let planned = prepared.stats().clone();
        assert_eq!(planned.output_size_bytes, 0);
        let executed = prepared.execute(&DynamicRegistry::new()).unwrap().stats;
        assert_eq!(planned.num_views, executed.num_views);
        assert_eq!(planned.num_groups, executed.num_groups);
        assert_eq!(planned.num_roots, executed.num_roots);
        assert_eq!(
            planned.application_aggregates,
            executed.application_aggregates
        );
        assert!(executed.output_size_bytes > 0);
    }

    #[test]
    fn prepared_batch_outlives_its_engine() {
        let (db, tree) = db_and_tree();
        let batch = batch(&db);
        let prepared = {
            let engine = Engine::new(db, tree, EngineConfig::default());
            engine.prepare(&batch).unwrap()
        };
        // The engine is gone; the prepared batch still executes because it
        // holds its own SharedDatabase handle.
        let result = prepared.execute(&DynamicRegistry::new()).unwrap();
        assert!(result.query("count").scalar()[0] > 0.0);
    }
}
