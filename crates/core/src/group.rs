//! The Group Views layer: cluster views into multi-output computational units.
//!
//! Views going out of the same join-tree node that do not depend on each
//! other (directly or transitively) are evaluated together in one scan over
//! that node's relation (Section 3.4). We assign each view a dependency
//! *stage* — 0 for views with no incoming views, otherwise one more than the
//! deepest stage among its dependencies — and group views by
//! `(source node, stage)`. Views in a group then provably have no
//! dependencies among themselves, and the group-level dependency graph is
//! acyclic, which is what the Parallelization layer schedules.

use crate::view::{ViewCatalog, ViewId};
use lmfao_data::FxHashMap;

/// A group of views computed together over the same relation.
#[derive(Debug, Clone)]
pub struct ViewGroup {
    /// Group index.
    pub id: usize,
    /// Join-tree node whose relation the group scans.
    pub node: usize,
    /// Dependency stage of the group (0 = leaf views).
    pub stage: usize,
    /// The views of the group.
    pub views: Vec<ViewId>,
}

/// The grouping of a view catalog plus the group-level dependency graph.
#[derive(Debug, Clone)]
pub struct Grouping {
    /// The groups, indexed by group id.
    pub groups: Vec<ViewGroup>,
    /// For each group, the groups it depends on.
    pub dependencies: Vec<Vec<usize>>,
    /// For each view, the group containing it.
    pub group_of_view: FxHashMap<ViewId, usize>,
}

impl Grouping {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// A topological order of the groups (dependencies first).
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.groups.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (g, deps) in self.dependencies.iter().enumerate() {
            indegree[g] = deps.len();
            for &d in deps {
                dependents[d].push(g);
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &d in &dependents[u] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "group dependency graph has a cycle");
        order
    }

    /// The groups reachable *downstream* of `seeds` through the dependency
    /// graph — every group whose result (transitively) depends on a seed —
    /// including the seeds themselves, in topological order. This is the
    /// refresh frontier of incremental maintenance: when a base relation
    /// changes, only the groups scanning it (the seeds) and their transitive
    /// dependents need to run; every other group is provably unaffected.
    pub fn transitive_dependents(&self, seeds: &[usize]) -> Vec<usize> {
        let n = self.groups.len();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (g, deps) in self.dependencies.iter().enumerate() {
            for &d in deps {
                dependents[d].push(g);
            }
        }
        let mut reached = vec![false; n];
        let mut stack: Vec<usize> = seeds.to_vec();
        while let Some(g) = stack.pop() {
            if std::mem::replace(&mut reached[g], true) {
                continue;
            }
            stack.extend(dependents[g].iter().copied());
        }
        self.topological_order()
            .into_iter()
            .filter(|&g| reached[g])
            .collect()
    }

    /// The groups whose scan reads the relation of join-tree node `node` —
    /// the seed groups of a delta arriving at that node.
    pub fn groups_at_node(&self, node: usize) -> Vec<usize> {
        self.groups
            .iter()
            .filter(|g| g.node == node)
            .map(|g| g.id)
            .collect()
    }
}

/// Groups the views of a catalog. When `multi_output` is false, every view
/// becomes its own group (the ablation baseline where each view gets its own
/// scan); the group dependency graph is built either way.
pub fn group_views(catalog: &ViewCatalog, multi_output: bool) -> Grouping {
    let order = catalog.topological_order();

    // Dependency stage per view.
    let mut stage: FxHashMap<ViewId, usize> = FxHashMap::default();
    for &v in &order {
        let deps = catalog.view(v).dependencies();
        let s = deps.iter().map(|d| stage[d] + 1).max().unwrap_or(0);
        stage.insert(v, s);
    }

    // Group by (node, stage) — or one group per view when multi-output is off.
    let mut groups: Vec<ViewGroup> = Vec::new();
    let mut group_of_view: FxHashMap<ViewId, usize> = FxHashMap::default();
    if multi_output {
        let mut key_to_group: FxHashMap<(usize, usize), usize> = FxHashMap::default();
        for &v in &order {
            let def = catalog.view(v);
            let key = (def.source, stage[&v]);
            let gid = *key_to_group.entry(key).or_insert_with(|| {
                groups.push(ViewGroup {
                    id: groups.len(),
                    node: def.source,
                    stage: stage[&v],
                    views: Vec::new(),
                });
                groups.len() - 1
            });
            groups[gid].views.push(v);
            group_of_view.insert(v, gid);
        }
    } else {
        for &v in &order {
            let def = catalog.view(v);
            let gid = groups.len();
            groups.push(ViewGroup {
                id: gid,
                node: def.source,
                stage: stage[&v],
                views: vec![v],
            });
            group_of_view.insert(v, gid);
        }
    }

    // Group-level dependency edges.
    let mut dependencies: Vec<Vec<usize>> = vec![Vec::new(); groups.len()];
    for group in &groups {
        for &v in &group.views {
            for dep in catalog.view(v).dependencies() {
                let dg = group_of_view[&dep];
                if dg != group.id && !dependencies[group.id].contains(&dg) {
                    dependencies[group.id].push(dg);
                }
            }
        }
    }

    Grouping {
        groups,
        dependencies,
        group_of_view,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::{ViewAggregate, ViewTerm};
    use lmfao_data::AttrId;

    /// Builds a catalog shaped like Figure 3: a path A(0) — B(1) — C(2) with
    /// views flowing towards A for query 1 and towards C for query 2.
    fn figure_like_catalog() -> (ViewCatalog, Vec<ViewId>) {
        let mut cat = ViewCatalog::new();
        // Query 1 rooted at node 0: C→B, B→A, output at A.
        let c_to_b = cat.get_or_create(2, Some(1), vec![AttrId(2)]);
        cat.add_aggregate(c_to_b, ViewAggregate::count());
        let b_to_a = cat.get_or_create(1, Some(0), vec![AttrId(1)]);
        cat.add_aggregate(
            b_to_a,
            ViewAggregate::single(ViewTerm {
                constant: 1.0,
                local: vec![],
                child_refs: vec![(c_to_b, 0)],
            }),
        );
        let out_a = cat.get_or_create(0, None, vec![AttrId(0)]);
        cat.add_aggregate(
            out_a,
            ViewAggregate::single(ViewTerm {
                constant: 1.0,
                local: vec![],
                child_refs: vec![(b_to_a, 0)],
            }),
        );
        // Query 2 rooted at node 2: A→B, B→C, output at C.
        let a_to_b = cat.get_or_create(0, Some(1), vec![AttrId(1)]);
        cat.add_aggregate(a_to_b, ViewAggregate::count());
        let b_to_c = cat.get_or_create(1, Some(2), vec![AttrId(2)]);
        cat.add_aggregate(
            b_to_c,
            ViewAggregate::single(ViewTerm {
                constant: 1.0,
                local: vec![],
                child_refs: vec![(a_to_b, 0)],
            }),
        );
        let out_c = cat.get_or_create(2, None, vec![AttrId(2)]);
        cat.add_aggregate(
            out_c,
            ViewAggregate::single(ViewTerm {
                constant: 1.0,
                local: vec![],
                child_refs: vec![(b_to_c, 0)],
            }),
        );
        (cat, vec![c_to_b, b_to_a, out_a, a_to_b, b_to_c, out_c])
    }

    #[test]
    fn stages_separate_dependent_views_at_the_same_node() {
        let (cat, ids) = figure_like_catalog();
        let grouping = group_views(&cat, true);
        let [c_to_b, b_to_a, out_a, a_to_b, b_to_c, out_c] = ids[..] else {
            unreachable!()
        };
        // Views at node 2: c_to_b (stage 0) and out_c (stage 2) must be in
        // different groups; similarly for node 1 and node 0.
        assert_ne!(
            grouping.group_of_view[&c_to_b],
            grouping.group_of_view[&out_c]
        );
        assert_ne!(
            grouping.group_of_view[&a_to_b],
            grouping.group_of_view[&out_a]
        );
        // b_to_a and b_to_c are both at node 1 with stage 1: they share a group.
        assert_eq!(
            grouping.group_of_view[&b_to_a],
            grouping.group_of_view[&b_to_c]
        );
    }

    #[test]
    fn dependency_graph_is_acyclic_and_ordered() {
        let (cat, _) = figure_like_catalog();
        let grouping = group_views(&cat, true);
        let order = grouping.topological_order();
        assert_eq!(order.len(), grouping.len());
        // Each group appears after all its dependencies.
        let pos: FxHashMap<usize, usize> = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for (g, deps) in grouping.dependencies.iter().enumerate() {
            for &d in deps {
                assert!(pos[&d] < pos[&g]);
            }
        }
    }

    #[test]
    fn single_view_groups_when_multi_output_disabled() {
        let (cat, _) = figure_like_catalog();
        let grouping = group_views(&cat, false);
        assert_eq!(grouping.len(), cat.len());
        assert!(grouping.groups.iter().all(|g| g.views.len() == 1));
        // Still topologically orderable.
        assert_eq!(grouping.topological_order().len(), cat.len());
    }

    #[test]
    fn groups_share_the_node_scan() {
        let (cat, _) = figure_like_catalog();
        let grouping = group_views(&cat, true);
        assert!(!grouping.is_empty());
        for g in &grouping.groups {
            for &v in &g.views {
                assert_eq!(cat.view(v).source, g.node);
            }
        }
        // 6 views collapse into 5 groups (the two node-1 stage-1 views merge).
        assert_eq!(grouping.len(), 5);
    }

    #[test]
    fn transitive_dependents_cover_the_refresh_frontier() {
        let (cat, ids) = figure_like_catalog();
        let grouping = group_views(&cat, true);
        let [c_to_b, b_to_a, out_a, a_to_b, _b_to_c, out_c] = ids[..] else {
            unreachable!()
        };
        // A change at node 2 (relation C) seeds the groups scanning node 2.
        let seeds = grouping.groups_at_node(2);
        assert!(seeds.contains(&grouping.group_of_view[&c_to_b]));
        let frontier = grouping.transitive_dependents(&seeds);
        // Everything downstream of C→B must be in the frontier...
        for v in [c_to_b, b_to_a, out_a, out_c] {
            assert!(
                frontier.contains(&grouping.group_of_view[&v]),
                "view {v:?} must be refreshed"
            );
        }
        // ...but A→B does not depend on node 2 at all. (Its group also hosts
        // out_c's input b_to_c only if they share (node, stage); b_to_c is at
        // node 1 stage 1, a_to_b at node 0 stage 0 — distinct groups.)
        assert!(!frontier.contains(&grouping.group_of_view[&a_to_b]));
        // The frontier is in topological order.
        let pos: FxHashMap<usize, usize> =
            frontier.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for &g in &frontier {
            for &d in &grouping.dependencies[g] {
                if let Some(&dp) = pos.get(&d) {
                    assert!(dp < pos[&g]);
                }
            }
        }
    }

    #[test]
    fn empty_catalog_groups_to_nothing() {
        let cat = ViewCatalog::new();
        let grouping = group_views(&cat, true);
        assert!(grouping.is_empty());
        assert!(grouping.topological_order().is_empty());
    }
}
