//! The Find Roots layer: assign a join-tree root to every query of a batch.
//!
//! LMFAO computes each group-by aggregate in one bottom-up pass over the join
//! tree rooted at a node chosen per query (Section 3.3). Choosing roots well
//! can reduce both the number of views and their sizes: a query should be
//! rooted at a node that covers as many of its group-by attributes as
//! possible, and queries should share roots so their views can be merged.
//!
//! The assignment reproduces the paper's approximation: each query spreads a
//! unit of weight over the nodes containing its group-by attributes (or over
//! all nodes if it has none); nodes are then processed in decreasing order of
//! accumulated weight (ties broken towards larger relations) and each node
//! claims, as their root, all unassigned queries that considered it a
//! possible root.

use crate::config::EngineConfig;
use lmfao_data::Database;
use lmfao_expr::{Query, QueryBatch};
use lmfao_jointree::JoinTree;

/// Root assignment for a query batch: `roots[i]` is the join-tree node at
/// which query `i` is evaluated.
#[derive(Debug, Clone)]
pub struct RootAssignment {
    /// Chosen root per query (indexed by query position in the batch).
    pub roots: Vec<usize>,
}

impl RootAssignment {
    /// The root of the `i`-th query.
    pub fn root_of(&self, query_idx: usize) -> usize {
        self.roots[query_idx]
    }

    /// Number of distinct roots used.
    pub fn num_distinct_roots(&self) -> usize {
        let mut seen: Vec<usize> = self.roots.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

/// The set of nodes a query may be rooted at: nodes containing at least one
/// of its group-by attributes, or every node when it has no group-by
/// attribute.
fn possible_roots(query: &Query, tree: &JoinTree) -> Vec<usize> {
    if query.group_by.is_empty() {
        return (0..tree.num_nodes()).collect();
    }
    let mut out: Vec<usize> = (0..tree.num_nodes())
        .filter(|&n| query.group_by.iter().any(|a| tree.node(n).contains(*a)))
        .collect();
    if out.is_empty() {
        // Group-by attributes may not exist in any base relation (defensive);
        // fall back to all nodes.
        out = (0..tree.num_nodes()).collect();
    }
    out
}

/// Assigns roots following the paper's weighting scheme.
pub fn assign_roots(
    batch: &QueryBatch,
    tree: &JoinTree,
    db: &Database,
    config: &EngineConfig,
) -> RootAssignment {
    let n = tree.num_nodes();
    let mut weights = vec![0.0f64; n];
    let candidates: Vec<Vec<usize>> = batch
        .queries
        .iter()
        .map(|q| possible_roots(q, tree))
        .collect();

    for (q, cand) in batch.queries.iter().zip(&candidates) {
        if q.group_by.is_empty() {
            let w = 1.0 / n as f64;
            for &c in cand {
                weights[c] += w;
            }
        } else {
            for &c in cand {
                let covered = q
                    .group_by
                    .iter()
                    .filter(|a| tree.node(c).contains(**a))
                    .count();
                weights[c] += covered as f64 / q.group_by.len() as f64;
            }
        }
    }

    // Order nodes by decreasing weight; break ties towards larger relations
    // (avoids building large views over the fact table).
    let mut order: Vec<usize> = (0..n).collect();
    let size_of = |i: usize| {
        db.statistics()
            .relation_size(&tree.node(i).relation)
            .unwrap_or(0)
    };
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| size_of(b).cmp(&size_of(a)))
    });

    let mut roots = vec![usize::MAX; batch.len()];
    if !config.multi_root {
        // Single-root mode: every query is rooted at the globally heaviest
        // node (falling back to the largest relation for empty batches).
        let root = order.first().copied().unwrap_or(0);
        return RootAssignment {
            roots: vec![root; batch.len()],
        };
    }

    for &node in &order {
        for (qi, cand) in candidates.iter().enumerate() {
            if roots[qi] == usize::MAX && cand.contains(&node) {
                roots[qi] = node;
            }
        }
    }
    // Defensive: anything left unassigned goes to the heaviest node.
    let fallback = order.first().copied().unwrap_or(0);
    for r in &mut roots {
        if *r == usize::MAX {
            *r = fallback;
        }
    }
    RootAssignment { roots }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema, Relation, RelationSchema, Value};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, Hypergraph};

    /// Chain database S1(x1,x2), S2(x2,x3) with S1 larger than S2.
    fn chain_db() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("S1", &[("x1", AttrType::Int), ("x2", AttrType::Int)]);
        schema.add_relation_with_attrs("S2", &[("x2", AttrType::Int), ("x3", AttrType::Int)]);
        let x1 = schema.attr_id("x1").unwrap();
        let x2 = schema.attr_id("x2").unwrap();
        let x3 = schema.attr_id("x3").unwrap();
        let s1 = Relation::from_rows(
            RelationSchema::new("S1", vec![x1, x2]),
            (0..20)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        let s2 = Relation::from_rows(
            RelationSchema::new("S2", vec![x2, x3]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![s1, s2]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn attr(db: &Database, name: &str) -> lmfao_data::AttrId {
        db.schema().attr_id(name).unwrap()
    }

    #[test]
    fn queries_rooted_at_nodes_with_their_group_by() {
        let (db, tree) = chain_db();
        let mut batch = QueryBatch::new();
        batch.push("q_x1", vec![attr(&db, "x1")], vec![Aggregate::count()]);
        batch.push("q_x3", vec![attr(&db, "x3")], vec![Aggregate::count()]);
        let assign = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let s1 = tree.node_of_relation("S1").unwrap();
        let s2 = tree.node_of_relation("S2").unwrap();
        assert_eq!(assign.root_of(0), s1);
        assert_eq!(assign.root_of(1), s2);
        assert_eq!(assign.num_distinct_roots(), 2);
    }

    #[test]
    fn single_root_mode_uses_one_root_for_all() {
        let (db, tree) = chain_db();
        let mut batch = QueryBatch::new();
        batch.push("q_x1", vec![attr(&db, "x1")], vec![Aggregate::count()]);
        batch.push("q_x3", vec![attr(&db, "x3")], vec![Aggregate::count()]);
        let cfg = EngineConfig {
            multi_root: false,
            ..EngineConfig::default()
        };
        let assign = assign_roots(&batch, &tree, &db, &cfg);
        assert_eq!(assign.num_distinct_roots(), 1);
    }

    #[test]
    fn scalar_queries_prefer_heavy_nodes() {
        let (db, tree) = chain_db();
        let mut batch = QueryBatch::new();
        // Two queries keyed on x1 make S1 heavy; the scalar count should then
        // also be rooted at S1 so its views can be shared with them.
        batch.push("q_x1a", vec![attr(&db, "x1")], vec![Aggregate::count()]);
        batch.push(
            "q_x1b",
            vec![attr(&db, "x1")],
            vec![Aggregate::sum(attr(&db, "x2"))],
        );
        batch.push("count", vec![], vec![Aggregate::count()]);
        let assign = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let s1 = tree.node_of_relation("S1").unwrap();
        assert_eq!(assign.root_of(2), s1);
    }

    #[test]
    fn shared_attribute_queries_share_a_root() {
        let (db, tree) = chain_db();
        let mut batch = QueryBatch::new();
        // x2 lives in both relations; both queries must get the same root.
        batch.push("a", vec![attr(&db, "x2")], vec![Aggregate::count()]);
        batch.push("b", vec![attr(&db, "x2")], vec![Aggregate::count()]);
        let assign = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        assert_eq!(assign.root_of(0), assign.root_of(1));
    }

    #[test]
    fn empty_batch_is_fine() {
        let (db, tree) = chain_db();
        let batch = QueryBatch::new();
        let assign = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        assert!(assign.roots.is_empty());
        assert_eq!(assign.num_distinct_roots(), 0);
    }
}
