//! The LMFAO engine façade: ties all layers together.
//!
//! ```no_run
//! # use lmfao_core::{Engine, EngineConfig};
//! # use lmfao_expr::{Aggregate, QueryBatch};
//! # fn demo(db: lmfao_data::Database, tree: lmfao_jointree::JoinTree) {
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let mut batch = QueryBatch::new();
//! batch.push("count", vec![], vec![Aggregate::count()]);
//! let result = engine.execute(&batch);
//! println!("count = {}", result.queries[0].scalar()[0]);
//! # }
//! ```

use crate::config::EngineConfig;
use crate::group::group_views;
use crate::interp::execute_view_interpreted;
use crate::parallel::execute_all;
use crate::plan::{build_group_plan, prepare_database, GroupPlan};
use crate::pushdown::{push_down_batch, PushdownResult};
use crate::roots::{assign_roots, RootAssignment};
use crate::view::{ComputedView, ViewId};
use lmfao_data::{AttrId, Database, FxHashMap, Value};
use lmfao_expr::{DynamicRegistry, QueryBatch};
use lmfao_jointree::JoinTree;

/// Statistics about an optimized batch: the quantities reported in the
/// paper's Table 2 (aggregates, views, groups) plus output sizes.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Aggregates requested by the application (column "A" of Table 2).
    pub application_aggregates: usize,
    /// Additional intermediate aggregates synthesized by the engine across
    /// all directional views (column "I").
    pub intermediate_aggregates: usize,
    /// Number of consolidated views (column "V").
    pub num_views: usize,
    /// Number of view groups (column "G").
    pub num_groups: usize,
    /// Number of distinct join-tree roots used by the batch.
    pub num_roots: usize,
    /// Size of the query outputs in bytes.
    pub output_size_bytes: usize,
}

/// The result of one query of a batch.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Query name (copied from the batch).
    pub name: String,
    /// Group-by attributes in the order of the key tuples below (this is the
    /// query's requested order).
    pub group_by: Vec<AttrId>,
    /// Number of aggregates per key.
    pub num_aggregates: usize,
    /// Key tuple → aggregate values. Keys absent from the map have all-zero
    /// aggregates (the corresponding group has no joining tuples).
    pub data: FxHashMap<Vec<Value>, Vec<f64>>,
}

impl QueryResult {
    /// The aggregate values for a group, if present.
    pub fn get(&self, key: &[Value]) -> Option<&[f64]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// The aggregates of a scalar query (no group-by). Returns zeros if the
    /// join is empty.
    pub fn scalar(&self) -> Vec<f64> {
        self.data
            .get(&Vec::new() as &Vec<Value>)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.num_aggregates])
    }

    /// Number of groups in the result.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the result has no groups.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over `(key, aggregates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<f64>)> {
        self.data.iter()
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        let width = self.group_by.len() * std::mem::size_of::<Value>()
            + self.num_aggregates * std::mem::size_of::<f64>();
        self.data.len() * width
    }
}

/// The result of executing a whole batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One result per query, in batch order.
    pub queries: Vec<QueryResult>,
    /// Optimizer/execution statistics.
    pub stats: EngineStats,
}

/// The LMFAO engine: owns the (sorted) database and the join tree, and
/// evaluates query batches according to its configuration.
#[derive(Debug, Clone)]
pub struct Engine {
    db: Database,
    tree: JoinTree,
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine. Relations are sorted by the attribute orders of
    /// their join-tree nodes (required by the trie scans), and statistics are
    /// refreshed.
    pub fn new(mut db: Database, tree: JoinTree, config: EngineConfig) -> Self {
        db.recompute_statistics();
        prepare_database(&mut db, &tree);
        Engine { db, tree, config }
    }

    /// The engine's database (sorted by join attributes).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The join tree.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replaces the configuration (used by the ablation benchmarks).
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Runs the optimizer layers only (roots, pushdown, merging, grouping)
    /// and reports the Table-2 style statistics without executing.
    pub fn plan_only(&self, batch: &QueryBatch) -> EngineStats {
        let (roots, pd, grouping_len) = self.optimize(batch);
        let _ = roots;
        EngineStats {
            application_aggregates: batch.num_aggregates(),
            intermediate_aggregates: pd
                .catalog
                .total_aggregates()
                .saturating_sub(batch.num_aggregates()),
            num_views: pd.catalog.len(),
            num_groups: grouping_len,
            num_roots: roots_count(&roots),
            output_size_bytes: 0,
        }
    }

    fn optimize(&self, batch: &QueryBatch) -> (RootAssignment, PushdownResult, usize) {
        let roots = assign_roots(batch, &self.tree, &self.db, &self.config);
        let pd = push_down_batch(batch, &self.tree, &roots);
        let grouping = group_views(&pd.catalog, self.config.multi_output);
        (roots, pd, grouping.len())
    }

    /// Evaluates a batch with an empty dynamic-function registry.
    pub fn execute(&self, batch: &QueryBatch) -> BatchResult {
        self.execute_with_dynamics(batch, &DynamicRegistry::new())
    }

    /// Evaluates a batch, resolving dynamic UDAFs through `dynamics`.
    pub fn execute_with_dynamics(
        &self,
        batch: &QueryBatch,
        dynamics: &DynamicRegistry,
    ) -> BatchResult {
        let roots = assign_roots(batch, &self.tree, &self.db, &self.config);
        let pd = push_down_batch(batch, &self.tree, &roots);
        let grouping = group_views(&pd.catalog, self.config.multi_output);

        let computed: FxHashMap<ViewId, ComputedView> = if self.config.specialization {
            let plans: Vec<GroupPlan> = grouping
                .groups
                .iter()
                .map(|g| build_group_plan(&self.db, &self.tree, &pd.catalog, g))
                .collect();
            execute_all(&self.db, &plans, &grouping, dynamics, &self.config)
        } else {
            // Interpreted path: one scan per view, in dependency order.
            let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
            for vid in pd.catalog.topological_order() {
                let cv = execute_view_interpreted(
                    &self.db,
                    &self.tree,
                    &pd.catalog,
                    vid,
                    &computed,
                    dynamics,
                );
                computed.insert(vid, cv);
            }
            computed
        };

        // Project query results out of the (merged) output views.
        let mut queries = Vec::with_capacity(batch.len());
        let mut output_bytes = 0usize;
        for (query, output) in batch.queries.iter().zip(&pd.outputs) {
            let view = pd.catalog.view(output.view);
            let cv = computed
                .get(&output.view)
                .expect("output view must be computed");
            // Keys of the computed view are in the view's canonical (sorted)
            // order; re-order them to the query's requested order.
            let perm: Vec<usize> = query
                .group_by
                .iter()
                .map(|a| {
                    view.group_by
                        .iter()
                        .position(|b| b == a)
                        .expect("query group-by attr must be a view key attr")
                })
                .collect();
            let mut data: FxHashMap<Vec<Value>, Vec<f64>> = FxHashMap::default();
            for (key, values) in cv.iter() {
                let reordered: Vec<Value> = perm.iter().map(|&p| key[p]).collect();
                let selected: Vec<f64> = output
                    .aggregate_indices
                    .iter()
                    .map(|&i| values[i])
                    .collect();
                let entry = data
                    .entry(reordered)
                    .or_insert_with(|| vec![0.0; output.aggregate_indices.len()]);
                for (e, v) in entry.iter_mut().zip(&selected) {
                    *e += v;
                }
            }
            let result = QueryResult {
                name: query.name.clone(),
                group_by: query.group_by.clone(),
                num_aggregates: query.aggregates.len(),
                data,
            };
            output_bytes += result.size_bytes();
            queries.push(result);
        }

        let stats = EngineStats {
            application_aggregates: batch.num_aggregates(),
            intermediate_aggregates: pd
                .catalog
                .total_aggregates()
                .saturating_sub(batch.num_aggregates()),
            num_views: pd.catalog.len(),
            num_groups: grouping.len(),
            num_roots: roots_count(&roots),
            output_size_bytes: output_bytes,
        };
        BatchResult { queries, stats }
    }
}

fn roots_count(roots: &RootAssignment) -> usize {
    roots.num_distinct_roots()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema, Relation, RelationSchema};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, natural_join, Hypergraph};

    /// A three-relation chain with a few dozen tuples, large enough that the
    /// different configurations genuinely exercise different code paths.
    fn chain_db() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "S1",
            &[
                ("x1", AttrType::Int),
                ("x2", AttrType::Int),
                ("u", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S2", &[("x2", AttrType::Int), ("x3", AttrType::Int)]);
        schema.add_relation_with_attrs("S3", &[("x3", AttrType::Int), ("v", AttrType::Double)]);
        let ids: Vec<AttrId> = ["x1", "x2", "u", "x3", "v"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let (x1, x2, u, x3, v) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut s1_rows = Vec::new();
        for i in 0..30i64 {
            s1_rows.push(vec![
                Value::Int(i % 7),
                Value::Int(i % 5),
                Value::Double((i % 4) as f64),
            ]);
        }
        let s1 = Relation::from_rows(RelationSchema::new("S1", vec![x1, x2, u]), s1_rows).unwrap();
        let s2 = Relation::from_rows(
            RelationSchema::new("S2", vec![x2, x3]),
            (0..5)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        let s3 = Relation::from_rows(
            RelationSchema::new("S3", vec![x3, v]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Double((10 * (i + 1)) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![s1, s2, s3]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    /// Brute-force reference: materialize the join and aggregate directly.
    fn reference_sum_product(db: &Database, a: AttrId, b: AttrId) -> f64 {
        let rels: Vec<&Relation> = db.relations().iter().collect();
        let join = natural_join(&rels, "J");
        let pa = join.position(a).unwrap();
        let pb = join.position(b).unwrap();
        (0..join.len())
            .map(|i| join.value(i, pa).as_f64() * join.value(i, pb).as_f64())
            .sum()
    }

    fn covar_batch(db: &Database) -> QueryBatch {
        let u = db.schema().attr_id("u").unwrap();
        let v = db.schema().attr_id("v").unwrap();
        let x1 = db.schema().attr_id("x1").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("uu", vec![], vec![Aggregate::sum_square(u)]);
        batch.push("uv", vec![], vec![Aggregate::sum_product(u, v)]);
        batch.push("vv", vec![], vec![Aggregate::sum_square(v)]);
        batch.push(
            "per_x1",
            vec![x1],
            vec![Aggregate::sum(v), Aggregate::count()],
        );
        batch
    }

    #[test]
    fn all_configurations_agree_with_the_materialized_join() {
        let (db, tree) = chain_db();
        let u = db.schema().attr_id("u").unwrap();
        let v = db.schema().attr_id("v").unwrap();
        let expected_uv = reference_sum_product(&db, u, v);
        let expected_uu = reference_sum_product(&db, u, u);
        let batch = covar_batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let result = engine.execute(&batch);
            assert_eq!(result.queries[1].scalar()[0], expected_uu, "{name}");
            assert_eq!(result.queries[2].scalar()[0], expected_uv, "{name}");
            assert!(result.queries[0].scalar()[0] > 0.0, "{name}");
        }
    }

    #[test]
    fn group_by_results_are_identical_across_configurations() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let reference =
            Engine::new(db.clone(), tree.clone(), EngineConfig::unoptimized()).execute(&batch);
        for (name, cfg) in EngineConfig::ablation_ladder(2).into_iter().skip(1) {
            let result = Engine::new(db.clone(), tree.clone(), cfg).execute(&batch);
            let r = &result.queries[4];
            let e = &reference.queries[4];
            assert_eq!(r.len(), e.len(), "{name}");
            for (key, vals) in e.iter() {
                let got = r
                    .get(key)
                    .unwrap_or_else(|| panic!("{name}: missing {key:?}"));
                for (g, w) in got.iter().zip(vals) {
                    assert!((g - w).abs() < 1e-9, "{name}: {key:?} {got:?} vs {vals:?}");
                }
            }
        }
    }

    #[test]
    fn stats_reflect_sharing() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch);
        let stats = &result.stats;
        assert_eq!(stats.application_aggregates, 6);
        // Far fewer views than aggregates × edges.
        assert!(stats.num_views < 6 * 2 + 5);
        assert!(stats.num_groups <= stats.num_views);
        assert!(stats.num_roots >= 1);
        assert!(stats.output_size_bytes > 0);
        // plan_only agrees with the executed stats on the optimizer counters.
        let planned = engine.plan_only(&batch);
        assert_eq!(planned.num_views, stats.num_views);
        assert_eq!(planned.num_groups, stats.num_groups);
        assert_eq!(planned.application_aggregates, stats.application_aggregates);
    }

    #[test]
    fn scalar_of_empty_join_is_zero() {
        let (mut db, tree) = chain_db();
        // Empty one relation: the join is empty and every aggregate is 0.
        let schema = db.relation("S3").unwrap().schema().clone();
        *db.relation_mut("S3").unwrap() = Relation::new(schema);
        db.recompute_statistics();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch);
        assert_eq!(result.queries[0].scalar()[0], 0.0);
        assert!(result.queries[4].is_empty());
    }

    #[test]
    fn dynamic_functions_change_results_between_iterations() {
        let (db, tree) = chain_db();
        let u = db.schema().attr_id("u").unwrap();
        let mut dynamics = DynamicRegistry::new();
        let cond = dynamics.register(|args| if args[0].as_f64() <= 1.0 { 1.0 } else { 0.0 });
        let mut batch = QueryBatch::new();
        batch.push(
            "dyn_count",
            vec![],
            vec![Aggregate::product(lmfao_expr::ProductTerm::single(
                lmfao_expr::ScalarFunction::Dynamic {
                    id: cond,
                    attrs: vec![u],
                },
            ))],
        );
        let engine = Engine::new(db, tree, EngineConfig::default());
        let first = engine.execute_with_dynamics(&batch, &dynamics).queries[0].scalar()[0];
        dynamics.replace(cond, |_| 1.0);
        let second = engine.execute_with_dynamics(&batch, &dynamics).queries[0].scalar()[0];
        assert!(
            first < second,
            "loosening the predicate must grow the count"
        );
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let seq = Engine::new(db.clone(), tree.clone(), EngineConfig::full(1)).execute(&batch);
        let par = Engine::new(db, tree, EngineConfig::full(4)).execute(&batch);
        for (s, p) in seq.queries.iter().zip(&par.queries) {
            assert_eq!(s.len(), p.len());
            for (key, vals) in s.iter() {
                let got = p.get(key).unwrap();
                for (a, b) in vals.iter().zip(got) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
