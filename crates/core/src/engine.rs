//! The LMFAO engine façade: ties all layers together.
//!
//! The primary flow is *prepare once, execute many*: [`Engine::prepare`] runs
//! every optimizer layer and returns a [`PreparedBatch`] that can be executed
//! repeatedly with changing [`DynamicRegistry`] closures. [`Engine::execute`]
//! remains as a thin `prepare + execute` convenience for one-shot batches.
//!
//! ```no_run
//! # use lmfao_core::{Engine, EngineConfig};
//! # use lmfao_expr::{Aggregate, DynamicRegistry, QueryBatch};
//! # fn demo(db: lmfao_data::Database, tree: lmfao_jointree::JoinTree) {
//! let engine = Engine::new(db, tree, EngineConfig::default());
//! let mut batch = QueryBatch::new();
//! batch.push("count", vec![], vec![Aggregate::count()]);
//! let prepared = engine.prepare(&batch).unwrap();
//! let result = prepared.execute(&DynamicRegistry::new()).unwrap();
//! println!("count = {}", result.query("count").scalar()[0]);
//! # }
//! ```

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::prepared::PreparedBatch;
use crate::shared::SharedDatabase;
use lmfao_data::{AttrId, Database, FxHashMap, Value};
use lmfao_expr::{DynamicRegistry, QueryBatch};
use lmfao_jointree::JoinTree;

/// Statistics about an optimized batch: the quantities reported in the
/// paper's Table 2 (aggregates, views, groups) plus output sizes.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Aggregates requested by the application (column "A" of Table 2).
    pub application_aggregates: usize,
    /// Additional intermediate aggregates synthesized by the engine across
    /// all directional views (column "I").
    pub intermediate_aggregates: usize,
    /// Number of consolidated views (column "V").
    pub num_views: usize,
    /// Number of view groups (column "G").
    pub num_groups: usize,
    /// Number of distinct join-tree roots used by the batch.
    pub num_roots: usize,
    /// Size of the query outputs in bytes.
    pub output_size_bytes: usize,
}

/// The result of one query of a batch.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Query name (copied from the batch).
    pub name: String,
    /// Group-by attributes in the order of the key tuples below (this is the
    /// query's requested order).
    pub group_by: Vec<AttrId>,
    /// Number of aggregates per key.
    pub num_aggregates: usize,
    /// Key tuple → aggregate values. Keys absent from the map have all-zero
    /// aggregates (the corresponding group has no joining tuples).
    pub data: FxHashMap<Vec<Value>, Vec<f64>>,
}

impl QueryResult {
    /// The aggregate values for a group, if present.
    pub fn get(&self, key: &[Value]) -> Option<&[f64]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// The aggregates of a scalar query (no group-by). Returns zeros if the
    /// join is empty.
    pub fn scalar(&self) -> Vec<f64> {
        self.data
            .get(&Vec::new() as &Vec<Value>)
            .cloned()
            .unwrap_or_else(|| vec![0.0; self.num_aggregates])
    }

    /// Number of groups in the result.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the result has no groups.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Iterates over `(key, aggregates)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<f64>)> {
        self.data.iter()
    }

    /// Approximate size in bytes.
    pub fn size_bytes(&self) -> usize {
        let width = self.group_by.len() * std::mem::size_of::<Value>()
            + self.num_aggregates * std::mem::size_of::<f64>();
        self.data.len() * width
    }
}

/// The result of executing a whole batch.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// One result per query, in batch order.
    pub queries: Vec<QueryResult>,
    /// Optimizer/execution statistics.
    pub stats: EngineStats,
}

impl BatchResult {
    /// The result of the query with the given name, if present.
    pub fn get_query(&self, name: &str) -> Option<&QueryResult> {
        self.queries.iter().find(|q| q.name == name)
    }

    /// The result of the query with the given name.
    ///
    /// # Panics
    /// Panics if no query of the batch has that name; use
    /// [`BatchResult::get_query`] for a fallible lookup.
    pub fn query(&self, name: &str) -> &QueryResult {
        self.get_query(name)
            .unwrap_or_else(|| panic!("no query named `{name}` in the batch result"))
    }

    /// The result of the query with the given name, or a typed
    /// [`EngineError::UnknownQuery`] if the batch has no query of that name.
    /// This is the lookup the serving paths use for user-supplied names,
    /// where neither a panic nor a silent `None` is acceptable.
    pub fn try_query(&self, name: &str) -> Result<&QueryResult, crate::error::EngineError> {
        self.get_query(name)
            .ok_or_else(|| crate::error::EngineError::UnknownQuery(name.to_string()))
    }
}

/// The LMFAO engine: a shared handle to the (sorted) database plus the join
/// tree and configuration under which batches are prepared and evaluated.
///
/// Cloning an engine is cheap — the database is behind a [`SharedDatabase`]
/// handle — so engines of different configurations can coexist over one
/// prepared database.
#[derive(Debug, Clone)]
pub struct Engine {
    db: SharedDatabase,
    tree: JoinTree,
    config: EngineConfig,
}

impl Engine {
    /// Creates an engine, preparing the database: relations are sorted by the
    /// attribute orders of their join-tree nodes (required by the trie scans)
    /// and statistics are refreshed.
    ///
    /// To share one prepared database across several engines (e.g. the
    /// ablation ladder), prepare it once with [`SharedDatabase::prepare`] and
    /// use [`Engine::with_shared`].
    pub fn new(db: Database, tree: JoinTree, config: EngineConfig) -> Self {
        let shared = SharedDatabase::prepare(db, &tree);
        Engine::with_shared(shared, tree, config)
    }

    /// Creates an engine over an already prepared [`SharedDatabase`]. The
    /// handle must have been prepared against the same join tree (its
    /// relations are sorted by that tree's attribute orders).
    pub fn with_shared(db: SharedDatabase, tree: JoinTree, config: EngineConfig) -> Self {
        Engine { db, tree, config }
    }

    /// The engine's database (sorted by join attributes).
    pub fn database(&self) -> &Database {
        self.db.database()
    }

    /// The shared database handle (cheap to clone).
    pub fn shared_database(&self) -> &SharedDatabase {
        &self.db
    }

    /// The join tree.
    pub fn tree(&self) -> &JoinTree {
        &self.tree
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Replaces the configuration (used by the ablation benchmarks). Batches
    /// already prepared keep the configuration they were prepared under.
    pub fn set_config(&mut self, config: EngineConfig) {
        self.config = config;
    }

    /// Runs every optimizer layer (roots, pushdown, merging, grouping,
    /// multi-output plans) over the batch once and returns the cached
    /// [`PreparedBatch`]. Planning statistics are available immediately via
    /// [`PreparedBatch::stats`]; execution via [`PreparedBatch::execute`].
    ///
    /// Planning failures (a join-tree node whose relation the database does
    /// not have, a join attribute missing from its relation) surface as typed
    /// [`EngineError`]s instead of panics.
    pub fn prepare(&self, batch: &QueryBatch) -> Result<PreparedBatch, EngineError> {
        PreparedBatch::build(self.db.clone(), self.tree.clone(), self.config, batch)
    }

    /// Evaluates a batch once with an empty dynamic-function registry: a thin
    /// `prepare + execute` convenience. Prefer [`Engine::prepare`] when the
    /// same batch is evaluated more than once.
    pub fn execute(&self, batch: &QueryBatch) -> Result<BatchResult, EngineError> {
        self.execute_with_dynamics(batch, &DynamicRegistry::new())
    }

    /// Evaluates a batch once, resolving dynamic UDAFs through `dynamics`: a
    /// thin `prepare + execute` convenience.
    pub fn execute_with_dynamics(
        &self,
        batch: &QueryBatch,
        dynamics: &DynamicRegistry,
    ) -> Result<BatchResult, EngineError> {
        self.prepare(batch)?.execute(dynamics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema, Relation, RelationSchema};
    use lmfao_expr::Aggregate;
    use lmfao_jointree::{build_join_tree, natural_join, Hypergraph};

    /// A three-relation chain with a few dozen tuples, large enough that the
    /// different configurations genuinely exercise different code paths.
    fn chain_db() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "S1",
            &[
                ("x1", AttrType::Int),
                ("x2", AttrType::Int),
                ("u", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S2", &[("x2", AttrType::Int), ("x3", AttrType::Int)]);
        schema.add_relation_with_attrs("S3", &[("x3", AttrType::Int), ("v", AttrType::Double)]);
        let ids: Vec<AttrId> = ["x1", "x2", "u", "x3", "v"]
            .iter()
            .map(|n| schema.attr_id(n).unwrap())
            .collect();
        let (x1, x2, u, x3, v) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        let mut s1_rows = Vec::new();
        for i in 0..30i64 {
            s1_rows.push(vec![
                Value::Int(i % 7),
                Value::Int(i % 5),
                Value::Double((i % 4) as f64),
            ]);
        }
        let s1 = Relation::from_rows(RelationSchema::new("S1", vec![x1, x2, u]), s1_rows).unwrap();
        let s2 = Relation::from_rows(
            RelationSchema::new("S2", vec![x2, x3]),
            (0..5)
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        let s3 = Relation::from_rows(
            RelationSchema::new("S3", vec![x3, v]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Double((10 * (i + 1)) as f64)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![s1, s2, s3]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    /// Brute-force reference: materialize the join and aggregate directly.
    fn reference_sum_product(db: &Database, a: AttrId, b: AttrId) -> f64 {
        let rels: Vec<&Relation> = db.relations().iter().collect();
        let join = natural_join(&rels, "J");
        let pa = join.position(a).unwrap();
        let pb = join.position(b).unwrap();
        (0..join.len())
            .map(|i| join.value(i, pa).as_f64() * join.value(i, pb).as_f64())
            .sum()
    }

    fn covar_batch(db: &Database) -> QueryBatch {
        let u = db.schema().attr_id("u").unwrap();
        let v = db.schema().attr_id("v").unwrap();
        let x1 = db.schema().attr_id("x1").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("uu", vec![], vec![Aggregate::sum_square(u)]);
        batch.push("uv", vec![], vec![Aggregate::sum_product(u, v)]);
        batch.push("vv", vec![], vec![Aggregate::sum_square(v)]);
        batch.push(
            "per_x1",
            vec![x1],
            vec![Aggregate::sum(v), Aggregate::count()],
        );
        batch
    }

    #[test]
    fn all_configurations_agree_with_the_materialized_join() {
        let (db, tree) = chain_db();
        let u = db.schema().attr_id("u").unwrap();
        let v = db.schema().attr_id("v").unwrap();
        let expected_uv = reference_sum_product(&db, u, v);
        let expected_uu = reference_sum_product(&db, u, u);
        let batch = covar_batch(&db);
        for (name, cfg) in EngineConfig::ablation_ladder(2) {
            let engine = Engine::new(db.clone(), tree.clone(), cfg);
            let result = engine.execute(&batch).unwrap();
            assert_eq!(result.queries[1].scalar()[0], expected_uu, "{name}");
            assert_eq!(result.queries[2].scalar()[0], expected_uv, "{name}");
            assert!(result.queries[0].scalar()[0] > 0.0, "{name}");
        }
    }

    #[test]
    fn group_by_results_are_identical_across_configurations() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let reference = Engine::new(db.clone(), tree.clone(), EngineConfig::unoptimized())
            .execute(&batch)
            .unwrap();
        for (name, cfg) in EngineConfig::ablation_ladder(2).into_iter().skip(1) {
            let result = Engine::new(db.clone(), tree.clone(), cfg)
                .execute(&batch)
                .unwrap();
            let r = &result.queries[4];
            let e = &reference.queries[4];
            assert_eq!(r.len(), e.len(), "{name}");
            for (key, vals) in e.iter() {
                let got = r
                    .get(key)
                    .unwrap_or_else(|| panic!("{name}: missing {key:?}"));
                for (g, w) in got.iter().zip(vals) {
                    assert!((g - w).abs() < 1e-9, "{name}: {key:?} {got:?} vs {vals:?}");
                }
            }
        }
    }

    #[test]
    fn stats_reflect_sharing() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch).unwrap();
        let stats = &result.stats;
        assert_eq!(stats.application_aggregates, 6);
        // Far fewer views than aggregates × edges.
        assert!(stats.num_views < 6 * 2 + 5);
        assert!(stats.num_groups <= stats.num_views);
        assert!(stats.num_roots >= 1);
        assert!(stats.output_size_bytes > 0);
        // The prepared batch reports the same optimizer counters without
        // executing anything.
        let planned = engine.prepare(&batch).unwrap().stats().clone();
        assert_eq!(planned.num_views, stats.num_views);
        assert_eq!(planned.num_groups, stats.num_groups);
        assert_eq!(planned.num_roots, stats.num_roots);
        assert_eq!(planned.application_aggregates, stats.application_aggregates);
        assert_eq!(planned.output_size_bytes, 0);
    }

    #[test]
    fn results_are_addressable_by_query_name() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch).unwrap();
        assert_eq!(
            result.query("uv").scalar()[0],
            result.queries[2].scalar()[0]
        );
        assert_eq!(result.query("per_x1").len(), result.queries[4].len());
        assert!(result.get_query("no_such_query").is_none());
    }

    #[test]
    #[should_panic(expected = "no query named")]
    fn unknown_query_name_panics() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        engine.execute(&batch).unwrap().query("missing");
    }

    #[test]
    fn scalar_of_empty_join_is_zero() {
        let (mut db, tree) = chain_db();
        // Empty one relation: the join is empty and every aggregate is 0.
        let schema = db.relation("S3").unwrap().schema().clone();
        *db.relation_mut("S3").unwrap() = Relation::new(schema);
        db.recompute_statistics();
        let batch = covar_batch(&db);
        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch).unwrap();
        assert_eq!(result.queries[0].scalar()[0], 0.0);
        assert!(result.queries[4].is_empty());
    }

    #[test]
    fn dynamic_functions_change_results_between_iterations() {
        let (db, tree) = chain_db();
        let u = db.schema().attr_id("u").unwrap();
        let mut dynamics = DynamicRegistry::new();
        let cond = dynamics.register(|args| if args[0].as_f64() <= 1.0 { 1.0 } else { 0.0 });
        let mut batch = QueryBatch::new();
        batch.push(
            "dyn_count",
            vec![],
            vec![Aggregate::product(lmfao_expr::ProductTerm::single(
                lmfao_expr::ScalarFunction::Dynamic {
                    id: cond,
                    attrs: vec![u],
                },
            ))],
        );
        let engine = Engine::new(db, tree, EngineConfig::default());
        // Plan once; only the dynamic closure changes between executions.
        let prepared = engine.prepare(&batch).unwrap();
        let first = prepared
            .execute(&dynamics)
            .unwrap()
            .query("dyn_count")
            .scalar()[0];
        dynamics.replace(cond, |_| 1.0);
        let second = prepared
            .execute(&dynamics)
            .unwrap()
            .query("dyn_count")
            .scalar()[0];
        assert!(
            first < second,
            "loosening the predicate must grow the count"
        );
        // The one-shot convenience path agrees with the prepared path.
        let one_shot = engine.execute_with_dynamics(&batch, &dynamics).unwrap();
        assert_eq!(one_shot.query("dyn_count").scalar()[0], second);
    }

    #[test]
    fn engines_share_a_prepared_database() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let shared = crate::shared::SharedDatabase::prepare(db, &tree);
        let reference =
            Engine::with_shared(shared.clone(), tree.clone(), EngineConfig::unoptimized())
                .execute(&batch)
                .unwrap();
        for (name, cfg) in EngineConfig::ablation_ladder(2).into_iter().skip(1) {
            let engine = Engine::with_shared(shared.clone(), tree.clone(), cfg);
            assert!(crate::shared::SharedDatabase::same_storage(
                &shared,
                engine.shared_database()
            ));
            let result = engine.execute(&batch).unwrap();
            for (r, e) in result.queries.iter().zip(&reference.queries) {
                assert_eq!(r.len(), e.len(), "{name}");
                for (key, vals) in e.iter() {
                    let got = r.get(key).unwrap();
                    for (g, w) in got.iter().zip(vals) {
                        assert!((g - w).abs() < 1e-9, "{name}: {key:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let (db, tree) = chain_db();
        let batch = covar_batch(&db);
        let seq = Engine::new(db.clone(), tree.clone(), EngineConfig::full(1))
            .execute(&batch)
            .unwrap();
        let par = Engine::new(db, tree, EngineConfig::full(4))
            .execute(&batch)
            .unwrap();
        for (s, p) in seq.queries.iter().zip(&par.queries) {
            assert_eq!(s.len(), p.len());
            for (key, vals) in s.iter() {
                let got = p.get(key).unwrap();
                for (a, b) in vals.iter().zip(got) {
                    assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
