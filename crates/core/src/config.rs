//! Engine configuration: the knobs behind Figure 5's ablation study.

/// Configuration of the LMFAO engine.
///
/// Each flag corresponds to one of the optimization layers evaluated in the
/// paper's Figure 5. Turning everything off yields the AC/DC-style proxy
/// (one interpreted pass per view); turning everything on is full LMFAO.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Use a different root of the join tree per query (the Find Roots
    /// layer). When disabled, all queries share a single root.
    pub multi_root: bool,
    /// Compute all views of a group in one scan over their common relation
    /// (the Multi-Output Optimization layer). When disabled, each view is
    /// computed with its own scan.
    pub multi_output: bool,
    /// Lower view groups into specialized register programs before execution
    /// (the substitute for the paper's C++ code generation). When disabled,
    /// views are evaluated by a straightforward tuple-at-a-time interpreter.
    pub specialization: bool,
    /// Number of worker threads for task/domain parallelism. `1` disables
    /// the Parallelization layer.
    pub threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            multi_root: true,
            multi_output: true,
            specialization: true,
            threads: 1,
        }
    }
}

impl EngineConfig {
    /// Full LMFAO with the given number of threads.
    pub fn full(threads: usize) -> Self {
        EngineConfig {
            multi_root: true,
            multi_output: true,
            specialization: true,
            threads: threads.max(1),
        }
    }

    /// The unoptimized proxy (Figure 5's leftmost bar): interpreted,
    /// single-root, one scan per view, single-threaded.
    pub fn unoptimized() -> Self {
        EngineConfig {
            multi_root: false,
            multi_output: false,
            specialization: false,
            threads: 1,
        }
    }

    /// Adds specialization only (Figure 5's second bar).
    pub fn with_specialization() -> Self {
        EngineConfig {
            specialization: true,
            ..Self::unoptimized()
        }
    }

    /// Specialization plus multi-output plans (third bar).
    pub fn with_multi_output() -> Self {
        EngineConfig {
            multi_output: true,
            ..Self::with_specialization()
        }
    }

    /// Specialization, multi-output and multiple roots (fourth bar).
    pub fn with_multi_root() -> Self {
        EngineConfig {
            multi_root: true,
            ..Self::with_multi_output()
        }
    }

    /// Builder: sets the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Thread count from the `LMFAO_THREADS` environment variable, falling
    /// back to `fallback` when unset or unparsable. CI's thread-matrix job
    /// runs the whole test suite under `LMFAO_THREADS={1,4}`; tests that
    /// exercise the parallel executor resolve their thread count through
    /// this so the matrix actually varies the scheduler.
    pub fn env_threads(fallback: usize) -> usize {
        std::env::var("LMFAO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .map(|t| t.max(1))
            .unwrap_or_else(|| fallback.max(1))
    }

    /// The ablation ladder of Figure 5, in order.
    pub fn ablation_ladder(threads: usize) -> Vec<(&'static str, EngineConfig)> {
        vec![
            ("unoptimized", Self::unoptimized()),
            ("+specialization", Self::with_specialization()),
            ("+multi-output", Self::with_multi_output()),
            ("+multi-root", Self::with_multi_root()),
            ("+parallelization", Self::with_multi_root().threads(threads)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_full_single_threaded() {
        let c = EngineConfig::default();
        assert!(c.multi_root && c.multi_output && c.specialization);
        assert_eq!(c.threads, 1);
    }

    #[test]
    fn ladder_is_monotone() {
        let ladder = EngineConfig::ablation_ladder(4);
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].1, EngineConfig::unoptimized());
        assert!(ladder[1].1.specialization && !ladder[1].1.multi_output);
        assert!(ladder[2].1.multi_output && !ladder[2].1.multi_root);
        assert!(ladder[3].1.multi_root);
        assert_eq!(ladder[4].1.threads, 4);
    }

    #[test]
    fn thread_count_never_zero() {
        assert_eq!(EngineConfig::full(0).threads, 1);
        assert_eq!(EngineConfig::default().threads(0).threads, 1);
        // The test suite runs under a CI matrix that sets LMFAO_THREADS, so
        // only the clamp is asserted here, not the exact resolved count.
        assert!(EngineConfig::env_threads(0) >= 1);
        match std::env::var("LMFAO_THREADS") {
            Err(_) => assert_eq!(EngineConfig::env_threads(0), 1),
            Ok(v) => {
                let expect = v.trim().parse::<usize>().map(|t| t.max(1)).unwrap_or(7);
                assert_eq!(EngineConfig::env_threads(7), expect);
            }
        }
    }
}
