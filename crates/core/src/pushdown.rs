//! The Aggregate Pushdown and Merge Views layers.
//!
//! Every query of the batch is decomposed into one directional view per edge
//! of the join tree, oriented towards the query's root (Section 3.2): the
//! view at an edge `n → parent(n)` computes the query's aggregates restricted
//! to the subtree rooted at `n`, and is defined over the relation at `n`
//! joined with the views incoming at `n`. Factors of each aggregate product
//! are assigned to the deepest node that can evaluate them, so that partial
//! aggregates are pushed past joins as early as possible.
//!
//! Merging happens on the fly through the [`ViewCatalog`]: views with the
//! same source, target and group-by attributes are consolidated into one
//! (cases 1–3 of Section 3.4) and identical aggregates within a view are kept
//! once. This is what turns e.g. 814 covar aggregates × 4 edges = 3,256 views
//! into a few tens of views in the paper.

use crate::roots::RootAssignment;
use crate::view::{ViewAggregate, ViewCatalog, ViewId, ViewTerm};
use lmfao_data::{AttrId, FxHashMap, FxHashSet};
use lmfao_expr::{Query, QueryBatch, ScalarFunction};
use lmfao_jointree::JoinTree;

/// Where a query's results end up after execution: the output view carrying
/// them and, for each of the query's aggregates, its index within that view.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// The output view (target `None`) computed at the query's root.
    pub view: ViewId,
    /// For each aggregate of the query, its index within the output view.
    pub aggregate_indices: Vec<usize>,
}

/// The result of the pushdown + merge layers for a whole batch.
#[derive(Debug, Clone)]
pub struct PushdownResult {
    /// The consolidated view catalog.
    pub catalog: ViewCatalog,
    /// Per-query output mapping (indexed by query position in the batch).
    pub outputs: Vec<QueryOutput>,
}

/// Assignment of one factor of a product term to a join-tree node.
#[derive(Debug, Clone)]
struct FactorAssignment {
    node: usize,
    factor: ScalarFunction,
}

/// Per-term decomposition bookkeeping.
#[derive(Debug, Clone)]
struct TermDecomposition {
    constant: f64,
    assignments: Vec<FactorAssignment>,
    /// Attributes that must be carried above the nodes that own them because
    /// a factor spanning several relations is evaluated at the root.
    carried: Vec<AttrId>,
}

/// Depth of each node from the root (BFS levels).
fn depths_from_root(tree: &JoinTree, root: usize) -> Vec<usize> {
    let mut depth = vec![0usize; tree.num_nodes()];
    for (node, parent) in tree.bfs_order(root) {
        if parent != usize::MAX {
            depth[node] = depth[parent] + 1;
        }
    }
    depth
}

/// Assigns every factor of a term to a node of the tree (rooted at `root`).
fn decompose_term(
    term: &lmfao_expr::ProductTerm,
    tree: &JoinTree,
    root: usize,
    depths: &[usize],
) -> TermDecomposition {
    let mut constant = 1.0;
    let mut assignments = Vec::new();
    let mut carried = Vec::new();
    for factor in &term.factors {
        if let ScalarFunction::Constant(c) = factor {
            constant *= c;
            continue;
        }
        let attrs = factor.attrs();
        // Deepest node whose relation contains every attribute of the factor.
        let mut best: Option<usize> = None;
        for n in 0..tree.num_nodes() {
            if attrs.iter().all(|a| tree.node(n).contains(*a)) {
                match best {
                    Some(b) if depths[b] >= depths[n] => {}
                    _ => best = Some(n),
                }
            }
        }
        match best {
            Some(node) => assignments.push(FactorAssignment {
                node,
                factor: factor.clone(),
            }),
            None => {
                // No single relation holds all attributes (e.g. h(txns, city)):
                // evaluate at the root and carry the attributes up as extra
                // group-by attributes of the views below.
                for a in &attrs {
                    if !carried.contains(a) {
                        carried.push(*a);
                    }
                }
                assignments.push(FactorAssignment {
                    node: root,
                    factor: factor.clone(),
                });
            }
        }
    }
    TermDecomposition {
        constant,
        assignments,
        carried,
    }
}

/// Decomposes one query into directional views registered in `catalog`.
fn push_down_query(
    query: &Query,
    tree: &JoinTree,
    root: usize,
    catalog: &mut ViewCatalog,
) -> QueryOutput {
    let depths = depths_from_root(tree, root);
    let order = tree.bfs_order(root);

    // Decompose every (aggregate, term) pair.
    let mut decomposed: Vec<Vec<TermDecomposition>> = Vec::with_capacity(query.aggregates.len());
    let mut carried: FxHashSet<AttrId> = FxHashSet::default();
    for agg in &query.aggregates {
        let mut terms = Vec::with_capacity(agg.terms.len());
        for term in &agg.terms {
            let d = decompose_term(term, tree, root, &depths);
            carried.extend(d.carried.iter().copied());
            terms.push(d);
        }
        decomposed.push(terms);
    }

    // Group-by attributes (plus carried ones) that views below must propagate.
    let mut propagated: FxHashSet<AttrId> = query.group_by.iter().copied().collect();
    propagated.extend(carried.iter().copied());

    // The view id created for each non-root node, and for each (node, agg, term)
    // the index of the partial-product aggregate within that node's view.
    let mut node_view: FxHashMap<usize, ViewId> = FxHashMap::default();
    let mut partial_index: FxHashMap<(usize, usize, usize), usize> = FxHashMap::default();

    // Process children before parents.
    for &(node, parent) in order.iter().rev() {
        let is_root = parent == usize::MAX;
        let children: Vec<usize> = tree
            .neighbors(node)
            .iter()
            .copied()
            .filter(|&c| c != parent)
            .collect();

        let group_by: Vec<AttrId> = if is_root {
            query.group_by.clone()
        } else {
            let subtree = tree.subtree_attrs(node, parent);
            let mut gb: Vec<AttrId> = propagated
                .iter()
                .copied()
                .filter(|a| subtree.contains(a))
                .collect();
            for a in tree.edge_join_attrs(node, parent) {
                if !gb.contains(&a) {
                    gb.push(a);
                }
            }
            gb
        };

        let target = if is_root { None } else { Some(parent) };
        let view = catalog.get_or_create(node, target, group_by);

        if is_root {
            catalog.tag_query(view, query.id);
            let mut aggregate_indices = Vec::with_capacity(query.aggregates.len());
            for (ai, terms) in decomposed.iter().enumerate() {
                let mut view_terms = Vec::with_capacity(terms.len());
                for (ti, dec) in terms.iter().enumerate() {
                    view_terms.push(build_view_term(
                        dec,
                        node,
                        &children,
                        &node_view,
                        &partial_index,
                        ai,
                        ti,
                        true,
                    ));
                }
                let idx = catalog.add_aggregate(view, ViewAggregate { terms: view_terms });
                aggregate_indices.push(idx);
            }
            return QueryOutput {
                view,
                aggregate_indices,
            };
        }

        node_view.insert(node, view);
        for (ai, terms) in decomposed.iter().enumerate() {
            for (ti, dec) in terms.iter().enumerate() {
                let term = build_view_term(
                    dec,
                    node,
                    &children,
                    &node_view,
                    &partial_index,
                    ai,
                    ti,
                    false,
                );
                let idx = catalog.add_aggregate(view, ViewAggregate::single(term));
                partial_index.insert((node, ai, ti), idx);
            }
        }
    }
    unreachable!("the BFS order always ends at the root");
}

/// Builds the [`ViewTerm`] of term `(ai, ti)` at `node`: the factors assigned
/// to the node plus one reference per child view.
#[allow(clippy::too_many_arguments)]
fn build_view_term(
    dec: &TermDecomposition,
    node: usize,
    children: &[usize],
    node_view: &FxHashMap<usize, ViewId>,
    partial_index: &FxHashMap<(usize, usize, usize), usize>,
    ai: usize,
    ti: usize,
    is_root: bool,
) -> ViewTerm {
    let local: Vec<ScalarFunction> = dec
        .assignments
        .iter()
        .filter(|a| a.node == node)
        .map(|a| a.factor.clone())
        .collect();
    let child_refs: Vec<(ViewId, usize)> = children
        .iter()
        .map(|&c| {
            let v = node_view[&c];
            let idx = partial_index[&(c, ai, ti)];
            (v, idx)
        })
        .collect();
    ViewTerm {
        constant: if is_root { dec.constant } else { 1.0 },
        local,
        child_refs,
    }
}

/// Runs the pushdown + merge layers over a whole batch.
pub fn push_down_batch(
    batch: &QueryBatch,
    tree: &JoinTree,
    roots: &RootAssignment,
) -> PushdownResult {
    let mut catalog = ViewCatalog::new();
    let mut outputs = Vec::with_capacity(batch.len());
    for (qi, query) in batch.queries.iter().enumerate() {
        let root = roots.root_of(qi);
        outputs.push(push_down_query(query, tree, root, &mut catalog));
    }
    PushdownResult { catalog, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::roots::assign_roots;
    use lmfao_data::{AttrType, Database, DatabaseSchema, Relation, Value};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    /// Favorita-like mini schema: Sales(date, store, item, units) with
    /// Items(item, family, price), Stores(store, city), Holidays(date, holiday).
    fn star_db() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("date", AttrType::Int),
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[
                ("item", AttrType::Int),
                ("family", AttrType::Categorical),
                ("price", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Stores",
            &[("store", AttrType::Int), ("city", AttrType::Categorical)],
        );
        schema.add_relation_with_attrs(
            "Holidays",
            &[("date", AttrType::Int), ("holiday", AttrType::Int)],
        );
        let rel = |schema: &DatabaseSchema, name: &str, rows: Vec<Vec<Value>>| {
            Relation::from_rows(schema.relation(name).unwrap().clone(), rows).unwrap()
        };
        let sales = rel(
            &schema,
            "Sales",
            vec![vec![
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Double(1.0),
            ]],
        );
        let items = rel(
            &schema,
            "Items",
            vec![vec![Value::Int(1), Value::Cat(0), Value::Double(2.0)]],
        );
        let stores = rel(&schema, "Stores", vec![vec![Value::Int(1), Value::Cat(0)]]);
        let holidays = rel(
            &schema,
            "Holidays",
            vec![vec![Value::Int(1), Value::Int(0)]],
        );
        let db = Database::new(schema.clone(), vec![sales, items, stores, holidays]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn a(db: &Database, name: &str) -> AttrId {
        db.schema().attr_id(name).unwrap()
    }

    #[test]
    fn one_view_per_edge_for_a_single_query() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        batch.push(
            "q1",
            vec![],
            vec![Aggregate::sum_product(a(&db, "units"), a(&db, "price"))],
        );
        let roots = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let res = push_down_batch(&batch, &tree, &roots);
        // 3 edges hang off Sales => 3 directional views + 1 output view.
        assert_eq!(res.catalog.len(), 4);
        let out = &res.outputs[0];
        let view = res.catalog.view(out.view);
        assert!(view.is_output());
        assert_eq!(view.source, tree.node_of_relation("Sales").unwrap());
        assert_eq!(out.aggregate_indices, vec![0]);
    }

    #[test]
    fn price_factor_is_pushed_to_items() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        batch.push(
            "q1",
            vec![],
            vec![Aggregate::sum_product(a(&db, "units"), a(&db, "price"))],
        );
        let roots = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let res = push_down_batch(&batch, &tree, &roots);
        let items = tree.node_of_relation("Items").unwrap();
        let item_views: Vec<_> = res
            .catalog
            .views()
            .iter()
            .filter(|v| v.source == items)
            .collect();
        assert_eq!(item_views.len(), 1);
        let view = item_views[0];
        // The Items view must evaluate Identity(price) locally.
        let has_price_factor = view.aggregates.iter().any(|agg| {
            agg.terms
                .iter()
                .any(|t| t.local.iter().any(|f| f.attrs().contains(&a(&db, "price"))))
        });
        assert!(has_price_factor);
        // Its group-by is exactly the join key {item}.
        assert_eq!(view.group_by, vec![a(&db, "item")]);
    }

    #[test]
    fn group_by_attribute_below_root_is_carried_up() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        // Q(family; SUM(units)) rooted wherever — family must be carried from Items.
        batch.push(
            "q_family",
            vec![a(&db, "family")],
            vec![Aggregate::sum(a(&db, "units"))],
        );
        // Force the root to Sales by also pushing many Sales-focused queries.
        batch.push("count", vec![], vec![Aggregate::count()]);
        let cfg = EngineConfig {
            multi_root: false,
            ..EngineConfig::default()
        };
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let res = push_down_batch(&batch, &tree, &roots);
        let items = tree.node_of_relation("Items").unwrap();
        // If the root is not Items itself, the Items view must carry family.
        if roots.root_of(0) != items {
            let carried = res
                .catalog
                .views()
                .iter()
                .filter(|v| v.source == items && v.target.is_some())
                .any(|v| v.group_by.contains(&a(&db, "family")));
            assert!(carried, "family must be a group-by of the Items view");
        }
    }

    #[test]
    fn views_are_shared_between_queries() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        // Two covar-style queries that share everything below Sales except
        // the aggregate over Items.
        batch.push(
            "covar_units_price",
            vec![],
            vec![Aggregate::sum_product(a(&db, "units"), a(&db, "price"))],
        );
        batch.push(
            "covar_units_units",
            vec![],
            vec![Aggregate::sum_square(a(&db, "units"))],
        );
        let roots = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let res = push_down_batch(&batch, &tree, &roots);
        // Without sharing: 2 queries × (3 views + 1 output) = 8. With the
        // catalog, directional views along the same edges merge: at most
        // 3 directional + shared output(s).
        assert!(res.catalog.len() <= 5, "got {} views", res.catalog.len());
        // Both queries should use the same output view (same root, no group-by),
        // with different aggregate indices.
        assert_eq!(res.outputs[0].view, res.outputs[1].view);
        assert_ne!(
            res.outputs[0].aggregate_indices,
            res.outputs[1].aggregate_indices
        );
    }

    #[test]
    fn count_partials_are_deduplicated() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        // Many queries whose partial product over Stores is always the count.
        for i in 0..5 {
            batch.push(
                format!("q{i}"),
                vec![],
                vec![Aggregate::sum(a(&db, "units"))],
            );
        }
        let roots = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let res = push_down_batch(&batch, &tree, &roots);
        let stores = tree.node_of_relation("Stores").unwrap();
        for v in res.catalog.views().iter().filter(|v| v.source == stores) {
            assert_eq!(
                v.num_aggregates(),
                1,
                "identical count partials must merge into one aggregate"
            );
        }
    }

    #[test]
    fn cross_relation_factor_is_carried_to_root() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        // A factor over (price, city): no single relation holds both.
        let term = lmfao_expr::ProductTerm::of(vec![ScalarFunction::ExpLinear {
            coefficients: vec![(a(&db, "price"), 1.0), (a(&db, "city"), 1.0)],
        }]);
        batch.push("cross", vec![], vec![Aggregate::product(term)]);
        let cfg = EngineConfig {
            multi_root: false,
            ..EngineConfig::default()
        };
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let res = push_down_batch(&batch, &tree, &roots);
        // price and city must be carried by the views of the nodes that hold them.
        let items = tree.node_of_relation("Items").unwrap();
        let stores = tree.node_of_relation("Stores").unwrap();
        let item_view_carries = res
            .catalog
            .views()
            .iter()
            .any(|v| v.source == items && v.group_by.contains(&a(&db, "price")));
        let store_view_carries = res
            .catalog
            .views()
            .iter()
            .any(|v| v.source == stores && v.group_by.contains(&a(&db, "city")));
        assert!(item_view_carries);
        assert!(store_view_carries);
    }

    #[test]
    fn constants_are_folded_into_root_terms() {
        let (db, tree) = star_db();
        let mut batch = QueryBatch::new();
        let term = lmfao_expr::ProductTerm::of(vec![
            ScalarFunction::Constant(2.5),
            ScalarFunction::Identity(a(&db, "units")),
        ]);
        batch.push("scaled", vec![], vec![Aggregate::product(term)]);
        let roots = assign_roots(&batch, &tree, &db, &EngineConfig::default());
        let res = push_down_batch(&batch, &tree, &roots);
        let out = res.catalog.view(res.outputs[0].view);
        let root_term = &out.aggregates[0].terms[0];
        assert_eq!(root_term.constant, 2.5);
    }
}
