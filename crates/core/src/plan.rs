//! The Multi-Output Optimization layer: physical plans for view groups.
//!
//! A view group is LMFAO's computational unit: all views going out of the
//! same join-tree node at the same dependency stage are computed in one scan
//! over that node's relation (Section 3.5). The scan sees the relation as a
//! trie over an *attribute order* on its join attributes (ascending domain
//! size); incoming views are registered at the depth where all their join
//! keys are bound; and every factor of every aggregate is registered at the
//! lowest depth at which it can be evaluated:
//!
//! * factors over join attributes and lookups into incoming views without
//!   extra key attributes fold into per-depth *partial products* (the
//!   `α`-registers of Figure 4),
//! * factors over the relation's non-join attributes become *local
//!   expressions*, deduplicated across all aggregates of the group and summed
//!   once per innermost binding (the `α9`/`α10` local variables of Figure 4),
//! * references to incoming views that carry extra group-by attributes are
//!   resolved in the innermost loop over that view's matching entries.
//!
//! This module only *builds* the plans; execution lives in [`crate::exec`].

use crate::error::EngineError;
use crate::group::ViewGroup;
use crate::view::{ViewCatalog, ViewDef, ViewId};
use lmfao_data::{AttrId, Database, Relation};
use lmfao_expr::ScalarFunction;
use lmfao_jointree::JoinTree;

/// Where a component of an output key comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum KeySource {
    /// A join attribute of the scanned relation, bound at the given depth of
    /// the attribute order.
    BoundDepth(usize),
    /// A non-join column of the scanned relation: requires the per-row path.
    RowColumn(usize),
    /// An attribute carried by an incoming view's extra key, resolved from
    /// the current entry combination.
    Extra(AttrId),
}

/// Plan for one incoming view consumed by the group.
#[derive(Debug, Clone)]
pub struct IncomingPlan {
    /// The incoming view.
    pub view: ViewId,
    /// Key attributes of the view that are columns of the scanned relation,
    /// as `(attr, column position in the relation)`, in the view's canonical
    /// key order.
    pub bound: Vec<(AttrId, usize)>,
    /// Key attributes of the view that are *not* columns of the scanned
    /// relation (extra attributes carried from deeper in the tree), as
    /// `(attr, position within the view's key tuple)`.
    pub extras: Vec<(AttrId, usize)>,
    /// Positions of the bound attributes within the view's key tuple.
    pub bound_positions: Vec<usize>,
    /// Depth of the attribute order at which all bound attributes are fixed
    /// (0 = before the outermost loop).
    pub probe_depth: usize,
}

impl IncomingPlan {
    /// True if the view carries extra key attributes.
    pub fn has_extras(&self) -> bool {
        !self.extras.is_empty()
    }
}

/// One product term of an output aggregate, lowered for execution.
#[derive(Debug, Clone)]
pub struct TermPlan {
    /// Slot of this term in the per-depth partial-product registers.
    pub slot: usize,
    /// Index of the term's local expression in [`GroupPlan::local_exprs`].
    pub local_expr: usize,
    /// References to aggregates of incoming views *with* extra keys,
    /// multiplied in the innermost combination loop.
    pub extra_refs: Vec<(usize, usize)>,
    /// Distinct incoming-plan indices appearing in `extra_refs` (the views
    /// whose entry lists the innermost loop iterates over).
    pub extra_views: Vec<usize>,
    /// Factors over attributes that are not columns of the scanned relation,
    /// evaluated against the current entry combination (plus bound values).
    pub extra_factors: Vec<ScalarFunction>,
}

/// An output aggregate: the terms contributing to one aggregate of a view.
#[derive(Debug, Clone)]
pub struct AggregatePlan {
    /// Index of the aggregate within the output view.
    pub index: usize,
    /// The lowered terms.
    pub terms: Vec<TermPlan>,
}

/// Plan for one output view of the group.
#[derive(Debug, Clone)]
pub struct OutputPlan {
    /// The view being produced.
    pub view: ViewId,
    /// Group-by attributes in the view's canonical order.
    pub key_attrs: Vec<AttrId>,
    /// Where each key component comes from.
    pub key_sources: Vec<KeySource>,
    /// True if any key component is a non-join relation column (per-row path).
    pub needs_row_loop: bool,
    /// The aggregates to compute.
    pub aggregates: Vec<AggregatePlan>,
}

/// A register update applied at a given depth of the attribute order.
#[derive(Debug, Clone)]
pub enum DepthUpdate {
    /// Multiply `slot` by a factor evaluated on the bound join-attribute
    /// values.
    Factor {
        /// Register slot to update.
        slot: usize,
        /// The factor; its attributes are all bound at this depth.
        factor: ScalarFunction,
    },
    /// Multiply `slot` by aggregate `agg` of incoming view `incoming`
    /// (which has no extra keys and was probed at this depth).
    ScalarView {
        /// Register slot to update.
        slot: usize,
        /// Index into [`GroupPlan::incoming`].
        incoming: usize,
        /// Aggregate index within the incoming view.
        agg: usize,
    },
    /// Multiply `slot` by a constant (applied at depth 0).
    Constant {
        /// Register slot to update.
        slot: usize,
        /// The constant.
        value: f64,
    },
}

/// A local expression: a product of factors over non-join columns of the
/// scanned relation, summed over the rows of the innermost range. The empty
/// product is the tuple count.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalExpr {
    /// The factors of the product (possibly empty = COUNT).
    pub factors: Vec<ScalarFunction>,
}

/// The physical plan of one view group.
#[derive(Debug, Clone)]
pub struct GroupPlan {
    /// The join-tree node whose relation the group scans.
    pub node: usize,
    /// Name of the scanned relation.
    pub relation: String,
    /// Column positions of the attribute order within the scanned relation.
    pub attr_order_cols: Vec<usize>,
    /// The attribute order (join attributes, ascending domain size).
    pub attr_order: Vec<AttrId>,
    /// Incoming views consumed by the group.
    pub incoming: Vec<IncomingPlan>,
    /// Output views produced by the group.
    pub outputs: Vec<OutputPlan>,
    /// Deduplicated local expressions.
    pub local_exprs: Vec<LocalExpr>,
    /// Register updates per depth (`programs[d]` applies when the `d`-th
    /// attribute gets bound; `programs[0]` applies once before the scan).
    pub programs: Vec<Vec<DepthUpdate>>,
    /// Total number of term slots.
    pub num_slots: usize,
}

impl GroupPlan {
    /// Number of trie levels of the scan.
    pub fn depth(&self) -> usize {
        self.attr_order.len()
    }
}

/// Computes the attribute order of a node: its join attributes (attributes
/// shared with any neighbor), ordered by ascending domain size in the node's
/// relation (Section 3.5 "join attribute order").
pub fn attribute_order(db: &Database, tree: &JoinTree, node: usize) -> Vec<AttrId> {
    let name = &tree.node(node).relation;
    let mut attrs = tree.node_join_attrs(node);
    attrs.sort_by_key(|a| db.domain_size(name, *a));
    attrs
}

/// Sorts every relation of the database by its node's attribute order so
/// trie scans are valid. Must be called once before execution.
pub fn prepare_database(db: &mut Database, tree: &JoinTree) {
    for node in 0..tree.num_nodes() {
        let order = attribute_order(db, tree, node);
        let name = tree.node(node).relation.clone();
        if let Ok(rel) = db.relation_mut(&name) {
            rel.sort_by_attrs(&order);
        }
    }
}

/// Builds the physical plan of a view group.
pub fn build_group_plan(
    db: &Database,
    tree: &JoinTree,
    catalog: &ViewCatalog,
    group: &ViewGroup,
) -> Result<GroupPlan, EngineError> {
    let node = group.node;
    let relation_name = tree.node(node).relation.clone();
    let relation = db
        .relation(&relation_name)
        .map_err(|_| EngineError::UnknownRelation(relation_name.clone()))?;

    let attr_order = attribute_order(db, tree, node);
    let attr_order_cols: Vec<usize> = attr_order
        .iter()
        .map(|a| {
            relation.position(*a).ok_or_else(|| {
                EngineError::InvalidPlan(format!(
                    "join attribute {a:?} is not a column of relation `{relation_name}`"
                ))
            })
        })
        .collect::<Result<_, _>>()?;

    let mut plan = GroupPlan {
        node,
        relation: relation_name,
        attr_order_cols,
        attr_order: attr_order.clone(),
        incoming: Vec::new(),
        outputs: Vec::new(),
        local_exprs: Vec::new(),
        programs: vec![Vec::new(); attr_order.len() + 1],
        num_slots: 0,
    };

    // Collect the distinct incoming views across all views of the group.
    let mut incoming_ids: Vec<ViewId> = Vec::new();
    for &v in &group.views {
        for dep in catalog.view(v).dependencies() {
            if !incoming_ids.contains(&dep) {
                incoming_ids.push(dep);
            }
        }
    }
    for &vid in &incoming_ids {
        plan.incoming.push(build_incoming_plan(
            catalog.view(vid),
            relation,
            &attr_order,
        ));
    }

    // Lower every output view.
    for &vid in &group.views {
        let def = catalog.view(vid);
        let output = lower_output(
            def,
            relation,
            &attr_order,
            &incoming_ids,
            catalog,
            &mut plan,
        );
        plan.outputs.push(output);
    }

    Ok(plan)
}

fn build_incoming_plan(def: &ViewDef, relation: &Relation, attr_order: &[AttrId]) -> IncomingPlan {
    let mut bound = Vec::new();
    let mut bound_positions = Vec::new();
    let mut extras = Vec::new();
    for (pos, &attr) in def.group_by.iter().enumerate() {
        match relation.position(attr) {
            Some(col) => {
                bound.push((attr, col));
                bound_positions.push(pos);
            }
            None => extras.push((attr, pos)),
        }
    }
    let probe_depth = bound
        .iter()
        .map(|(a, _)| {
            attr_order
                .iter()
                .position(|x| x == a)
                .map(|p| p + 1)
                // A bound attribute that is not a join attribute of the node
                // can only be resolved per row; treat it as the deepest depth
                // (its value is constant within the innermost range only if it
                // is functionally determined by the join attributes, which
                // holds for the keys produced by the pushdown layer).
                .unwrap_or(attr_order.len())
        })
        .max()
        .unwrap_or(0);
    IncomingPlan {
        view: def.id,
        bound,
        extras,
        bound_positions,
        probe_depth,
    }
}

fn lower_output(
    def: &ViewDef,
    relation: &Relation,
    attr_order: &[AttrId],
    incoming_ids: &[ViewId],
    catalog: &ViewCatalog,
    plan: &mut GroupPlan,
) -> OutputPlan {
    // Key sources.
    let mut key_sources = Vec::with_capacity(def.group_by.len());
    let mut needs_row_loop = false;
    for &attr in &def.group_by {
        if let Some(depth) = attr_order.iter().position(|a| *a == attr) {
            key_sources.push(KeySource::BoundDepth(depth));
        } else if let Some(col) = relation.position(attr) {
            key_sources.push(KeySource::RowColumn(col));
            needs_row_loop = true;
        } else {
            key_sources.push(KeySource::Extra(attr));
        }
    }

    let mut aggregates = Vec::with_capacity(def.aggregates.len());
    for (agg_idx, agg) in def.aggregates.iter().enumerate() {
        let mut terms = Vec::with_capacity(agg.terms.len());
        for term in &agg.terms {
            terms.push(lower_term(
                term,
                relation,
                attr_order,
                incoming_ids,
                catalog,
                plan,
            ));
        }
        aggregates.push(AggregatePlan {
            index: agg_idx,
            terms,
        });
    }

    OutputPlan {
        view: def.id,
        key_attrs: def.group_by.clone(),
        key_sources,
        needs_row_loop,
        aggregates,
    }
}

fn lower_term(
    term: &crate::view::ViewTerm,
    relation: &Relation,
    attr_order: &[AttrId],
    incoming_ids: &[ViewId],
    catalog: &ViewCatalog,
    plan: &mut GroupPlan,
) -> TermPlan {
    let slot = plan.num_slots;
    plan.num_slots += 1;

    if term.constant != 1.0 {
        plan.programs[0].push(DepthUpdate::Constant {
            slot,
            value: term.constant,
        });
    }

    // Classify local factors.
    let mut local_factors: Vec<ScalarFunction> = Vec::new();
    let mut extra_factors: Vec<ScalarFunction> = Vec::new();
    for f in &term.local {
        let attrs = f.attrs();
        let all_in_relation = attrs.iter().all(|a| relation.position(*a).is_some());
        if all_in_relation {
            let depths: Option<Vec<usize>> = attrs
                .iter()
                .map(|a| attr_order.iter().position(|x| x == a))
                .collect();
            match depths {
                Some(ds) if !attrs.is_empty() => {
                    // Factor over join attributes only: registered at the
                    // deepest of the attributes' depths.
                    let depth = ds.into_iter().max().unwrap() + 1;
                    plan.programs[depth].push(DepthUpdate::Factor {
                        slot,
                        factor: f.clone(),
                    });
                }
                _ => local_factors.push(f.clone()),
            }
        } else {
            extra_factors.push(f.clone());
        }
    }

    // Local expression (deduplicated across the whole group).
    let local_expr = intern_local_expr(
        plan,
        LocalExpr {
            factors: local_factors,
        },
    );

    // Child references.
    let mut extra_refs = Vec::new();
    let mut extra_views = Vec::new();
    for &(child, agg_idx) in &term.child_refs {
        let incoming_idx = incoming_ids
            .iter()
            .position(|v| *v == child)
            .expect("child view must be an incoming view of the group");
        let child_def = catalog.view(child);
        let has_extras = child_def
            .group_by
            .iter()
            .any(|a| relation.position(*a).is_none());
        if has_extras {
            extra_refs.push((incoming_idx, agg_idx));
            if !extra_views.contains(&incoming_idx) {
                extra_views.push(incoming_idx);
            }
        } else {
            let depth = plan.incoming[incoming_idx].probe_depth;
            plan.programs[depth].push(DepthUpdate::ScalarView {
                slot,
                incoming: incoming_idx,
                agg: agg_idx,
            });
        }
    }

    TermPlan {
        slot,
        local_expr,
        extra_refs,
        extra_views,
        extra_factors,
    }
}

fn intern_local_expr(plan: &mut GroupPlan, expr: LocalExpr) -> usize {
    if let Some(idx) = plan.local_exprs.iter().position(|e| *e == expr) {
        return idx;
    }
    plan.local_exprs.push(expr);
    plan.local_exprs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::group::group_views;
    use crate::pushdown::push_down_batch;
    use crate::roots::assign_roots;
    use lmfao_data::{AttrType, DatabaseSchema, RelationSchema, Value};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let store = schema.attr_id("store").unwrap();
        let item = schema.attr_id("item").unwrap();
        let units = schema.attr_id("units").unwrap();
        let price = schema.attr_id("price").unwrap();
        let sales = lmfao_data::Relation::from_rows(
            RelationSchema::new("Sales", vec![store, item, units]),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(1), Value::Int(2), Value::Double(4.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
            ],
        )
        .unwrap();
        let items = lmfao_data::Relation::from_rows(
            RelationSchema::new("Items", vec![item, price]),
            vec![
                vec![Value::Int(1), Value::Double(10.0)],
                vec![Value::Int(2), Value::Double(20.0)],
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    fn plans_for(batch: &QueryBatch, db: &mut Database, tree: &JoinTree) -> Vec<GroupPlan> {
        let cfg = EngineConfig::default();
        let roots = assign_roots(batch, tree, db, &cfg);
        let pd = push_down_batch(batch, tree, &roots);
        let grouping = group_views(&pd.catalog, true);
        prepare_database(db, tree);
        grouping
            .groups
            .iter()
            .map(|g| build_group_plan(db, tree, &pd.catalog, g).unwrap())
            .collect()
    }

    #[test]
    fn attribute_order_is_ascending_domain_size() {
        let (mut db, tree) = db_and_tree();
        prepare_database(&mut db, &tree);
        let sales = tree.node_of_relation("Sales").unwrap();
        let order = attribute_order(&db, &tree, sales);
        // Only `item` is a join attribute of Sales in this two-relation schema.
        assert_eq!(order.len(), 1);
        assert_eq!(db.schema().attr_name(order[0]), "item");
        // Relation is sorted accordingly.
        let rel = db.relation("Sales").unwrap();
        let item_col = rel.position(order[0]).unwrap();
        assert!(rel.is_sorted_by(&[item_col]));
    }

    #[test]
    fn covar_style_plan_has_shared_local_exprs() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_units", vec![], vec![Aggregate::sum(units)]);
        batch.push("sum_units_sq", vec![], vec![Aggregate::sum_square(units)]);
        batch.push(
            "sum_units_price",
            vec![],
            vec![Aggregate::sum_product(units, price)],
        );
        let plans = plans_for(&batch, &mut db, &tree);
        // The Sales-rooted group computes all four queries in one scan.
        let sales_plan = plans
            .iter()
            .find(|p| {
                p.relation == "Sales"
                    && !p.outputs.is_empty()
                    && p.outputs.iter().any(|o| o.key_attrs.is_empty())
            })
            .expect("sales output group");
        // Local expressions: count (empty), units, units^2 — deduplicated.
        assert!(sales_plan.local_exprs.len() <= 4);
        assert!(sales_plan.local_exprs.iter().any(|e| e.factors.is_empty()));
        // Slots: one per term across outputs.
        assert!(sales_plan.num_slots >= 4);
    }

    #[test]
    fn incoming_view_without_extras_registers_at_probe_depth() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("q", vec![], vec![Aggregate::sum_product(units, price)]);
        let plans = plans_for(&batch, &mut db, &tree);
        let root_plan = plans
            .iter()
            .find(|p| p.outputs.iter().any(|o| o.key_attrs.is_empty()))
            .unwrap();
        assert_eq!(root_plan.incoming.len(), 1);
        let inc = &root_plan.incoming[0];
        assert!(!inc.has_extras());
        // Items view is keyed by `item`, the single join attribute → depth 1.
        assert_eq!(inc.probe_depth, 1);
        // The program at depth 1 multiplies the slot by the probed aggregate.
        assert!(root_plan.programs[1]
            .iter()
            .any(|u| matches!(u, DepthUpdate::ScalarView { .. })));
    }

    #[test]
    fn group_by_on_dimension_attr_yields_extra_key_source() {
        let (mut db, tree) = db_and_tree();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        // Group by price (an Items attribute); force root to Sales by keeping
        // multi_root on: price only lives in Items so the root will be Items
        // and no extra key arises. Use single-root=Sales instead.
        batch.push("by_price", vec![price], vec![Aggregate::count()]);
        batch.push("count", vec![], vec![Aggregate::count()]);
        let cfg = EngineConfig {
            multi_root: false,
            ..EngineConfig::default()
        };
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let pd = push_down_batch(&batch, &tree, &roots);
        let grouping = group_views(&pd.catalog, true);
        prepare_database(&mut db, &tree);
        let plans: Vec<GroupPlan> = grouping
            .groups
            .iter()
            .map(|g| build_group_plan(&db, &tree, &pd.catalog, g).unwrap())
            .collect();
        // If the shared root is Sales, the by_price output at Sales must read
        // its key from the incoming Items view (Extra source).
        let sales = tree.node_of_relation("Sales").unwrap();
        if roots.root_of(0) == sales {
            let has_extra_key = plans.iter().any(|p| {
                p.outputs.iter().any(|o| {
                    o.key_sources
                        .iter()
                        .any(|k| matches!(k, KeySource::Extra(a) if *a == price))
                })
            });
            assert!(has_extra_key);
        }
    }

    #[test]
    fn row_column_keys_are_detected() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let mut batch = QueryBatch::new();
        // Group by a non-join attribute of Sales.
        batch.push("by_units", vec![units], vec![Aggregate::count()]);
        let plans = plans_for(&batch, &mut db, &tree);
        let found = plans.iter().any(|p| {
            p.outputs.iter().any(|o| {
                o.needs_row_loop
                    && o.key_sources
                        .iter()
                        .any(|k| matches!(k, KeySource::RowColumn(_)))
            })
        });
        assert!(found);
    }

    #[test]
    fn prepare_database_sorts_all_nodes() {
        let (mut db, tree) = db_and_tree();
        prepare_database(&mut db, &tree);
        for node in 0..tree.num_nodes() {
            let name = &tree.node(node).relation;
            let order = attribute_order(&db, &tree, node);
            let rel = db.relation(name).unwrap();
            let cols: Vec<usize> = order.iter().map(|a| rel.position(*a).unwrap()).collect();
            assert!(rel.is_sorted_by(&cols));
        }
    }
}
