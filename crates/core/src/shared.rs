//! A shared, immutable handle to a prepared database.
//!
//! The engine needs its relations sorted by the attribute orders of their
//! join-tree nodes before any trie scan can run. That preparation mutates the
//! database once; afterwards everything the engine does is read-only. A
//! [`SharedDatabase`] captures exactly that lifecycle: [`SharedDatabase::prepare`]
//! sorts and freezes the database behind an `Arc`, and every engine,
//! [`crate::prepared::PreparedBatch`] and worker thread afterwards shares the
//! same storage. Cloning a handle is a reference-count bump, not a copy of the
//! relations — which is what lets the ablation ladder build five engines (and
//! a serving process keep thousands of prepared batches) over one database.

use crate::plan::prepare_database;
use lmfao_data::Database;
use lmfao_jointree::JoinTree;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted database prepared for trie scans.
///
/// Obtained from [`SharedDatabase::prepare`]; cheap to clone and safe to share
/// across threads. Dereferences to [`Database`] for read access.
#[derive(Debug, Clone)]
pub struct SharedDatabase {
    db: Arc<Database>,
}

impl SharedDatabase {
    /// Refreshes statistics, sorts every relation by its join-tree node's
    /// attribute order (the precondition of the trie scans) and freezes the
    /// result behind an `Arc`.
    ///
    /// The attribute orders depend only on the join tree and the data — not on
    /// any [`crate::config::EngineConfig`] — so one prepared database serves
    /// engines of every configuration.
    pub fn prepare(mut db: Database, tree: &JoinTree) -> Self {
        db.recompute_statistics();
        prepare_database(&mut db, tree);
        SharedDatabase { db: Arc::new(db) }
    }

    /// The underlying database (sorted by join attributes).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// True if both handles point at the same underlying storage.
    pub fn same_storage(a: &SharedDatabase, b: &SharedDatabase) -> bool {
        Arc::ptr_eq(&a.db, &b.db)
    }
}

impl Deref for SharedDatabase {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::attribute_order;
    use lmfao_data::{AttrType, DatabaseSchema, Relation, RelationSchema, Value};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int), ("b", AttrType::Int)]);
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("c", AttrType::Int)]);
        let a = schema.attr_id("a").unwrap();
        let b = schema.attr_id("b").unwrap();
        let c = schema.attr_id("c").unwrap();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![a, b]),
            (0..10)
                .rev()
                .map(|i| vec![Value::Int(i), Value::Int(i % 3)])
                .collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![b, c]),
            (0..3)
                .rev()
                .map(|i| vec![Value::Int(i), Value::Int(10 * i)])
                .collect(),
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    #[test]
    fn prepare_sorts_every_relation_by_its_attribute_order() {
        let (db, tree) = db_and_tree();
        let shared = SharedDatabase::prepare(db, &tree);
        for node in 0..tree.num_nodes() {
            let name = &tree.node(node).relation;
            let order = attribute_order(&shared, &tree, node);
            let rel = shared.relation(name).unwrap();
            let cols: Vec<usize> = order.iter().map(|x| rel.position(*x).unwrap()).collect();
            assert!(rel.is_sorted_by(&cols), "{name} not sorted");
        }
    }

    #[test]
    fn clones_share_storage() {
        let (db, tree) = db_and_tree();
        let shared = SharedDatabase::prepare(db, &tree);
        let other = shared.clone();
        assert!(SharedDatabase::same_storage(&shared, &other));
        assert_eq!(shared.relation("R").unwrap().len(), 10);
    }
}
