//! Execution of multi-output group plans.
//!
//! One call to [`execute_group`] computes *all* views of a group in a single
//! scan of the group's relation, following the plan built by [`crate::plan`]:
//! a multi-way nested loop over the attribute order (one loop per join
//! attribute, implemented over the sorted relation's trie ranges), with
//! per-depth partial-product registers, lookups into incoming views at the
//! depth where their keys are bound, shared local expressions summed once per
//! innermost range, and inner loops over the matching entries of incoming
//! views that carry extra key attributes. This mirrors the specialized C++
//! code the paper generates (Figure 4), expressed as a register program
//! instead of generated source.

use crate::error::EngineError;
use crate::plan::{DepthUpdate, GroupPlan, IncomingPlan, KeySource, OutputPlan, TermPlan};
use crate::view::{ComputedView, ViewId, ViewSource};
use lmfao_data::{AttrId, Column, Database, FxHashMap, Relation, TrieScan, Value};
use lmfao_expr::{CmpOp, DynamicRegistry, ScalarFunction};
use std::cmp::Ordering;
use std::ops::Range;

/// Entries of an indexed incoming view: extra key values plus payload.
type IndexedEntries = Vec<(Vec<Value>, Vec<f64>)>;

/// An incoming view's entries re-indexed by the bound part of its key.
type BoundIndex = FxHashMap<Vec<Value>, IndexedEntries>;

/// Runtime representation of an incoming view.
enum IncomingData<'a> {
    /// The view has no extra key attributes: probe its result directly.
    Direct(&'a ComputedView),
    /// The view carries extra key attributes: its entries are re-indexed by
    /// the bound part of the key; each entry holds the extra key values and
    /// the aggregate payload.
    Indexed(BoundIndex),
}

/// Evaluates a scalar function under an attribute-value lookup, routing
/// dynamic functions through the registry.
#[inline]
fn eval_factor<F>(f: &ScalarFunction, lookup: &F, dynamics: &DynamicRegistry) -> f64
where
    F: Fn(AttrId) -> Value,
{
    match f {
        ScalarFunction::Dynamic { id, attrs } => {
            let args: Vec<Value> = attrs.iter().map(|&a| lookup(a)).collect();
            dynamics.evaluate(*id, &args)
        }
        other => other.evaluate(lookup),
    }
}

/// A local-expression factor lowered against the scanned relation's typed
/// columns. The innermost loops of the scan evaluate these directly on native
/// slices — no [`Value`] is materialized per tuple. Every fast variant is
/// bit-for-bit equivalent to evaluating the original [`ScalarFunction`]
/// through the generic `Value` lookup (float comparisons use
/// [`f64::total_cmp`], exactly like `Value::Double`'s total order); factors
/// that do not fit a typed shape (dynamic functions, cross-variant indicator
/// thresholds, attributes stored in [`Column::Mixed`]) keep the generic path
/// via [`FastFactor::Slow`].
enum FastFactor<'a> {
    /// `X` over a float column.
    FloatIdent(&'a [f64]),
    /// `X` over an int column.
    IntIdent(&'a [i64]),
    /// `X^a` over a float column.
    FloatPow(&'a [f64], i32),
    /// `X^a` over an int column.
    IntPow(&'a [i64], i32),
    /// `1[X op t]` over a float column with a double threshold.
    FloatCmp(&'a [f64], CmpOp, f64),
    /// `1[X op t]` over an int column with an int threshold.
    IntCmp(&'a [i64], CmpOp, i64),
    /// `1[X op t]` over a dictionary column with a categorical threshold.
    DictCmp(&'a [u32], CmpOp, u32),
    /// Fallback: generic evaluation through the `Value` lookup.
    Slow(&'a ScalarFunction),
}

impl FastFactor<'_> {
    /// Whether the factor has a typed chunked kernel ([`run_kernel`]); only
    /// [`FastFactor::Slow`] is excluded and keeps the per-row generic path.
    fn is_kernel(&self) -> bool {
        !matches!(self, FastFactor::Slow(_))
    }

    /// Whether the factor is a 0/1 selection mask. A mask's product
    /// contribution is exactly `0.0` or `1.0`, so multiplying it in at any
    /// position of the factor product is bit-exact — compilation hoists
    /// masks to the front of each program, letting the fused kernels skip
    /// value-factor work on rows the masks reject.
    fn is_mask(&self) -> bool {
        matches!(
            self,
            FastFactor::FloatCmp(..) | FastFactor::IntCmp(..) | FastFactor::DictCmp(..)
        )
    }
}

/// Rows per kernel chunk: the stack buffer the fused kernels write through.
/// 1024 doubles (8 KiB) stay comfortably in L1 while amortizing the
/// per-chunk dispatch to nothing.
const KERNEL_CHUNK: usize = 1024;

/// Fills the chunk with a 0/1 selection mask: `out[i] = pred(v[i])`.
#[inline]
fn mask_fill<T: Copy>(v: &[T], out: &mut [f64], pred: impl Fn(T) -> bool) {
    for (o, &x) in out.iter_mut().zip(v) {
        *o = pred(x) as u32 as f64;
    }
}

/// Multiplies a 0/1 selection mask into the chunk: `out[i] *= pred(v[i])`.
/// Branchless, exactly like the row-at-a-time `prod *= indicator`.
#[inline]
fn mask_product<T: Copy>(v: &[T], out: &mut [f64], pred: impl Fn(T) -> bool) {
    for (o, &x) in out.iter_mut().zip(v) {
        *o *= pred(x) as u32 as f64;
    }
}

/// Lowers one comparison factor to a selection-mask kernel. The `op` match
/// sits outside the loops (manual loop unswitching), so each arm is a tight
/// branch-free loop over the typed slice; the comparison itself is the
/// column's native total order — the same order the generic path uses.
#[inline]
fn cmp_kernel<T: Copy>(
    v: &[T],
    op: CmpOp,
    out: &mut [f64],
    first: bool,
    cmp: impl Fn(T) -> Ordering + Copy,
) {
    #[inline]
    fn go<T: Copy>(v: &[T], out: &mut [f64], first: bool, pred: impl Fn(T) -> bool) {
        if first {
            mask_fill(v, out, pred);
        } else {
            mask_product(v, out, pred);
        }
    }
    match op {
        CmpOp::Lt => go(v, out, first, |x| cmp(x) == Ordering::Less),
        CmpOp::Le => go(v, out, first, |x| cmp(x) != Ordering::Greater),
        CmpOp::Gt => go(v, out, first, |x| cmp(x) == Ordering::Greater),
        CmpOp::Ge => go(v, out, first, |x| cmp(x) != Ordering::Less),
        CmpOp::Eq => go(v, out, first, |x| cmp(x) == Ordering::Equal),
        CmpOp::Ne => go(v, out, first, |x| cmp(x) != Ordering::Equal),
    }
}

/// Runs one factor's chunk kernel for rows `start..start + out.len()`:
/// the first factor of a product *fills* the buffer, later factors
/// *multiply* into it. Every loop is over typed slices with no per-row
/// dispatch — the shapes LLVM autovectorizes.
fn run_kernel(f: &FastFactor<'_>, start: usize, out: &mut [f64], first: bool) {
    let n = out.len();
    match f {
        FastFactor::FloatIdent(v) => {
            let v = &v[start..start + n];
            if first {
                out.copy_from_slice(v);
            } else {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o *= x;
                }
            }
        }
        FastFactor::IntIdent(v) => {
            let v = &v[start..start + n];
            if first {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o = x as f64;
                }
            } else {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o *= x as f64;
                }
            }
        }
        FastFactor::FloatPow(v, e) => {
            let v = &v[start..start + n];
            if first {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o = x.powi(*e);
                }
            } else {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o *= x.powi(*e);
                }
            }
        }
        FastFactor::IntPow(v, e) => {
            let v = &v[start..start + n];
            if first {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o = (x as f64).powi(*e);
                }
            } else {
                for (o, &x) in out.iter_mut().zip(v) {
                    *o *= (x as f64).powi(*e);
                }
            }
        }
        FastFactor::FloatCmp(v, op, t) => {
            let t = *t;
            cmp_kernel(&v[start..start + n], *op, out, first, move |x: f64| {
                x.total_cmp(&t)
            });
        }
        FastFactor::IntCmp(v, op, t) => {
            let t = *t;
            cmp_kernel(&v[start..start + n], *op, out, first, move |x: i64| {
                x.cmp(&t)
            });
        }
        FastFactor::DictCmp(v, op, t) => {
            let t = *t;
            cmp_kernel(&v[start..start + n], *op, out, first, move |x: u32| {
                x.cmp(&t)
            });
        }
        FastFactor::Slow(_) => unreachable!("slow factors take the per-row path"),
    }
}

/// Evaluates one kernel factor at a single row — the scalar twin of
/// [`run_kernel`], used on sparse chunks where the selection masks rejected
/// most rows. Produces bit-identical values to the dense kernels.
#[inline]
fn kernel_value_at(f: &FastFactor<'_>, row: usize) -> f64 {
    match f {
        FastFactor::FloatIdent(v) => v[row],
        FastFactor::IntIdent(v) => v[row] as f64,
        FastFactor::FloatPow(v, e) => v[row].powi(*e),
        FastFactor::IntPow(v, e) => (v[row] as f64).powi(*e),
        FastFactor::FloatCmp(v, op, t) => cmp_holds(*op, v[row].total_cmp(t)) as u32 as f64,
        FastFactor::IntCmp(v, op, t) => cmp_holds(*op, v[row].cmp(t)) as u32 as f64,
        FastFactor::DictCmp(v, op, t) => cmp_holds(*op, v[row].cmp(t)) as u32 as f64,
        FastFactor::Slow(_) => unreachable!("slow factors take the per-row path"),
    }
}

/// Below `1/SPARSE_DENOM` of a chunk surviving the selection masks, the
/// value factors switch from dense kernels to a per-survivor scalar loop —
/// the vectorized kernels only win while they touch at least a quarter of
/// the rows they load.
const SPARSE_DENOM: usize = 4;

/// Ranges shorter than this keep the per-row loop: the fixed per-call cost
/// of the chunk machinery (kernel dispatch per factor, lane reduction) beats
/// its vector win on the tiny innermost trie ranges high-cardinality join
/// keys produce, where the scan visits millions of ranges of a few rows.
const SMALL_RANGE: usize = 32;

/// Applies the value factors of a program to the surviving rows of a chunk
/// whose selection-mask product is already materialized in `chunk` (exactly
/// `0.0`/`1.0` per row). Dense chunks multiply full kernels through; sparse
/// chunks walk only the survivors. Either way every surviving row ends up
/// holding the same bit-exact factor product (`1.0 * v_1 * … * v_k`), and
/// rejected rows stay zero.
#[inline]
fn apply_value_factors(
    values: &[FastFactor<'_>],
    start: usize,
    chunk: &mut [f64],
    survivors: usize,
) {
    if survivors * SPARSE_DENOM < chunk.len() {
        for (i, slot) in chunk.iter_mut().enumerate() {
            if *slot != 0.0 {
                for f in values {
                    *slot *= kernel_value_at(f, start + i);
                }
            }
        }
    } else {
        for f in values {
            run_kernel(f, start, chunk, false);
        }
    }
}

/// Sums a chunk through four independent accumulator lanes so the reduction
/// has no loop-carried dependency chain of length n. The lane combination
/// order is fixed, so the result is deterministic (and exact whenever the
/// addends are integer-valued within 2⁵³).
fn sum_lanes(v: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut quads = v.chunks_exact(4);
    for q in &mut quads {
        lanes[0] += q[0];
        lanes[1] += q[1];
        lanes[2] += q[2];
        lanes[3] += q[3];
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &x in quads.remainder() {
        acc += x;
    }
    acc
}

/// [`sum_lanes`] over an int column slice, converting per element — the
/// no-copy path for `SUM(X)` local expressions over int columns.
fn sum_lanes_i64(v: &[i64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut quads = v.chunks_exact(4);
    for q in &mut quads {
        lanes[0] += q[0] as f64;
        lanes[1] += q[1] as f64;
        lanes[2] += q[2] as f64;
        lanes[3] += q[3] as f64;
    }
    let mut acc = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &x in quads.remainder() {
        acc += x as f64;
    }
    acc
}

/// Chunked reduction of a fused factor product over `range`: each
/// [`KERNEL_CHUNK`]-row block is materialized into a stack buffer (first
/// factor fills, later factors multiply — comparisons as 0/1 selection
/// masks) and reduced lane-wise. Requires every factor to pass
/// [`FastFactor::is_kernel`].
fn fused_product_sum(factors: &[FastFactor<'_>], range: Range<usize>) -> f64 {
    debug_assert!(!factors.is_empty());
    let n_masks = factors.iter().take_while(|f| f.is_mask()).count();
    let values = &factors[n_masks..];
    let mut acc = 0.0;
    let mut buf = [0.0f64; KERNEL_CHUNK];
    let mut start = range.start;
    while start < range.end {
        let n = KERNEL_CHUNK.min(range.end - start);
        let chunk = &mut buf[..n];
        run_kernel(&factors[0], start, chunk, true);
        if n_masks == 0 {
            // No selection: the whole program is dense value kernels.
            for f in &factors[1..] {
                run_kernel(f, start, chunk, false);
            }
            acc += sum_lanes(chunk);
            start += n;
            continue;
        }
        for f in &factors[1..n_masks] {
            run_kernel(f, start, chunk, false);
        }
        // The mask product is exactly 0/1 per row, so its lane sum is the
        // exact survivor count — rows the old per-row loop would have
        // abandoned at the first zero indicator.
        let survivors = sum_lanes(chunk) as usize;
        if survivors == 0 || values.is_empty() {
            acc += survivors as f64;
            start += n;
            continue;
        }
        apply_value_factors(values, start, chunk, survivors);
        acc += sum_lanes(chunk);
        start += n;
    }
    acc
}

/// Whether `op` holds for an ordering produced by the column's native total
/// order (the same order [`Value`] comparisons use).
#[inline]
fn cmp_holds(op: CmpOp, ord: Ordering) -> bool {
    match op {
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
    }
}

/// Lowers one factor against the relation's columns, falling back to the
/// generic path when the factor shape or the column type does not allow a
/// typed loop.
fn compile_factor<'a>(
    factor: &'a ScalarFunction,
    relation: &'a Relation,
    col_of_attr: &[usize],
) -> FastFactor<'a> {
    let column = |a: AttrId| {
        let col = col_of_attr[a.index()];
        if col == usize::MAX {
            None
        } else {
            Some(relation.column(col))
        }
    };
    match factor {
        ScalarFunction::Identity(a) => match column(*a) {
            Some(Column::Float(v)) => FastFactor::FloatIdent(v),
            Some(Column::Int(v)) => FastFactor::IntIdent(v),
            _ => FastFactor::Slow(factor),
        },
        ScalarFunction::Power { attr, exponent } => match column(*attr) {
            Some(Column::Float(v)) => FastFactor::FloatPow(v, *exponent as i32),
            Some(Column::Int(v)) => FastFactor::IntPow(v, *exponent as i32),
            _ => FastFactor::Slow(factor),
        },
        ScalarFunction::Indicator {
            attr,
            op,
            threshold,
        } => match (column(*attr), threshold) {
            (Some(Column::Float(v)), Value::Double(t)) => FastFactor::FloatCmp(v, *op, *t),
            (Some(Column::Int(v)), Value::Int(t)) => FastFactor::IntCmp(v, *op, *t),
            (Some(Column::Dict { codes, .. }), Value::Cat(t)) => {
                FastFactor::DictCmp(codes, *op, *t)
            }
            _ => FastFactor::Slow(factor),
        },
        other => FastFactor::Slow(other),
    }
}

/// Evaluates a lowered factor at `row`.
#[inline]
fn eval_fast(f: &FastFactor<'_>, ctx: &Ctx<'_>, row: usize) -> f64 {
    match f {
        FastFactor::FloatIdent(v) => v[row],
        FastFactor::IntIdent(v) => v[row] as f64,
        FastFactor::FloatPow(v, e) => v[row].powi(*e),
        FastFactor::IntPow(v, e) => (v[row] as f64).powi(*e),
        FastFactor::FloatCmp(v, op, t) => {
            if cmp_holds(*op, v[row].total_cmp(t)) {
                1.0
            } else {
                0.0
            }
        }
        FastFactor::IntCmp(v, op, t) => {
            if cmp_holds(*op, v[row].cmp(t)) {
                1.0
            } else {
                0.0
            }
        }
        FastFactor::DictCmp(v, op, t) => {
            if cmp_holds(*op, v[row].cmp(t)) {
                1.0
            } else {
                0.0
            }
        }
        FastFactor::Slow(sf) => {
            let relation = ctx.relation;
            let col_of_attr = &ctx.col_of_attr;
            let lookup = |a: AttrId| {
                let col = col_of_attr[a.index()];
                if col == usize::MAX {
                    Value::Null
                } else {
                    relation.value(row, col)
                }
            };
            eval_factor(sf, &lookup, ctx.dynamics)
        }
    }
}

/// Immutable execution context shared across the recursion.
struct Ctx<'a> {
    plan: &'a GroupPlan,
    relation: &'a Relation,
    trie: TrieScan<'a>,
    dynamics: &'a DynamicRegistry,
    incoming: &'a [IncomingData<'a>],
    /// Column position of each attribute in the scanned relation (`usize::MAX`
    /// when the attribute is not a column of it).
    col_of_attr: Vec<usize>,
    /// The group's local expressions with every factor lowered against the
    /// relation's typed columns, in [`GroupPlan::local_exprs`] order.
    local_programs: Vec<Vec<FastFactor<'a>>>,
}

/// Mutable execution state.
struct State<'a> {
    /// Partial-product registers, one vector per depth (0..=depth).
    prefix: Vec<Vec<f64>>,
    /// Values bound at each depth of the attribute order.
    bound: Vec<Value>,
    /// Matching entry lists of indexed incoming views for the current path.
    probed: Vec<Option<&'a IndexedEntries>>,
    /// Per-local-expression sums for the current innermost range.
    local_sums: Vec<f64>,
    /// Accumulated outputs, one per output plan.
    outputs: Vec<ComputedView>,
    /// Running totals for scalar outputs (no group-by attributes): these are
    /// accumulated in plain registers and written to the output map once at
    /// the end of the scan, avoiding a hash probe per innermost binding.
    scalar_acc: Vec<Vec<f64>>,
}

/// Executes a group plan over (a partition of) its relation, returning one
/// computed view per output plan. Partitions may split arbitrary row ranges:
/// results of different partitions merge by element-wise addition because all
/// aggregates are sums over the scanned tuples.
pub fn execute_group<V: ViewSource>(
    db: &Database,
    plan: &GroupPlan,
    computed: &V,
    dynamics: &DynamicRegistry,
    partition: Option<Range<usize>>,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    let relation = db
        .relation(&plan.relation)
        .map_err(|_| EngineError::UnknownRelation(plan.relation.clone()))?;
    execute_group_scan(
        relation,
        db.schema().num_attributes(),
        plan,
        computed,
        dynamics,
        partition,
        None,
    )
}

/// The restartable core of [`execute_group`]: runs a group plan over an
/// explicit relation — the plan's base relation, or a *delta partition* of it
/// (the sorted insert/delete rows of a [`lmfao_data::TableDelta`]) — and an
/// optional per-slot mask.
///
/// `slot_mask`, when given, zeroes the partial-product register of every term
/// slot whose flag is `false` before the scan starts, so those terms emit
/// nothing. The maintenance layer uses this to suppress terms that reference
/// no changed incoming view: when incoming views are overlaid with their
/// signed deltas, only masked-in terms contribute to the output delta, and
/// the all-zero register pruning skips whole subtrees whose probes miss the
/// (small) delta keys.
#[allow(clippy::too_many_arguments)]
pub fn execute_group_scan<V: ViewSource>(
    relation: &Relation,
    num_attributes: usize,
    plan: &GroupPlan,
    computed: &V,
    dynamics: &DynamicRegistry,
    partition: Option<Range<usize>>,
    slot_mask: Option<&[bool]>,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    let incoming: Vec<IncomingData> = plan
        .incoming
        .iter()
        .map(|inc| prepare_incoming(inc, computed))
        .collect::<Result<_, _>>()?;

    let mut col_of_attr = vec![usize::MAX; num_attributes];
    for (pos, &attr) in relation.schema().attrs.iter().enumerate() {
        col_of_attr[attr.index()] = pos;
    }

    // Lower every local-expression factor against the typed columns once per
    // scan; the innermost loops then run on native slices. Selection masks
    // are hoisted to the front of each program (stable, so each class keeps
    // its source order): their product is exactly 0/1, so the move is
    // bit-exact, and the fused kernels use the materialized mask to skip
    // value-factor work on rejected rows.
    let local_programs: Vec<Vec<FastFactor>> = plan
        .local_exprs
        .iter()
        .map(|e| {
            let mut prog: Vec<FastFactor> = e
                .factors
                .iter()
                .map(|f| compile_factor(f, relation, &col_of_attr))
                .collect();
            prog.sort_by_key(|f| !f.is_mask());
            prog
        })
        .collect();

    let ctx = Ctx {
        plan,
        relation,
        trie: TrieScan::new(relation, plan.attr_order_cols.clone()),
        dynamics,
        incoming: &incoming,
        col_of_attr,
        local_programs,
    };

    let depth = plan.depth();
    let mut state = State {
        prefix: vec![vec![1.0; plan.num_slots]; depth + 1],
        bound: vec![Value::Null; depth],
        probed: vec![None; plan.incoming.len()],
        local_sums: vec![0.0; plan.local_exprs.len()],
        outputs: plan
            .outputs
            .iter()
            .map(|o| ComputedView::new(o.key_attrs.clone(), o.aggregates.len()))
            .collect(),
        scalar_acc: plan
            .outputs
            .iter()
            .map(|o| vec![0.0; o.aggregates.len()])
            .collect(),
    };

    // Depth-0 program: constants and incoming views with no bound keys, then
    // the optional term mask (maintenance zeroes unaffected terms here).
    apply_program(&ctx, &mut state, 0);
    if let Some(mask) = slot_mask {
        debug_assert_eq!(mask.len(), plan.num_slots);
        for (slot, &active) in mask.iter().enumerate() {
            if !active {
                state.prefix[0][slot] = 0.0;
            }
        }
    }
    let range = partition.unwrap_or(0..relation.len());
    if !all_zero(&state.prefix[0]) || plan.num_slots == 0 {
        recurse(&ctx, &mut state, 0, range);
    }

    // Flush the scalar accumulators into their output views.
    for (oi, output) in plan.outputs.iter().enumerate() {
        if output.key_sources.is_empty() && state.scalar_acc[oi].iter().any(|v| *v != 0.0) {
            let acc = state.scalar_acc[oi].clone();
            state.outputs[oi].add(Vec::new(), &acc);
        }
    }

    Ok(plan
        .outputs
        .iter()
        .zip(state.outputs)
        .map(|(o, cv)| (o.view, cv))
        .collect())
}

fn prepare_incoming<'a, V: ViewSource>(
    inc: &IncomingPlan,
    computed: &'a V,
) -> Result<IncomingData<'a>, EngineError> {
    let Some(cv) = computed.view_result(inc.view) else {
        return Err(EngineError::ViewNotComputed(inc.view));
    };
    if !inc.has_extras() {
        return Ok(IncomingData::Direct(cv));
    }
    let mut index: BoundIndex = FxHashMap::default();
    for (key, aggs) in cv.iter() {
        let bound_part: Vec<Value> = inc.bound_positions.iter().map(|&p| key[p]).collect();
        let extra_part: Vec<Value> = inc.extras.iter().map(|&(_, p)| key[p]).collect();
        index
            .entry(bound_part)
            .or_default()
            .push((extra_part, aggs.clone()));
    }
    Ok(IncomingData::Indexed(index))
}

fn all_zero(v: &[f64]) -> bool {
    !v.is_empty() && v.iter().all(|&x| x == 0.0)
}

/// The value of `attr` in the current scan context: a bound join attribute,
/// or a column of the relation read from `row` when available.
#[inline]
fn context_value(ctx: &Ctx<'_>, state: &State<'_>, attr: AttrId, row: Option<usize>) -> Value {
    if let Some(depth) = ctx.plan.attr_order.iter().position(|a| *a == attr) {
        return state.bound[depth];
    }
    if let Some(r) = row {
        let col = ctx.col_of_attr[attr.index()];
        if col != usize::MAX {
            return ctx.relation.value(r, col);
        }
    }
    Value::Null
}

/// Builds the probe key of an incoming view from the current bindings.
fn probe_key(
    ctx: &Ctx<'_>,
    state: &State<'_>,
    inc: &IncomingPlan,
    row: Option<usize>,
) -> Vec<Value> {
    inc.bound
        .iter()
        .map(|&(attr, _col)| context_value(ctx, state, attr, row))
        .collect()
}

/// Applies the register program of `depth` (copying the parent registers
/// first) and resolves the incoming views registered at that depth.
fn apply_program<'a>(ctx: &Ctx<'a>, state: &mut State<'a>, depth: usize) {
    if depth > 0 {
        let (parents, rest) = state.prefix.split_at_mut(depth);
        rest[0].copy_from_slice(&parents[depth - 1]);
    }

    // Resolve incoming views registered at this depth.
    // A representative row of the current range is not available here; probe
    // keys only use bound join attributes, which is guaranteed for the views
    // produced by the pushdown layer.
    for (idx, inc) in ctx.plan.incoming.iter().enumerate() {
        if inc.probe_depth != depth {
            continue;
        }
        if let IncomingData::Indexed(map) = &ctx.incoming[idx] {
            let key = probe_key(ctx, state, inc, None);
            state.probed[idx] = map.get(&key);
        }
    }

    // Probe direct views once per view, then apply updates.
    let mut direct_cache: Vec<Option<Option<&[f64]>>> = vec![None; ctx.plan.incoming.len()];
    for update in &ctx.plan.programs[depth] {
        match update {
            DepthUpdate::Constant { slot, value } => {
                state.prefix[depth][*slot] *= value;
            }
            DepthUpdate::Factor { slot, factor } => {
                let bound = &state.bound;
                let order = &ctx.plan.attr_order;
                let lookup = |a: AttrId| {
                    order
                        .iter()
                        .position(|x| *x == a)
                        .map(|p| bound[p])
                        .unwrap_or(Value::Null)
                };
                state.prefix[depth][*slot] *= eval_factor(factor, &lookup, ctx.dynamics);
            }
            DepthUpdate::ScalarView {
                slot,
                incoming,
                agg,
            } => {
                if direct_cache[*incoming].is_none() {
                    let inc = &ctx.plan.incoming[*incoming];
                    let probed = match &ctx.incoming[*incoming] {
                        IncomingData::Direct(cv) => {
                            let key = probe_key(ctx, state, inc, None);
                            cv.get(&key)
                        }
                        _ => None,
                    };
                    direct_cache[*incoming] = Some(probed);
                }
                match direct_cache[*incoming].unwrap() {
                    Some(values) => state.prefix[depth][*slot] *= values[*agg],
                    None => state.prefix[depth][*slot] = 0.0,
                }
            }
        }
    }
}

fn recurse<'a>(ctx: &Ctx<'a>, state: &mut State<'a>, depth: usize, range: Range<usize>) {
    if depth == ctx.plan.depth() {
        process_innermost(ctx, state, range);
        return;
    }
    let groups: Vec<(Value, Range<usize>)> = ctx.trie.children(depth, range).collect();
    for (value, child_range) in groups {
        state.bound[depth] = value;
        apply_program(ctx, state, depth + 1);
        if all_zero(&state.prefix[depth + 1]) {
            continue;
        }
        recurse(ctx, state, depth + 1, child_range);
    }
}

/// Computes the local-expression sums for the innermost range: one fused
/// chunked kernel per expression over its compiled factors (the `α9`/`α10`
/// local variables of Figure 4). Expressions whose factors all have typed
/// kernels — the bulk of every covar/regression-tree batch — run through
/// [`fused_product_sum`]; any [`FastFactor::Slow`] factor (dynamic
/// functions, mixed columns) keeps the per-row generic fallback, as do
/// ranges shorter than [`SMALL_RANGE`] where per-call chunk overhead would
/// dominate.
fn compute_local_sums(ctx: &Ctx<'_>, state: &mut State<'_>, range: &Range<usize>) {
    for (i, factors) in ctx.local_programs.iter().enumerate() {
        state.local_sums[i] = match factors.as_slice() {
            [] => range.len() as f64,
            // Plain sums read the column slice directly — no chunk copy.
            [FastFactor::FloatIdent(v)] => sum_lanes(&v[range.clone()]),
            [FastFactor::IntIdent(v)] => sum_lanes_i64(&v[range.clone()]),
            fs if fs.iter().all(FastFactor::is_kernel) && range.len() >= SMALL_RANGE => {
                fused_product_sum(fs, range.clone())
            }
            [single] => {
                let mut acc = 0.0;
                for row in range.clone() {
                    acc += eval_fast(single, ctx, row);
                }
                acc
            }
            factors => {
                let mut acc = 0.0;
                for row in range.clone() {
                    let mut prod = 1.0;
                    for f in factors {
                        prod *= eval_fast(f, ctx, row);
                        if prod == 0.0 {
                            break;
                        }
                    }
                    acc += prod;
                }
                acc
            }
        };
    }
}

/// Looks up `attr` in the extra keys of the current combination entries,
/// falling back to the bound join attributes.
fn combo_value(
    ctx: &Ctx<'_>,
    state: &State<'_>,
    term: &TermPlan,
    combo: &[&(Vec<Value>, Vec<f64>)],
    attr: AttrId,
    row: Option<usize>,
) -> Value {
    for (pos, &inc_idx) in term.extra_views.iter().enumerate() {
        let inc = &ctx.plan.incoming[inc_idx];
        if let Some(j) = inc.extras.iter().position(|&(a, _)| a == attr) {
            return combo[pos].0[j];
        }
    }
    context_value(ctx, state, attr, row)
}

/// Builds an output key from the configured key sources.
fn build_key(
    ctx: &Ctx<'_>,
    state: &State<'_>,
    output: &OutputPlan,
    term: Option<&TermPlan>,
    combo: &[&(Vec<Value>, Vec<f64>)],
    row: Option<usize>,
) -> Vec<Value> {
    output
        .key_sources
        .iter()
        .map(|src| match src {
            KeySource::BoundDepth(d) => state.bound[*d],
            KeySource::RowColumn(col) => match row {
                Some(r) => ctx.relation.value(r, *col),
                None => Value::Null,
            },
            KeySource::Extra(attr) => match term {
                Some(t) => combo_value(ctx, state, t, combo, *attr, row),
                None => Value::Null,
            },
        })
        .collect()
}

fn process_innermost(ctx: &Ctx<'_>, state: &mut State<'_>, range: Range<usize>) {
    compute_local_sums(ctx, state, &range);
    let deepest = ctx.plan.depth();

    for (oi, output) in ctx.plan.outputs.iter().enumerate() {
        for agg in &output.aggregates {
            for term in &agg.terms {
                let base = state.prefix[deepest][term.slot];
                if base == 0.0 {
                    continue;
                }
                if term.extra_views.is_empty() {
                    emit_term(ctx, state, oi, output, agg.index, term, base, &[], &range);
                } else {
                    // Gather the matching entry lists; a missing list means no
                    // joining tuples below, hence no contribution.
                    let mut lists: Vec<&Vec<(Vec<Value>, Vec<f64>)>> =
                        Vec::with_capacity(term.extra_views.len());
                    let mut ok = true;
                    for &iv in &term.extra_views {
                        match state.probed[iv] {
                            Some(list) if !list.is_empty() => lists.push(list),
                            _ => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if !ok {
                        continue;
                    }
                    // Odometer over the cartesian product of the entry lists.
                    let mut idx = vec![0usize; lists.len()];
                    loop {
                        let combo: Vec<&(Vec<Value>, Vec<f64>)> =
                            lists.iter().zip(&idx).map(|(l, &i)| &l[i]).collect();
                        let mut val = base;
                        for &(inc_idx, agg_idx) in &term.extra_refs {
                            let pos = term
                                .extra_views
                                .iter()
                                .position(|&v| v == inc_idx)
                                .expect("extra ref view must be an extra view");
                            val *= combo[pos].1[agg_idx];
                        }
                        if val != 0.0 {
                            emit_term(ctx, state, oi, output, agg.index, term, val, &combo, &range);
                        }
                        // advance odometer
                        let mut k = lists.len();
                        loop {
                            if k == 0 {
                                break;
                            }
                            k -= 1;
                            idx[k] += 1;
                            if idx[k] < lists[k].len() {
                                break;
                            }
                            idx[k] = 0;
                            if k == 0 {
                                k = usize::MAX;
                                break;
                            }
                        }
                        if k == usize::MAX {
                            break;
                        }
                    }
                }
            }
        }
    }
}

/// Emits the contributions of one term under a fixed entry combination.
#[allow(clippy::too_many_arguments)]
fn emit_term(
    ctx: &Ctx<'_>,
    state: &mut State<'_>,
    output_idx: usize,
    output: &OutputPlan,
    agg_index: usize,
    term: &TermPlan,
    mut value: f64,
    combo: &[&(Vec<Value>, Vec<f64>)],
    range: &Range<usize>,
) {
    // Factors over carried attributes (evaluated against the combination).
    for f in &term.extra_factors {
        let lookup = |a: AttrId| combo_value(ctx, state, term, combo, a, None);
        value *= eval_factor(f, &lookup, ctx.dynamics);
        if value == 0.0 {
            return;
        }
    }

    if output.key_sources.is_empty() {
        // Scalar output: accumulate in a register, no key to build.
        let contribution = value * state.local_sums[term.local_expr];
        if contribution != 0.0 {
            state.scalar_acc[output_idx][agg_index] += contribution;
        }
        return;
    }

    if output.needs_row_loop {
        // Per-row path: the key (and possibly the local factors) depend on
        // non-join columns of the relation. When every factor has a typed
        // kernel, the factor product is materialized chunk-wise (selection
        // masks included) and only rows surviving the mask pay for key
        // construction; otherwise the generic per-row loop runs.
        let factors = &ctx.local_programs[term.local_expr];
        if !factors.is_empty()
            && range.len() >= SMALL_RANGE
            && factors.iter().all(FastFactor::is_kernel)
        {
            let n_masks = factors.iter().take_while(|f| f.is_mask()).count();
            let values = &factors[n_masks..];
            let mut buf = [0.0f64; KERNEL_CHUNK];
            let mut start = range.start;
            while start < range.end {
                let n = KERNEL_CHUNK.min(range.end - start);
                let chunk = &mut buf[..n];
                run_kernel(&factors[0], start, chunk, true);
                if n_masks == 0 {
                    for f in &factors[1..] {
                        run_kernel(f, start, chunk, false);
                    }
                } else {
                    for f in &factors[1..n_masks] {
                        run_kernel(f, start, chunk, false);
                    }
                    let survivors = sum_lanes(chunk) as usize;
                    if survivors == 0 {
                        start += n;
                        continue;
                    }
                    if !values.is_empty() {
                        apply_value_factors(values, start, chunk, survivors);
                    }
                }
                for (i, &fv) in chunk.iter().enumerate() {
                    let v = value * fv;
                    if v == 0.0 {
                        continue;
                    }
                    let key = build_key(ctx, state, output, Some(term), combo, Some(start + i));
                    state.outputs[output_idx].add_single(key, agg_index, v);
                }
                start += n;
            }
        } else {
            for row in range.clone() {
                let mut v = value;
                for f in factors {
                    v *= eval_fast(f, ctx, row);
                    if v == 0.0 {
                        break;
                    }
                }
                if v == 0.0 {
                    continue;
                }
                let key = build_key(ctx, state, output, Some(term), combo, Some(row));
                state.outputs[output_idx].add_single(key, agg_index, v);
            }
        }
    } else {
        let contribution = value * state.local_sums[term.local_expr];
        if contribution == 0.0 {
            return;
        }
        let row = if range.is_empty() {
            None
        } else {
            Some(range.start)
        };
        let key = build_key(ctx, state, output, Some(term), combo, row);
        state.outputs[output_idx].add_single(key, agg_index, contribution);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::group::group_views;
    use crate::plan::{build_group_plan, prepare_database};
    use crate::pushdown::push_down_batch;
    use crate::roots::assign_roots;
    use lmfao_data::{AttrType, DatabaseSchema, RelationSchema};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph, JoinTree};

    /// Sales(store, item, units) ⋈ Items(item, price):
    ///   (1,1,3) (1,2,4) (2,1,5) ⋈ (1,10) (2,20)
    /// Join: (1,1,3,10) (1,2,4,20) (2,1,5,10)
    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let store = schema.attr_id("store").unwrap();
        let item = schema.attr_id("item").unwrap();
        let units = schema.attr_id("units").unwrap();
        let price = schema.attr_id("price").unwrap();
        let sales = Relation::from_rows(
            RelationSchema::new("Sales", vec![store, item, units]),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(1), Value::Int(2), Value::Double(4.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
            ],
        )
        .unwrap();
        let items = Relation::from_rows(
            RelationSchema::new("Items", vec![item, price]),
            vec![
                vec![Value::Int(1), Value::Double(10.0)],
                vec![Value::Int(2), Value::Double(20.0)],
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    /// Runs the full stack (pushdown → group → plan → execute) and returns
    /// the query results, keyed by query index.
    fn run(
        batch: &QueryBatch,
        db: &mut Database,
        tree: &JoinTree,
        cfg: EngineConfig,
    ) -> Vec<ComputedView> {
        let roots = assign_roots(batch, tree, db, &cfg);
        let pd = push_down_batch(batch, tree, &roots);
        let grouping = group_views(&pd.catalog, cfg.multi_output);
        prepare_database(db, tree);
        let dynamics = DynamicRegistry::new();
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for gid in grouping.topological_order() {
            let plan = build_group_plan(db, tree, &pd.catalog, &grouping.groups[gid]).unwrap();
            for (vid, cv) in execute_group(db, &plan, &computed, &dynamics, None).unwrap() {
                computed.insert(vid, cv);
            }
        }
        pd.outputs
            .iter()
            .map(|o| {
                let cv = computed[&o.view].clone();
                // project the query's aggregates out of the merged output view
                let mut projected =
                    ComputedView::new(cv.key_attrs.clone(), o.aggregate_indices.len());
                for (key, vals) in cv.iter() {
                    let sel: Vec<f64> = o.aggregate_indices.iter().map(|&i| vals[i]).collect();
                    projected.add(key.clone(), &sel);
                }
                projected
            })
            .collect()
    }

    #[test]
    fn scalar_count_and_sums_match_hand_computation() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_units", vec![], vec![Aggregate::sum(units)]);
        batch.push("sum_price", vec![], vec![Aggregate::sum(price)]);
        batch.push("sum_up", vec![], vec![Aggregate::sum_product(units, price)]);
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        assert_eq!(results[0].scalar().unwrap()[0], 3.0);
        assert_eq!(results[1].scalar().unwrap()[0], 3.0 + 4.0 + 5.0);
        assert_eq!(results[2].scalar().unwrap()[0], 10.0 + 20.0 + 10.0);
        assert_eq!(
            results[3].scalar().unwrap()[0],
            3.0 * 10.0 + 4.0 * 20.0 + 5.0 * 10.0
        );
    }

    #[test]
    fn group_by_join_attribute() {
        let (mut db, tree) = db_and_tree();
        let store = db.schema().attr_id("store").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let mut batch = QueryBatch::new();
        batch.push(
            "per_store",
            vec![store],
            vec![Aggregate::sum(units), Aggregate::count()],
        );
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        let r = &results[0];
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&[Value::Int(1)]).unwrap(), &[7.0, 2.0]);
        assert_eq!(r.get(&[Value::Int(2)]).unwrap(), &[5.0, 1.0]);
    }

    #[test]
    fn group_by_dimension_attribute() {
        let (mut db, tree) = db_and_tree();
        let price = db.schema().attr_id("price").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("by_price", vec![price], vec![Aggregate::sum(units)]);
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        let r = &results[0];
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(&[Value::Double(10.0)]).unwrap(), &[8.0]);
        assert_eq!(r.get(&[Value::Double(20.0)]).unwrap(), &[4.0]);
    }

    #[test]
    fn group_by_spanning_fact_and_dimension_uses_extra_keys() {
        // Group by (store, price): store lives in Sales, price in Items, so
        // whatever the root, one side's attribute is carried as an extra key
        // of an incoming view.
        let (mut db, tree) = db_and_tree();
        let store = db.schema().attr_id("store").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let units = db.schema().attr_id("units").unwrap();
        let mut batch = QueryBatch::new();
        batch.push(
            "by_store_price",
            vec![store, price],
            vec![Aggregate::sum(units)],
        );
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        let r = &results[0];
        // Join tuples: (1,1,3,10) (1,2,4,20) (2,1,5,10); keys are in canonical
        // (sorted AttrId) order, i.e. [store, price].
        assert_eq!(r.len(), 3);
        assert_eq!(
            r.get(&[Value::Int(1), Value::Double(10.0)]).unwrap(),
            &[3.0]
        );
        assert_eq!(
            r.get(&[Value::Int(1), Value::Double(20.0)]).unwrap(),
            &[4.0]
        );
        assert_eq!(
            r.get(&[Value::Int(2), Value::Double(10.0)]).unwrap(),
            &[5.0]
        );
    }

    #[test]
    fn group_by_non_join_fact_attribute() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("by_units", vec![units], vec![Aggregate::sum(price)]);
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        let r = &results[0];
        assert_eq!(r.len(), 3);
        assert_eq!(r.get(&[Value::Double(3.0)]).unwrap(), &[10.0]);
        assert_eq!(r.get(&[Value::Double(4.0)]).unwrap(), &[20.0]);
        assert_eq!(r.get(&[Value::Double(5.0)]).unwrap(), &[10.0]);
    }

    #[test]
    fn dangling_tuples_are_dropped_by_the_join() {
        let (mut db, tree) = db_and_tree();
        // Add a Sales row for an item that does not exist in Items.
        let store = db.schema().attr_id("store").unwrap();
        let _ = store;
        db.relation_mut("Sales")
            .unwrap()
            .push_row(&[Value::Int(9), Value::Int(99), Value::Double(100.0)])
            .unwrap();
        db.recompute_statistics();
        let units = db.schema().attr_id("units").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push("sum_units", vec![], vec![Aggregate::sum(units)]);
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        // The dangling tuple must not contribute.
        assert_eq!(results[0].scalar().unwrap()[0], 3.0);
        assert_eq!(results[1].scalar().unwrap()[0], 12.0);
    }

    #[test]
    fn indicator_conditions_select_fragments() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        // SUM(units * 1[price >= 15]): only the (1,2,4,20) join tuple qualifies.
        let cond = lmfao_expr::ScalarFunction::Indicator {
            attr: price,
            op: lmfao_expr::CmpOp::Ge,
            threshold: Value::Double(15.0),
        };
        let agg = Aggregate::sum(units).times(cond);
        let mut batch = QueryBatch::new();
        batch.push("rt_node", vec![], vec![agg]);
        let results = run(&batch, &mut db, &tree, EngineConfig::default());
        assert_eq!(results[0].scalar().unwrap()[0], 4.0);
    }

    #[test]
    fn partitioned_execution_merges_to_the_same_result() {
        let (mut db, tree) = db_and_tree();
        let units = db.schema().attr_id("units").unwrap();
        let price = db.schema().attr_id("price").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("sum_up", vec![], vec![Aggregate::sum_product(units, price)]);
        let cfg = EngineConfig::default();
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let pd = push_down_batch(&batch, &tree, &roots);
        let grouping = group_views(&pd.catalog, true);
        prepare_database(&mut db, &tree);
        let dynamics = DynamicRegistry::new();
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for gid in grouping.topological_order() {
            let plan = build_group_plan(&db, &tree, &pd.catalog, &grouping.groups[gid]).unwrap();
            let rel_len = db.relation(&plan.relation).unwrap().len();
            // Split the relation into two arbitrary partitions and merge.
            let mid = rel_len / 2;
            let mut partials: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
            for part in [0..mid, mid..rel_len] {
                for (vid, cv) in
                    execute_group(&db, &plan, &computed, &dynamics, Some(part)).unwrap()
                {
                    match partials.get_mut(&vid) {
                        Some(acc) => {
                            for (k, v) in cv.iter() {
                                acc.add(k.clone(), v);
                            }
                        }
                        None => {
                            partials.insert(vid, cv);
                        }
                    }
                }
            }
            computed.extend(partials);
        }
        let out = &computed[&pd.outputs[0].view];
        assert_eq!(
            out.scalar().unwrap()[0],
            3.0 * 10.0 + 4.0 * 20.0 + 5.0 * 10.0
        );
    }
}
