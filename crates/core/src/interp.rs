//! Interpreted, tuple-at-a-time view evaluation.
//!
//! This is the unoptimized execution path used when
//! [`EngineConfig::specialization`](crate::config::EngineConfig) is off: each
//! view is computed with its own scan of its relation, evaluating every
//! aggregate term for every tuple, with no attribute order, no register
//! caching and no sharing of local expressions. It serves as the proxy for
//! the AC/DC-style baseline in Figure 5's ablation (the paper's leftmost
//! bar) and doubles as an independent re-implementation of the view
//! semantics that the specialized executor is cross-checked against in tests.

use crate::error::EngineError;
use crate::view::{ComputedView, ViewCatalog, ViewId, ViewTerm};
use lmfao_data::{AttrId, Database, FxHashMap, Relation, Value};
use lmfao_expr::{DynamicRegistry, ScalarFunction};
use lmfao_jointree::JoinTree;

/// Entry references (key, payload) of an incoming view, grouped under the
/// bound part of the key.
type EntryRefs<'a> = Vec<(&'a Vec<Value>, &'a Vec<f64>)>;

/// An incoming view's entries indexed by the bound part of its key.
type BoundIndex<'a> = FxHashMap<Vec<Value>, EntryRefs<'a>>;

/// Matching entries of a child view carrying extra key attributes, with the
/// partial product contributed by each.
type WeightedEntries<'a> = Vec<(&'a Vec<Value>, f64)>;

/// Per-incoming-view probe metadata used by the interpreter.
struct IncomingRef<'a> {
    /// The computed result of the incoming view.
    result: &'a ComputedView,
    /// `(relation column, key position)` pairs for key attributes that are
    /// columns of the scanned relation.
    bound: Vec<(usize, usize)>,
    /// Key attributes carried from deeper in the tree, with their positions
    /// in the incoming view's key tuple.
    extras: Vec<(AttrId, usize)>,
    /// For views with extra key attributes: entries indexed by the bound part
    /// of their key, so per-tuple probes stay constant time (a hash join, as
    /// any interpreted engine would do).
    index: BoundIndex<'a>,
}

/// Evaluates a scalar function, routing dynamic functions through the registry.
#[inline]
fn eval_factor<F>(f: &ScalarFunction, lookup: &F, dynamics: &DynamicRegistry) -> f64
where
    F: Fn(AttrId) -> Value,
{
    match f {
        ScalarFunction::Dynamic { id, attrs } => {
            let args: Vec<Value> = attrs.iter().map(|&a| lookup(a)).collect();
            dynamics.evaluate(*id, &args)
        }
        other => other.evaluate(lookup),
    }
}

/// Computes a single view by a straightforward interpretation of its
/// definition over the relation at its source node.
pub fn execute_view_interpreted(
    db: &Database,
    tree: &JoinTree,
    catalog: &ViewCatalog,
    view_id: ViewId,
    computed: &FxHashMap<ViewId, ComputedView>,
    dynamics: &DynamicRegistry,
) -> Result<ComputedView, EngineError> {
    let def = catalog.view(view_id);
    let relation_name = &tree.node(def.source).relation;
    let relation = db
        .relation(relation_name)
        .map_err(|_| EngineError::UnknownRelation(relation_name.clone()))?;

    let deps = def.dependencies();
    let mut incoming: FxHashMap<ViewId, IncomingRef> = FxHashMap::default();
    for dep in &deps {
        let dep_def = catalog.view(*dep);
        let result = computed
            .get(dep)
            .ok_or(EngineError::ViewNotComputed(*dep))?;
        let mut bound = Vec::new();
        let mut extras = Vec::new();
        for (pos, &attr) in dep_def.group_by.iter().enumerate() {
            match relation.position(attr) {
                Some(col) => bound.push((col, pos)),
                None => extras.push((attr, pos)),
            }
        }
        let mut index: BoundIndex = FxHashMap::default();
        if !extras.is_empty() {
            for (key, values) in result.iter() {
                let bound_part: Vec<Value> = bound.iter().map(|&(_, pos)| key[pos]).collect();
                index.entry(bound_part).or_default().push((key, values));
            }
        }
        incoming.insert(
            *dep,
            IncomingRef {
                result,
                bound,
                extras,
                index,
            },
        );
    }

    let mut out = ComputedView::new(def.group_by.clone(), def.num_aggregates());
    let key_cols: Vec<Option<usize>> = def.group_by.iter().map(|a| relation.position(*a)).collect();

    // Resolve every attribute to its column position once (usize::MAX = not a
    // column of the scanned relation) and partition each term's local factors
    // into row factors (all attributes are relation columns, evaluated once
    // per row) and combination factors — work the row loop must not repeat.
    let mut col_of_attr = vec![usize::MAX; db.schema().num_attributes()];
    for (pos, &attr) in relation.schema().attrs.iter().enumerate() {
        col_of_attr[attr.index()] = pos;
    }
    let terms: Vec<PreparedTerm> = def
        .aggregates
        .iter()
        .enumerate()
        .flat_map(|(agg_idx, agg)| agg.terms.iter().map(move |term| (agg_idx, term)))
        .map(|(agg_idx, term)| {
            let (row_factors, combo_factors) = term.local.iter().partition(|f| {
                f.attrs()
                    .iter()
                    .all(|a| col_of_attr[a.index()] != usize::MAX)
            });
            PreparedTerm {
                agg_idx,
                term,
                row_factors,
                combo_factors,
            }
        })
        .collect();

    for row in 0..relation.len() {
        for prepared in &terms {
            evaluate_term_for_row(
                &def.group_by,
                prepared,
                relation,
                row,
                &incoming,
                dynamics,
                &key_cols,
                &col_of_attr,
                &mut out,
            );
        }
    }
    Ok(out)
}

/// One aggregate term with its local factors pre-partitioned into per-row and
/// per-combination factors.
struct PreparedTerm<'a> {
    agg_idx: usize,
    term: &'a ViewTerm,
    /// Factors whose attributes are all columns of the scanned relation.
    row_factors: Vec<&'a ScalarFunction>,
    /// Factors reading attributes carried by child views.
    combo_factors: Vec<&'a ScalarFunction>,
}

#[allow(clippy::too_many_arguments)]
fn evaluate_term_for_row(
    group_by: &[AttrId],
    prepared: &PreparedTerm<'_>,
    relation: &Relation,
    row: usize,
    incoming: &FxHashMap<ViewId, IncomingRef<'_>>,
    dynamics: &DynamicRegistry,
    key_cols: &[Option<usize>],
    col_of_attr: &[usize],
    out: &mut ComputedView,
) {
    let term = prepared.term;
    let agg_idx = prepared.agg_idx;
    let row_lookup = |a: AttrId| {
        let col = col_of_attr[a.index()];
        if col == usize::MAX {
            Value::Null
        } else {
            relation.value(row, col)
        }
    };

    // Probe every referenced child view by the key attributes available in
    // the current row; children carrying extra attributes contribute one
    // matching entry per combination.
    let mut scalar_product = term.constant;
    let mut extra_lists: Vec<(ViewId, WeightedEntries<'_>)> = Vec::new();
    for (child, child_agg) in &term.child_refs {
        let inc = &incoming[child];
        if inc.extras.is_empty() {
            let mut key = vec![Value::Null; inc.bound.len()];
            for &(col, pos) in &inc.bound {
                key[pos] = relation.value(row, col);
            }
            match inc.result.get(&key) {
                Some(values) => scalar_product *= values[*child_agg],
                None => return, // dangling tuple: no contribution
            }
        } else {
            let probe: Vec<Value> = inc
                .bound
                .iter()
                .map(|&(col, _)| relation.value(row, col))
                .collect();
            let matches: Vec<(&Vec<Value>, f64)> = match inc.index.get(&probe) {
                Some(entries) => entries
                    .iter()
                    .map(|(key, values)| (*key, values[*child_agg]))
                    .collect(),
                None => Vec::new(),
            };
            if matches.is_empty() {
                return;
            }
            extra_lists.push((*child, matches));
        }
        if scalar_product == 0.0 {
            return;
        }
    }

    // Local factors that only read relation columns are evaluated once per
    // row (the partition was computed when the view was prepared).
    for f in &prepared.row_factors {
        scalar_product *= eval_factor(f, &row_lookup, dynamics);
        if scalar_product == 0.0 {
            return;
        }
    }
    let combo_factors = &prepared.combo_factors;

    // Iterate the cartesian product of the extra entries (an empty product is
    // the single empty combination).
    let mut idx = vec![0usize; extra_lists.len()];
    loop {
        let combo_lookup = |a: AttrId| {
            for (pos, (child, entries)) in extra_lists.iter().enumerate() {
                let inc = &incoming[child];
                if let Some(j) = inc.extras.iter().position(|&(attr, _)| attr == a) {
                    let key_pos = inc.extras[j].1;
                    return entries[idx[pos]].0[key_pos];
                }
            }
            row_lookup(a)
        };
        let mut value = scalar_product;
        for (pos, (_, entries)) in extra_lists.iter().enumerate() {
            value *= entries[idx[pos]].1;
        }
        for f in combo_factors {
            value *= eval_factor(f, &combo_lookup, dynamics);
        }
        if value != 0.0 {
            let key: Vec<Value> = group_by
                .iter()
                .zip(key_cols)
                .map(|(&attr, col)| match col {
                    Some(c) => relation.value(row, *c),
                    None => combo_lookup(attr),
                })
                .collect();
            out.add_single(key, agg_idx, value);
        }
        // Advance the odometer.
        if extra_lists.is_empty() {
            break;
        }
        let mut k = extra_lists.len() - 1;
        loop {
            idx[k] += 1;
            if idx[k] < extra_lists[k].1.len() {
                break;
            }
            idx[k] = 0;
            if k == 0 {
                return;
            }
            k -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::pushdown::push_down_batch;
    use crate::roots::assign_roots;
    use lmfao_data::{AttrType, DatabaseSchema, RelationSchema};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    fn db_and_tree() -> (Database, JoinTree) {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "R",
            &[
                ("a", AttrType::Int),
                ("b", AttrType::Int),
                ("x", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("y", AttrType::Double)]);
        let a = schema.attr_id("a").unwrap();
        let b = schema.attr_id("b").unwrap();
        let x = schema.attr_id("x").unwrap();
        let y = schema.attr_id("y").unwrap();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![a, b, x]),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(2.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(3), Value::Int(2), Value::Double(4.0)],
            ],
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![b, y]),
            vec![
                vec![Value::Int(1), Value::Double(10.0)],
                vec![Value::Int(2), Value::Double(20.0)],
            ],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![r, s]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();
        (db, tree)
    }

    #[test]
    fn interpreted_execution_matches_hand_computation() {
        let (db, tree) = db_and_tree();
        let x = db.schema().attr_id("x").unwrap();
        let y = db.schema().attr_id("y").unwrap();
        let a = db.schema().attr_id("a").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("sum_xy", vec![], vec![Aggregate::sum_product(x, y)]);
        batch.push("per_a", vec![a], vec![Aggregate::sum(y)]);
        let cfg = EngineConfig::unoptimized();
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let pd = push_down_batch(&batch, &tree, &roots);
        let dynamics = DynamicRegistry::new();
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for vid in pd.catalog.topological_order() {
            let cv = execute_view_interpreted(&db, &tree, &pd.catalog, vid, &computed, &dynamics)
                .unwrap();
            computed.insert(vid, cv);
        }
        // Join: (1,1,2,10) (2,1,3,10) (3,2,4,20) → Σ x·y = 20 + 30 + 80 = 130.
        let out0 = &computed[&pd.outputs[0].view];
        let i0 = pd.outputs[0].aggregate_indices[0];
        assert_eq!(out0.scalar().unwrap()[i0], 130.0);
        // per a: a=1 → 10, a=2 → 10, a=3 → 20.
        let out1 = &computed[&pd.outputs[1].view];
        let i1 = pd.outputs[1].aggregate_indices[0];
        assert_eq!(out1.get(&[Value::Int(1)]).unwrap()[i1], 10.0);
        assert_eq!(out1.get(&[Value::Int(2)]).unwrap()[i1], 10.0);
        assert_eq!(out1.get(&[Value::Int(3)]).unwrap()[i1], 20.0);
    }

    #[test]
    fn dangling_rows_do_not_contribute() {
        let (mut db, tree) = db_and_tree();
        db.relation_mut("R")
            .unwrap()
            .push_row(&[Value::Int(9), Value::Int(99), Value::Double(100.0)])
            .unwrap();
        let x = db.schema().attr_id("x").unwrap();
        let mut batch = QueryBatch::new();
        batch.push("sum_x", vec![], vec![Aggregate::sum(x)]);
        let cfg = EngineConfig::unoptimized();
        let roots = assign_roots(&batch, &tree, &db, &cfg);
        let pd = push_down_batch(&batch, &tree, &roots);
        let dynamics = DynamicRegistry::new();
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for vid in pd.catalog.topological_order() {
            let cv = execute_view_interpreted(&db, &tree, &pd.catalog, vid, &computed, &dynamics)
                .unwrap();
            computed.insert(vid, cv);
        }
        let out = &computed[&pd.outputs[0].view];
        assert_eq!(
            out.scalar().unwrap()[pd.outputs[0].aggregate_indices[0]],
            9.0
        );
    }
}
