//! Directional views and their computed results.
//!
//! The Aggregate Pushdown layer decomposes every query of a batch into one
//! *directional view* per edge of the join tree (Section 3.2): a view flows
//! along an edge from a source node to a neighboring target node and is
//! defined over the relation at the source joined with the views incoming at
//! the source. Query outputs are modelled as views with no target, computed
//! at the query's root node.
//!
//! A view's aggregates are sums of [`ViewTerm`]s: products of scalar
//! functions over attributes available at the source node times references to
//! aggregates of incoming (child) views — the "partial products" the paper
//! pushes past joins. The [`ViewCatalog`] registry implements the Merge Views
//! layer: views with the same source, target and group-by attributes are
//! consolidated, and identical aggregates within a view are deduplicated.

use lmfao_data::{AttrId, FxHashMap, Value};
use lmfao_expr::{QueryId, ScalarFunction};
use std::sync::Arc;

/// Identifier of a view within a [`ViewCatalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewId(pub usize);

/// One product term of a view aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewTerm {
    /// Constant factor of the product.
    pub constant: f64,
    /// Factors over attributes available at the source node (its relation's
    /// attributes, or attributes carried up as extra keys of incoming views).
    pub local: Vec<ScalarFunction>,
    /// References to aggregates of incoming views: `(view, aggregate index)`.
    /// The referenced values multiply into the product. Every child of the
    /// source node (with respect to the view's orientation) contributes
    /// exactly one reference — at minimum its count aggregate — so that join
    /// (semijoin) semantics are preserved.
    pub child_refs: Vec<(ViewId, usize)>,
}

impl ViewTerm {
    /// A term that only counts matching tuples (no factors, no children).
    pub fn count() -> Self {
        ViewTerm {
            constant: 1.0,
            local: vec![],
            child_refs: vec![],
        }
    }

    /// All attributes read by the local factors of this term.
    pub fn local_attrs(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        for f in &self.local {
            for a in f.attrs() {
                if !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }
}

/// A view aggregate: a sum of [`ViewTerm`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewAggregate {
    /// The summed terms.
    pub terms: Vec<ViewTerm>,
}

impl ViewAggregate {
    /// The plain count aggregate.
    pub fn count() -> Self {
        ViewAggregate {
            terms: vec![ViewTerm::count()],
        }
    }

    /// An aggregate with a single term.
    pub fn single(term: ViewTerm) -> Self {
        ViewAggregate { terms: vec![term] }
    }
}

/// The definition of a directional view (or of a query output when `target`
/// is `None`).
#[derive(Debug, Clone)]
pub struct ViewDef {
    /// Identifier within the catalog.
    pub id: ViewId,
    /// Join-tree node whose relation the view scans.
    pub source: usize,
    /// Join-tree node the view flows to; `None` for query outputs.
    pub target: Option<usize>,
    /// Group-by attributes of the view, in canonical (sorted) order.
    pub group_by: Vec<AttrId>,
    /// The view's aggregates.
    pub aggregates: Vec<ViewAggregate>,
    /// For query-output views, the queries whose results this view carries.
    pub queries: Vec<QueryId>,
}

impl ViewDef {
    /// All views this view directly depends on.
    pub fn dependencies(&self) -> Vec<ViewId> {
        let mut out = Vec::new();
        for agg in &self.aggregates {
            for term in &agg.terms {
                for &(v, _) in &term.child_refs {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Number of aggregates of the view.
    pub fn num_aggregates(&self) -> usize {
        self.aggregates.len()
    }

    /// Whether this is a query-output view.
    pub fn is_output(&self) -> bool {
        self.target.is_none()
    }
}

/// The view registry built by the pushdown + merge layers.
///
/// Views are keyed by `(source, target, group_by)`: requesting a view with a
/// key that already exists returns the existing view, implementing the
/// paper's view merging (identical views are kept once; views with the same
/// group-by and body but different aggregates are merged by appending, with
/// per-view deduplication of identical aggregates).
#[derive(Debug, Clone, Default)]
pub struct ViewCatalog {
    views: Vec<ViewDef>,
    index: FxHashMap<(usize, Option<usize>, Vec<AttrId>), ViewId>,
}

impl ViewCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of the view with the given source, target and group-by,
    /// creating it if necessary. The group-by is canonicalized (sorted).
    pub fn get_or_create(
        &mut self,
        source: usize,
        target: Option<usize>,
        mut group_by: Vec<AttrId>,
    ) -> ViewId {
        group_by.sort();
        group_by.dedup();
        let key = (source, target, group_by.clone());
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = ViewId(self.views.len());
        self.views.push(ViewDef {
            id,
            source,
            target,
            group_by,
            aggregates: vec![],
            queries: vec![],
        });
        self.index.insert(key, id);
        id
    }

    /// Adds an aggregate to a view, deduplicating identical aggregates.
    /// Returns the aggregate's index within the view.
    pub fn add_aggregate(&mut self, view: ViewId, aggregate: ViewAggregate) -> usize {
        let v = &mut self.views[view.0];
        if let Some(idx) = v.aggregates.iter().position(|a| *a == aggregate) {
            return idx;
        }
        v.aggregates.push(aggregate);
        v.aggregates.len() - 1
    }

    /// Records that a view carries the output of a query.
    pub fn tag_query(&mut self, view: ViewId, query: QueryId) {
        let v = &mut self.views[view.0];
        if !v.queries.contains(&query) {
            v.queries.push(query);
        }
    }

    /// A view definition by id.
    pub fn view(&self, id: ViewId) -> &ViewDef {
        &self.views[id.0]
    }

    /// All view definitions.
    pub fn views(&self) -> &[ViewDef] {
        &self.views
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True if the catalog holds no view.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Total number of aggregates across all views (the paper's "application
    /// plus intermediate aggregates" after consolidation).
    pub fn total_aggregates(&self) -> usize {
        self.views.iter().map(ViewDef::num_aggregates).sum()
    }

    /// A topological order of the views (dependencies first).
    pub fn topological_order(&self) -> Vec<ViewId> {
        let n = self.views.len();
        let mut indegree = vec![0usize; n];
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for v in &self.views {
            for dep in v.dependencies() {
                indegree[v.id.0] += 1;
                dependents[dep.0].push(v.id.0);
            }
        }
        let mut queue: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(u) = queue.pop_front() {
            order.push(ViewId(u));
            for &d in &dependents[u] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "view dependency graph has a cycle");
        order
    }
}

/// The materialized result of a view: a map from group-by key to the vector
/// of aggregate values.
#[derive(Debug, Clone)]
pub struct ComputedView {
    /// Group-by attributes of the key, in the view's canonical order.
    pub key_attrs: Vec<AttrId>,
    /// Number of aggregates per entry.
    pub num_aggregates: usize,
    /// The data: key tuple → aggregate values.
    pub data: FxHashMap<Vec<Value>, Vec<f64>>,
}

impl ComputedView {
    /// Creates an empty computed view.
    pub fn new(key_attrs: Vec<AttrId>, num_aggregates: usize) -> Self {
        ComputedView {
            key_attrs,
            num_aggregates,
            data: FxHashMap::default(),
        }
    }

    /// Adds `values` into the entry for `key` (element-wise sum).
    pub fn add(&mut self, key: Vec<Value>, values: &[f64]) {
        debug_assert_eq!(values.len(), self.num_aggregates);
        let entry = self
            .data
            .entry(key)
            .or_insert_with(|| vec![0.0; self.num_aggregates]);
        for (e, v) in entry.iter_mut().zip(values) {
            *e += v;
        }
    }

    /// Adds a single aggregate value into the entry for `key`.
    pub fn add_single(&mut self, key: Vec<Value>, agg_idx: usize, value: f64) {
        let n = self.num_aggregates;
        let entry = self.data.entry(key).or_insert_with(|| vec![0.0; n]);
        entry[agg_idx] += value;
    }

    /// The aggregate values for a key, if present.
    pub fn get(&self, key: &[Value]) -> Option<&[f64]> {
        self.data.get(key).map(Vec::as_slice)
    }

    /// For scalar views (no group-by), the aggregate values.
    pub fn scalar(&self) -> Option<&[f64]> {
        self.data.get(&Vec::new() as &Vec<Value>).map(Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if no tuple was produced.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Approximate size of the view in bytes (keys plus aggregate payload).
    pub fn size_bytes(&self) -> usize {
        let key_width = self.key_attrs.len() * std::mem::size_of::<Value>();
        let agg_width = self.num_aggregates * std::mem::size_of::<f64>();
        self.data.len() * (key_width + agg_width)
    }

    /// Iterates over `(key, aggregate values)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Vec<f64>)> {
        self.data.iter()
    }

    /// Drains all `(key, aggregate values)` entries, leaving the view empty.
    /// The consuming counterpart of [`ComputedView::iter`]: folding
    /// domain-parallel partials through this moves the key tuples instead of
    /// cloning them.
    pub fn drain(&mut self) -> impl Iterator<Item = (Vec<Value>, Vec<f64>)> + '_ {
        self.data.drain()
    }

    /// Merges `other` into this view by element-wise addition, consuming it.
    /// Keys absent from `self` are moved, not cloned.
    pub fn merge_from(&mut self, mut other: ComputedView) {
        debug_assert_eq!(other.num_aggregates, self.num_aggregates);
        if self.data.is_empty() {
            self.data = std::mem::take(&mut other.data);
            return;
        }
        for (key, values) in other.drain() {
            match self.data.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (a, b) in e.get_mut().iter_mut().zip(&values) {
                        *a += b;
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(values);
                }
            }
        }
    }

    /// Merges `delta` scaled by `sign` into this view (element-wise
    /// `self += sign · delta`). With `sign = 1.0` this is the additive merge
    /// of domain-parallel partials; with `sign = -1.0` it retracts a delta —
    /// the signed propagation the maintenance layer runs on.
    pub fn merge_signed(&mut self, delta: &ComputedView, sign: f64) {
        debug_assert_eq!(delta.num_aggregates, self.num_aggregates);
        for (key, values) in delta.iter() {
            let entry = self
                .data
                .entry(key.clone())
                .or_insert_with(|| vec![0.0; self.num_aggregates]);
            for (e, v) in entry.iter_mut().zip(values) {
                *e += sign * v;
            }
        }
    }

    /// Retracts `delta` from this view: `self -= delta`.
    pub fn retract(&mut self, delta: &ComputedView) {
        self.merge_signed(delta, -1.0);
    }

    /// Like [`ComputedView::merge_signed`], but snaps results that are zero
    /// up to float rounding back to exact zero: after `e += sign · v`, if
    /// `|e| ≤ rel_eps · |v|` (and `e ≠ 0`), `e` is set to `0.0`.
    ///
    /// This is the float-drift guard of long-lived maintained state. Exact
    /// cancellation (`(a + b) − b`) need not return a bit-exact zero in
    /// floats, so a long insert/delete stream that nets to zero can leave a
    /// residue of order `n · ulp` behind — and [`prune_zero_entries`], which
    /// is deliberately exact, would then never drop the dead key. A residue
    /// is distinguishable from a real value because it is tiny *relative to
    /// the delta that produced it*; a genuine surviving aggregate of that
    /// magnitude is below any sane float tolerance anyway. Integer-valued
    /// sums are **never** snapped: exact integer cancellation already yields
    /// a bit-exact zero (`e == 0.0` short-circuits), and a surviving
    /// integer-valued result (`e.fract() == 0.0`) is a genuine count or
    /// integer sum regardless of how large the delta that produced it was —
    /// snapping it would corrupt exact state to dodge a float artifact it
    /// cannot have.
    ///
    /// [`prune_zero_entries`]: ComputedView::prune_zero_entries
    pub fn merge_signed_snapped(&mut self, delta: &ComputedView, sign: f64, rel_eps: f64) {
        debug_assert_eq!(delta.num_aggregates, self.num_aggregates);
        for (key, values) in delta.iter() {
            let entry = self
                .data
                .entry(key.clone())
                .or_insert_with(|| vec![0.0; self.num_aggregates]);
            for (e, v) in entry.iter_mut().zip(values) {
                *e += sign * v;
                if *e != 0.0 && e.fract() != 0.0 && e.abs() <= rel_eps * v.abs() {
                    *e = 0.0;
                }
            }
        }
    }

    /// Drops entries whose aggregates are all exactly zero. After a signed
    /// merge this restores the invariant that keys without joining tuples are
    /// absent (absent keys already mean all-zero aggregates to every reader).
    pub fn prune_zero_entries(&mut self) {
        self.data.retain(|_, v| v.iter().any(|&x| x != 0.0));
    }
}

/// Read access to computed view results during a group scan.
///
/// The executor resolves incoming views through this trait instead of a
/// concrete map, so the maintenance layer can overlay *deltas* over the
/// retained full views: a scan probing a changed view sees its signed delta,
/// while unchanged views resolve to their retained results.
pub trait ViewSource {
    /// The computed result of `id`, if available.
    fn view_result(&self, id: ViewId) -> Option<&ComputedView>;
}

impl ViewSource for FxHashMap<ViewId, ComputedView> {
    fn view_result(&self, id: ViewId) -> Option<&ComputedView> {
        self.get(&id)
    }
}

/// The serving layer keeps views behind [`Arc`]s (copy-on-write between
/// generations); scans read straight through the shared handles.
impl ViewSource for FxHashMap<ViewId, Arc<ComputedView>> {
    fn view_result(&self, id: ViewId) -> Option<&ComputedView> {
        self.get(&id).map(|cv| &**cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_merges_views_with_same_key() {
        let mut cat = ViewCatalog::new();
        let a = cat.get_or_create(0, Some(1), vec![AttrId(2), AttrId(1)]);
        let b = cat.get_or_create(0, Some(1), vec![AttrId(1), AttrId(2)]);
        assert_eq!(a, b, "group-by order must not matter");
        let c = cat.get_or_create(0, Some(2), vec![AttrId(1), AttrId(2)]);
        assert_ne!(a, c);
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
    }

    #[test]
    fn aggregate_dedup_within_a_view() {
        let mut cat = ViewCatalog::new();
        let v = cat.get_or_create(0, None, vec![]);
        let i0 = cat.add_aggregate(v, ViewAggregate::count());
        let i1 = cat.add_aggregate(v, ViewAggregate::count());
        assert_eq!(i0, i1);
        let other = ViewAggregate::single(ViewTerm {
            constant: 1.0,
            local: vec![ScalarFunction::Identity(AttrId(3))],
            child_refs: vec![],
        });
        let i2 = cat.add_aggregate(v, other);
        assert_eq!(i2, 1);
        assert_eq!(cat.view(v).num_aggregates(), 2);
        assert_eq!(cat.total_aggregates(), 2);
    }

    #[test]
    fn dependencies_and_topological_order() {
        let mut cat = ViewCatalog::new();
        let leaf = cat.get_or_create(1, Some(0), vec![AttrId(0)]);
        cat.add_aggregate(leaf, ViewAggregate::count());
        let root = cat.get_or_create(0, None, vec![]);
        cat.add_aggregate(
            root,
            ViewAggregate::single(ViewTerm {
                constant: 1.0,
                local: vec![],
                child_refs: vec![(leaf, 0)],
            }),
        );
        assert_eq!(cat.view(root).dependencies(), vec![leaf]);
        let order = cat.topological_order();
        let pos_leaf = order.iter().position(|&v| v == leaf).unwrap();
        let pos_root = order.iter().position(|&v| v == root).unwrap();
        assert!(pos_leaf < pos_root);
    }

    #[test]
    fn query_tagging() {
        let mut cat = ViewCatalog::new();
        let v = cat.get_or_create(0, None, vec![AttrId(0)]);
        cat.tag_query(v, QueryId(3));
        cat.tag_query(v, QueryId(3));
        cat.tag_query(v, QueryId(5));
        assert_eq!(cat.view(v).queries, vec![QueryId(3), QueryId(5)]);
        assert!(cat.view(v).is_output());
    }

    #[test]
    fn computed_view_accumulates() {
        let mut cv = ComputedView::new(vec![AttrId(0)], 2);
        cv.add(vec![Value::Int(1)], &[1.0, 2.0]);
        cv.add(vec![Value::Int(1)], &[3.0, 4.0]);
        cv.add(vec![Value::Int(2)], &[1.0, 1.0]);
        cv.add_single(vec![Value::Int(2)], 1, 5.0);
        assert_eq!(cv.len(), 2);
        assert_eq!(cv.get(&[Value::Int(1)]), Some(&[4.0, 6.0][..]));
        assert_eq!(cv.get(&[Value::Int(2)]), Some(&[1.0, 6.0][..]));
        assert_eq!(cv.get(&[Value::Int(9)]), None);
        assert!(cv.size_bytes() > 0);
        assert_eq!(cv.iter().count(), 2);
    }

    #[test]
    fn consuming_merge_moves_entries() {
        let mut a = ComputedView::new(vec![AttrId(0)], 2);
        a.add(vec![Value::Int(1)], &[1.0, 2.0]);
        let mut b = ComputedView::new(vec![AttrId(0)], 2);
        b.add(vec![Value::Int(1)], &[10.0, 20.0]);
        b.add(vec![Value::Int(2)], &[5.0, 5.0]);
        a.merge_from(b);
        assert_eq!(a.get(&[Value::Int(1)]), Some(&[11.0, 22.0][..]));
        assert_eq!(a.get(&[Value::Int(2)]), Some(&[5.0, 5.0][..]));
        // Merging into an empty accumulator adopts the map wholesale.
        let mut empty = ComputedView::new(vec![AttrId(0)], 2);
        let mut c = ComputedView::new(vec![AttrId(0)], 2);
        c.add(vec![Value::Int(7)], &[1.0, 1.0]);
        empty.merge_from(c);
        assert_eq!(empty.len(), 1);
        // Drain empties the view.
        let drained: Vec<_> = empty.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(empty.is_empty());
    }

    #[test]
    fn signed_merge_and_retract() {
        let mut cv = ComputedView::new(vec![AttrId(0)], 2);
        cv.add(vec![Value::Int(1)], &[4.0, 6.0]);
        let mut delta = ComputedView::new(vec![AttrId(0)], 2);
        delta.add(vec![Value::Int(1)], &[1.0, 2.0]);
        delta.add(vec![Value::Int(2)], &[5.0, 0.0]);
        cv.merge_signed(&delta, 1.0);
        assert_eq!(cv.get(&[Value::Int(1)]), Some(&[5.0, 8.0][..]));
        assert_eq!(cv.get(&[Value::Int(2)]), Some(&[5.0, 0.0][..]));
        cv.retract(&delta);
        assert_eq!(cv.get(&[Value::Int(1)]), Some(&[4.0, 6.0][..]));
        assert_eq!(cv.get(&[Value::Int(2)]), Some(&[0.0, 0.0][..]));
        cv.prune_zero_entries();
        assert_eq!(cv.get(&[Value::Int(2)]), None, "all-zero entry pruned");
        assert_eq!(cv.len(), 1);
    }

    #[test]
    fn snapped_merge_kills_float_residue_but_keeps_real_values() {
        let mut cv = ComputedView::new(vec![AttrId(0)], 1);
        // 0.1 + 0.2 - 0.3 != 0.0 in floats: the classic residue.
        assert_ne!(0.1_f64 + 0.2 - 0.3, 0.0);
        let add = |v: f64| {
            let mut d = ComputedView::new(vec![AttrId(0)], 1);
            d.add(vec![Value::Int(1)], &[v]);
            d
        };
        let eps = 1e-11;
        let (a, b, c) = (add(0.1), add(0.2), add(0.3));
        cv.merge_signed_snapped(&a, 1.0, eps);
        cv.merge_signed_snapped(&b, 1.0, eps);
        cv.merge_signed_snapped(&c, -1.0, eps);
        assert_eq!(
            cv.get(&[Value::Int(1)]),
            Some(&[0.0][..]),
            "residue snapped"
        );
        cv.prune_zero_entries();
        assert!(cv.is_empty(), "snapped zero must prune");
        // A genuine small value far above rel_eps·|v| survives.
        let small = add(1e-6);
        cv.merge_signed_snapped(&small, 1.0, eps);
        assert_eq!(cv.get(&[Value::Int(1)]), Some(&[1e-6][..]));
    }

    #[test]
    fn exact_integer_sums_are_never_snapped() {
        use crate::snapshot::CANCELLATION_REL_EPS;
        // A count-like value of exactly 1.0 surviving a huge cancelling
        // delta: |1.0| ≤ CANCELLATION_REL_EPS · 1e12 = 10, so a guard based
        // on relative magnitude alone would snap it to zero. Integer-valued
        // sums carry no float residue, so they must always survive.
        let mut cv = ComputedView::new(vec![AttrId(0)], 1);
        cv.add(vec![Value::Int(1)], &[1e12 + 1.0]);
        let mut d = ComputedView::new(vec![AttrId(0)], 1);
        d.add(vec![Value::Int(1)], &[1e12]);
        cv.merge_signed_snapped(&d, -1.0, CANCELLATION_REL_EPS);
        assert_eq!(
            cv.get(&[Value::Int(1)]),
            Some(&[1.0][..]),
            "integer-valued result must never be snapped"
        );
        // And exact integer cancellation still reaches bit-exact zero.
        let mut one = ComputedView::new(vec![AttrId(0)], 1);
        one.add(vec![Value::Int(1)], &[1.0]);
        cv.merge_signed_snapped(&one, -1.0, CANCELLATION_REL_EPS);
        cv.prune_zero_entries();
        assert!(cv.is_empty(), "exact cancellation prunes");
    }

    #[test]
    fn arc_map_is_a_view_source() {
        let mut map: FxHashMap<ViewId, Arc<ComputedView>> = FxHashMap::default();
        map.insert(ViewId(3), Arc::new(ComputedView::new(vec![], 1)));
        assert!(map.view_result(ViewId(3)).is_some());
        assert!(map.view_result(ViewId(4)).is_none());
    }

    #[test]
    fn hash_map_is_a_view_source() {
        let mut map: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        map.insert(ViewId(3), ComputedView::new(vec![], 1));
        assert!(map.view_result(ViewId(3)).is_some());
        assert!(map.view_result(ViewId(4)).is_none());
    }

    #[test]
    fn scalar_view_access() {
        let mut cv = ComputedView::new(vec![], 1);
        assert!(cv.is_empty());
        cv.add(vec![], &[10.0]);
        cv.add(vec![], &[5.0]);
        assert_eq!(cv.scalar(), Some(&[15.0][..]));
    }

    #[test]
    fn view_term_helpers() {
        let t = ViewTerm {
            constant: 2.0,
            local: vec![
                ScalarFunction::Identity(AttrId(1)),
                ScalarFunction::Identity(AttrId(1)),
                ScalarFunction::Identity(AttrId(2)),
            ],
            child_refs: vec![],
        };
        assert_eq!(t.local_attrs(), vec![AttrId(1), AttrId(2)]);
        assert_eq!(ViewTerm::count().constant, 1.0);
        assert!(ViewAggregate::count().terms[0].local.is_empty());
    }
}
