//! A coalescing write buffer in front of the transactional commit path.
//!
//! High-rate update streams are full of churn: a row inserted and deleted
//! within the same batching window contributes nothing to any view, yet a
//! naive writer pays a full commit — scans, certificate, generation — for
//! both halves. A [`DeltaBuffer`] absorbs that churn *before* the engine
//! sees it: deltas accumulate into one pending [`Transaction`], cancelling
//! insert/delete pairs annihilate at flush time
//! ([`Transaction::coalesce`]), and the survivors commit as a single
//! multi-relation transaction — one DAG walk, one published generation.
//! A stream that fully cancels publishes **no** generation at all.
//!
//! Flushing is driven by two thresholds so the buffer bounds both work and
//! staleness: a *size* threshold (pending delta rows) caps how much a
//! single commit has to chew through, and a *latency* threshold (age of the
//! oldest buffered row) caps how long readers can lag the stream. The
//! buffer never flushes by itself — it has no thread and takes no locks;
//! the owner polls [`DeltaBuffer::should_flush`] (or calls
//! [`DeltaBuffer::flush`] directly, e.g. on shutdown) and commits the
//! returned transaction:
//!
//! ```
//! use lmfao_core::buffer::DeltaBuffer;
//! use std::time::Duration;
//!
//! let mut buffer = DeltaBuffer::new(1024, Duration::from_millis(50));
//! # let deltas: Vec<lmfao_data::TableDelta> = vec![];
//! for delta in deltas {
//!     buffer.push(delta);
//!     if buffer.should_flush() {
//!         if let Some(_txn) = buffer.flush() {
//!             // maintainer.commit(_txn, &dynamics)?;
//!         }
//!     }
//! }
//! ```

use lmfao_data::{TableDelta, Transaction};
use std::time::{Duration, Instant};

/// A size- and latency-bounded buffer that coalesces [`TableDelta`]s into
/// multi-relation [`Transaction`]s. See the [module docs](self).
#[derive(Debug)]
pub struct DeltaBuffer {
    pending: Transaction,
    max_ops: usize,
    max_age: Duration,
    /// When the oldest still-buffered row arrived; `None` while empty.
    opened: Option<Instant>,
    /// Non-empty deltas absorbed since the last flush.
    pushes: u64,
}

impl DeltaBuffer {
    /// A buffer that asks to flush once `max_ops` delta rows are pending or
    /// the oldest pending row is `max_age` old, whichever comes first.
    ///
    /// `max_ops == 0` or `max_age == Duration::ZERO` make every non-empty
    /// buffer immediately flushable — useful to keep the commit cadence of
    /// an unbuffered writer while still absorbing same-delta churn.
    pub fn new(max_ops: usize, max_age: Duration) -> Self {
        DeltaBuffer {
            pending: Transaction::new(),
            max_ops,
            max_age,
            opened: None,
            pushes: 0,
        }
    }

    /// Adds a delta to the pending transaction, merging it with any delta
    /// already buffered for the same relation. Ordered churn is resolved at
    /// flush time, so a push never fails: an insert cancelling a buffered
    /// delete (or vice versa) is legal here even though committing the pair
    /// directly would be [`crate::EngineError::ConflictingDelta`].
    pub fn push(&mut self, delta: TableDelta) {
        if delta.is_empty() {
            return;
        }
        self.opened.get_or_insert_with(Instant::now);
        self.pushes += 1;
        self.pending
            .push(delta)
            .expect("buffered deltas agree on their relation's schema");
    }

    /// Whether a threshold has been crossed: `true` once `max_ops` rows are
    /// pending or the oldest pending row is `max_age` old. An empty buffer
    /// never asks to flush.
    pub fn should_flush(&self) -> bool {
        match self.opened {
            None => false,
            Some(opened) => self.pending.len() >= self.max_ops || opened.elapsed() >= self.max_age,
        }
    }

    /// Drains the buffer, coalescing cancelling insert/delete pairs, and
    /// returns the surviving transaction — or `None` when nothing survives
    /// (empty buffer, or a stream that fully cancelled), in which case there
    /// is nothing to commit and no generation should be published.
    pub fn flush(&mut self) -> Option<Transaction> {
        self.opened = None;
        self.pushes = 0;
        let txn = std::mem::take(&mut self.pending).coalesce();
        (!txn.is_empty()).then_some(txn)
    }

    /// Pending delta rows (inserts + deletes), before coalescing.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Non-empty deltas pushed since the last flush — the count a pipelined
    /// writer reads *before* flushing to account for coalesced commits in
    /// delta units rather than rows.
    pub fn pushes_since_flush(&self) -> u64 {
        self.pushes
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Distinct relations with pending deltas.
    pub fn num_relations(&self) -> usize {
        self.pending.num_relations()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrId, RelationSchema, Value};

    fn delta(rows: &[(i64, f64, bool)]) -> TableDelta {
        let schema = RelationSchema::new("Sales", vec![AttrId(0), AttrId(1)]);
        let mut d = TableDelta::new(schema);
        for &(a, b, insert) in rows {
            let row = vec![Value::Int(a), Value::Double(b)];
            if insert {
                d.insert(&row).unwrap();
            } else {
                d.delete(&row).unwrap();
            }
        }
        d
    }

    #[test]
    fn empty_buffer_never_flushes() {
        let mut buffer = DeltaBuffer::new(0, Duration::ZERO);
        assert!(buffer.is_empty());
        assert!(
            !buffer.should_flush(),
            "both thresholds are moot when empty"
        );
        assert!(buffer.flush().is_none());
    }

    #[test]
    fn size_threshold_triggers_flush() {
        let mut buffer = DeltaBuffer::new(3, Duration::from_secs(3600));
        buffer.push(delta(&[(1, 1.0, true)]));
        assert!(!buffer.should_flush());
        buffer.push(delta(&[(2, 2.0, true), (3, 3.0, true)]));
        assert!(buffer.should_flush(), "3 rows pending >= max_ops 3");
        let txn = buffer.flush().expect("rows survive");
        assert_eq!(txn.len(), 3);
        assert!(buffer.is_empty(), "flush drains");
        assert!(!buffer.should_flush(), "the age clock reset");
    }

    #[test]
    fn age_threshold_triggers_flush() {
        let mut buffer = DeltaBuffer::new(usize::MAX, Duration::ZERO);
        assert!(!buffer.should_flush());
        buffer.push(delta(&[(1, 1.0, true)]));
        assert!(
            buffer.should_flush(),
            "zero max_age: any pending row is old"
        );
    }

    #[test]
    fn fully_cancelling_stream_flushes_to_nothing() {
        let mut buffer = DeltaBuffer::new(0, Duration::ZERO);
        buffer.push(delta(&[(1, 1.0, true), (2, 2.0, true)]));
        buffer.push(delta(&[(2, 2.0, false)]));
        buffer.push(delta(&[(1, 1.0, false)]));
        assert_eq!(buffer.len(), 4);
        assert!(
            buffer.flush().is_none(),
            "every insert met its delete: nothing to commit"
        );
        assert!(buffer.is_empty());
    }

    #[test]
    fn churn_coalesces_to_the_net_change() {
        let mut buffer = DeltaBuffer::new(0, Duration::ZERO);
        buffer.push(delta(&[(1, 1.0, true), (2, 2.0, true)]));
        buffer.push(delta(&[(1, 1.0, false), (3, 3.0, true)]));
        let txn = buffer.flush().expect("net change survives");
        assert_eq!(txn.len(), 2, "insert+delete of row 1 annihilated");
        let d = txn.delta_for("Sales").unwrap();
        assert_eq!(d.num_inserts(), 2);
        assert_eq!(d.num_deletes(), 0);
    }

    #[test]
    fn pushes_merge_per_relation() {
        let other = {
            let schema = RelationSchema::new("Items", vec![AttrId(2), AttrId(3)]);
            let mut d = TableDelta::new(schema);
            d.insert(&[Value::Int(7), Value::Double(7.0)]).unwrap();
            d
        };
        let mut buffer = DeltaBuffer::new(0, Duration::ZERO);
        buffer.push(delta(&[(1, 1.0, true)]));
        buffer.push(other);
        buffer.push(delta(&[(2, 2.0, true)]));
        assert_eq!(buffer.num_relations(), 2);
        let txn = buffer.flush().unwrap();
        assert_eq!(txn.num_relations(), 2);
        assert_eq!(txn.delta_for("Sales").unwrap().len(), 2);
        assert_eq!(txn.delta_for("Items").unwrap().len(), 1);
    }
}
