//! # lmfao-core
//!
//! The LMFAO engine: layered optimization and execution of large batches of
//! group-by aggregates over the natural join of a database, following
//! "A Layered Aggregate Engine for Analytics Workloads" (SIGMOD 2019).
//!
//! The layers, in order:
//! 1. join tree (from `lmfao-jointree`),
//! 2. [`roots`] — a root per query,
//! 3. [`pushdown`] — decomposition into directional views + view merging,
//! 4. [`group`] — view groups and their dependency graph,
//! 5. [`plan`] — multi-output physical plans (attribute orders, registers),
//! 6. [`exec`] — specialized execution, [`interp`] — the unoptimized proxy,
//! 7. [`parallel`] — task and domain parallelism,
//! 8. [`engine`] — the façade tying everything together.
//!
//! The public workflow is *prepare once, execute many*: [`Engine::prepare`]
//! runs layers 2–5 once and caches the result as a [`PreparedBatch`] over a
//! [`SharedDatabase`] handle; [`PreparedBatch::execute`] runs only the scans,
//! so batches with changing dynamic functions (decision-tree predicates,
//! iteration weights) never pay for planning twice. When base relations
//! receive updates, [`PreparedBatch::into_maintained`] promotes the batch to
//! live materialized state ([`maintain`]): a [`MaintainedBatch`] retains
//! every computed view and commits [`lmfao_data::Transaction`]s — atomic
//! sets of signed [`lmfao_data::TableDelta`]s over one or more relations —
//! in a single DAG walk each, with work proportional to the deltas instead
//! of recomputing. A [`DeltaBuffer`] ([`buffer`]) coalesces churny update
//! streams into such transactions. For concurrent serving,
//! [`PreparedBatch::into_serving`] splits that state into an immutable,
//! epoch-published [`ViewSnapshot`] and a [`Maintainer`] writer
//! ([`snapshot`]): readers pin whatever generation they load through a
//! [`SnapshotHandle`] and never block on a refresh — a contract the
//! black-box snapshot-isolation checker ([`isocheck`]) validates from
//! recorded read/commit histories. Planning and execution failures surface
//! as typed [`EngineError`]s.
//!
//! Trust: [`PreparedBatch::execute_certified`] and every published
//! [`ViewSnapshot`] emit versioned, integer/fixed-point *execution
//! certificates* ([`lmfao_certify::Certificate`]) — provenance and signed
//! delta accounting that the independent `lmfao-certify` crate re-checks
//! without sharing any execution code with this one.

#![warn(missing_docs)]

mod certificate;

pub mod buffer;
pub mod config;
pub mod engine;
pub mod error;
pub mod exec;
pub mod group;
pub mod interp;
pub mod isocheck;
pub mod maintain;
pub mod parallel;
pub mod plan;
pub mod prepared;
pub mod pushdown;
pub mod roots;
pub mod shared;
pub mod snapshot;
pub mod view;

pub use buffer::DeltaBuffer;
pub use config::EngineConfig;
pub use engine::{BatchResult, Engine, EngineStats, QueryResult};
pub use error::EngineError;
pub use isocheck::{check_history, snapshot_digest, CommitEvent, History, IsoViolation, ReadEvent};
pub use maintain::{MaintainedBatch, RefreshStats};
pub use prepared::PreparedBatch;
pub use shared::SharedDatabase;
pub use snapshot::{
    Maintainer, SnapshotHandle, ViewSnapshot, CANCELLATION_REL_EPS, DEFAULT_HISTORY_WINDOW,
};
pub use view::{ComputedView, ViewCatalog, ViewDef, ViewId, ViewSource};

#[cfg(test)]
mod smoke {
    use super::*;
    use lmfao_data::{AttrType, Database, DatabaseSchema, Relation, Value};
    use lmfao_expr::{Aggregate, QueryBatch};
    use lmfao_jointree::{build_join_tree, Hypergraph};

    /// Exercises the crate-level surface end to end: the engine computes a
    /// scalar and a group-by aggregate over a two-relation join.
    #[test]
    fn engine_runs_a_tiny_batch() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let store = schema.attr_id("store").unwrap();
        let units = schema.attr_id("units").unwrap();
        let price = schema.attr_id("price").unwrap();
        let sales = Relation::from_rows(
            schema.relation("Sales").unwrap().clone(),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
            ],
        )
        .unwrap();
        let items = Relation::from_rows(
            schema.relation("Items").unwrap().clone(),
            vec![vec![Value::Int(1), Value::Double(10.0)]],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        let tree = build_join_tree(&Hypergraph::from_schema(&schema)).unwrap();

        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch.push(
            "revenue",
            vec![],
            vec![Aggregate::sum_product(units, price)],
        );
        batch.push("per_store", vec![store], vec![Aggregate::sum(units)]);

        let engine = Engine::new(db, tree, EngineConfig::default());
        let result = engine.execute(&batch).unwrap();
        assert_eq!(result.queries[0].scalar()[0], 2.0);
        assert_eq!(result.queries[1].scalar()[0], 80.0);
        assert_eq!(result.queries[2].get(&[Value::Int(1)]).unwrap()[0], 3.0);
        assert_eq!(result.queries[2].get(&[Value::Int(2)]).unwrap()[0], 5.0);
    }
}
