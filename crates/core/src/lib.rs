//! # lmfao-core
//!
//! The LMFAO engine: layered optimization and execution of large batches of
//! group-by aggregates over the natural join of a database, following
//! "A Layered Aggregate Engine for Analytics Workloads" (SIGMOD 2019).
//!
//! The layers, in order:
//! 1. join tree (from `lmfao-jointree`),
//! 2. [`roots`] — a root per query,
//! 3. [`pushdown`] — decomposition into directional views + view merging,
//! 4. [`group`] — view groups and their dependency graph,
//! 5. [`plan`] — multi-output physical plans (attribute orders, registers),
//! 6. [`exec`] — specialized execution, [`interp`] — the unoptimized proxy,
//! 7. [`parallel`] — task and domain parallelism,
//! 8. [`engine`] — the façade tying everything together.

#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod exec;
pub mod group;
pub mod interp;
pub mod parallel;
pub mod plan;
pub mod pushdown;
pub mod roots;
pub mod view;

pub use config::EngineConfig;
pub use engine::{BatchResult, Engine, EngineStats, QueryResult};
pub use view::{ComputedView, ViewCatalog, ViewDef, ViewId};
