//! The Parallelization layer: task and domain parallelism over view groups.
//!
//! LMFAO parallelizes along two axes (Section 1.2):
//!
//! * **task parallelism** — view groups that do not depend on each other run
//!   concurrently; the group dependency graph from [`crate::group`] is
//!   processed in topological waves and the groups of a wave are distributed
//!   over worker threads;
//! * **domain parallelism** — the relation scanned by a group is partitioned
//!   into row ranges, one thread per partition, and the partial results are
//!   merged by element-wise addition (valid because every view aggregate is a
//!   sum over the scanned tuples).

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::exec::execute_group;
use crate::group::Grouping;
use crate::plan::GroupPlan;
use crate::view::{ComputedView, ViewId};
use lmfao_data::{Database, FxHashMap};
use lmfao_expr::DynamicRegistry;

/// Merges `other` into `acc` by element-wise addition of aggregate payloads.
pub fn merge_computed(acc: &mut ComputedView, other: &ComputedView) {
    for (key, values) in other.iter() {
        acc.add(key.clone(), values);
    }
}

/// Folds a batch of `(view, result)` pairs into the accumulator map: results
/// for a view already present merge by element-wise addition (domain-parallel
/// partials), new views are inserted (task-parallel group outputs). Keyed by
/// the hash map, so the cost is O(results), not O(results · views).
fn merge_results(acc: &mut FxHashMap<ViewId, ComputedView>, results: Vec<(ViewId, ComputedView)>) {
    for (vid, cv) in results {
        match acc.entry(vid) {
            std::collections::hash_map::Entry::Occupied(mut e) => merge_computed(e.get_mut(), &cv),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cv);
            }
        }
    }
}

/// Splits `len` rows into at most `parts` contiguous ranges.
fn partitions(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let chunk = len.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    while start < len {
        let end = (start + chunk).min(len);
        out.push(start..end);
        start = end;
    }
    if out.is_empty() {
        out.push(0..0);
    }
    out
}

/// Executes one group, using domain parallelism when more than one thread is
/// available and the relation is large enough to be worth splitting.
fn execute_group_parallel(
    db: &Database,
    plan: &GroupPlan,
    computed: &FxHashMap<ViewId, ComputedView>,
    dynamics: &DynamicRegistry,
    threads: usize,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    const MIN_ROWS_PER_THREAD: usize = 4_096;
    let len = db
        .relation(&plan.relation)
        .map(lmfao_data::Relation::len)
        .unwrap_or(0);
    if threads <= 1 || len < 2 * MIN_ROWS_PER_THREAD {
        return execute_group(db, plan, computed, dynamics, None);
    }
    let parts = partitions(len, threads);
    let results: Vec<Result<Vec<(ViewId, ComputedView)>, EngineError>> =
        crossbeam::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|range| {
                    scope.spawn(move |_| execute_group(db, plan, computed, dynamics, Some(range)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("domain-parallel scope must not panic");

    // Merge the per-partition partials keyed by view id (partials arrive and
    // merge in partition order, keeping float addition deterministic).
    let mut merged: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
    for partial in results {
        merge_results(&mut merged, partial?);
    }
    Ok(merged.into_iter().collect())
}

/// Executes all groups of a grouping in dependency order, parallelizing
/// independent groups (task parallelism) and large scans (domain
/// parallelism) according to the configuration. Returns the computed result
/// of every view.
pub fn execute_all(
    db: &Database,
    plans: &[GroupPlan],
    grouping: &Grouping,
    dynamics: &DynamicRegistry,
    config: &EngineConfig,
) -> Result<FxHashMap<ViewId, ComputedView>, EngineError> {
    let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
    let mut done = vec![false; grouping.len()];
    let mut remaining = grouping.len();

    while remaining > 0 {
        // A wave: all groups whose dependencies are already computed.
        let wave: Vec<usize> = (0..grouping.len())
            .filter(|&g| !done[g] && grouping.dependencies[g].iter().all(|&d| done[d]))
            .collect();
        assert!(
            !wave.is_empty(),
            "group dependency graph must be acyclic and complete"
        );

        if config.threads > 1 && wave.len() > 1 {
            // Task parallelism across the groups of the wave.
            let computed_ref = &computed;
            let results: Vec<Result<Vec<(ViewId, ComputedView)>, EngineError>> =
                crossbeam::scope(|scope| {
                    let handles: Vec<_> = wave
                        .iter()
                        .map(|&g| {
                            let plan = &plans[g];
                            scope.spawn(move |_| {
                                execute_group(db, plan, computed_ref, dynamics, None)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                })
                .expect("task-parallel scope must not panic");
            for group_result in results {
                merge_results(&mut computed, group_result?);
            }
        } else {
            // Sequential over the wave; each group may still use domain
            // parallelism internally.
            for &g in &wave {
                let result =
                    execute_group_parallel(db, &plans[g], &computed, dynamics, config.threads)?;
                merge_results(&mut computed, result);
            }
        }

        for g in wave {
            done[g] = true;
            remaining -= 1;
        }
    }
    Ok(computed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrId, Value};

    #[test]
    fn partitions_cover_the_range_without_overlap() {
        for (len, parts) in [(10, 3), (100, 4), (5, 8), (0, 2), (1, 1)] {
            let ps = partitions(len, parts);
            let mut covered = 0;
            let mut prev_end = 0;
            for p in &ps {
                assert_eq!(p.start, prev_end);
                covered += p.len();
                prev_end = p.end;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn merge_results_sums_existing_views_and_inserts_new_ones() {
        let mut acc: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        let mut a = ComputedView::new(vec![AttrId(0)], 1);
        a.add(vec![Value::Int(1)], &[1.0]);
        merge_results(&mut acc, vec![(ViewId(0), a)]);
        let mut b = ComputedView::new(vec![AttrId(0)], 1);
        b.add(vec![Value::Int(1)], &[2.0]);
        let mut c = ComputedView::new(vec![AttrId(1)], 1);
        c.add(vec![Value::Int(9)], &[5.0]);
        merge_results(&mut acc, vec![(ViewId(0), b), (ViewId(1), c)]);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[&ViewId(0)].get(&[Value::Int(1)]).unwrap(), &[3.0]);
        assert_eq!(acc[&ViewId(1)].get(&[Value::Int(9)]).unwrap(), &[5.0]);
    }

    #[test]
    fn merge_computed_sums_payloads() {
        let mut a = ComputedView::new(vec![AttrId(0)], 2);
        a.add(vec![Value::Int(1)], &[1.0, 2.0]);
        let mut b = ComputedView::new(vec![AttrId(0)], 2);
        b.add(vec![Value::Int(1)], &[10.0, 20.0]);
        b.add(vec![Value::Int(2)], &[5.0, 5.0]);
        merge_computed(&mut a, &b);
        assert_eq!(a.get(&[Value::Int(1)]).unwrap(), &[11.0, 22.0]);
        assert_eq!(a.get(&[Value::Int(2)]).unwrap(), &[5.0, 5.0]);
    }
}
