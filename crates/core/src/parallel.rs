//! The Parallelization layer: a morsel-driven scheduler over view groups.
//!
//! LMFAO parallelizes along two axes (Section 1.2): **task parallelism** —
//! view groups that do not depend on each other run concurrently — and
//! **domain parallelism** — the relation scanned by a group is decomposed
//! into row ranges whose partial results merge by element-wise addition
//! (valid because every view aggregate is a sum over the scanned tuples).
//!
//! Both axes are served by one scheduler: [`execute_all`] spawns a single
//! persistent worker pool per call and drives a dependency-counted ready
//! queue over the groups of a [`Grouping`]. A group becomes runnable the
//! moment its last dependency finishes — there is no inter-wave barrier —
//! and its scan is decomposed into [`MORSEL_ROWS`]-row *morsels* claimed
//! from a shared atomic cursor, so workers stay busy on skewed groups
//! instead of idling behind one long partition.
//!
//! **Determinism.** Per-morsel partials are buffered per group and folded in
//! morsel-index order by the worker that finishes the group's last morsel,
//! and every view is produced by exactly one group — so the result of a run
//! does not depend on thread timing. For a fixed [`MORSEL_ROWS`] the merged
//! float sums are identical across all thread counts `> 1`; they can differ
//! from `threads = 1` (one unsplit scan per group) only by float-addition
//! reassociation at morsel boundaries, which is exact — bit-identical — for
//! integer-valued aggregates within 2⁵³ (counts, and all generated bench
//! measures).
//!
//! Worker panics surface as [`EngineError::WorkerPanicked`] instead of
//! aborting the process; the first error (panic or typed) cancels the
//! remaining queue.
//!
//! The *incremental* counterpart of this scheduler lives in
//! [`crate::snapshot`]: a commit's union frontier — the transitive
//! dependents of the touched relations — is walked with the same
//! dependency-counted ready-queue discipline (task parallelism across
//! independent view groups), while each group's delta scan reuses the
//! crate-internal `scan_morsels` for domain parallelism. See "The parallel
//! frontier walk" in the [`crate::snapshot`] module docs.

use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::exec::{execute_group, execute_group_scan};
use crate::group::Grouping;
use crate::plan::GroupPlan;
use crate::view::{ComputedView, ViewId, ViewSource};
use lmfao_data::{Database, FxHashMap, Relation};
use lmfao_expr::DynamicRegistry;
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Rows per morsel: large enough that per-morsel overhead (trie range setup,
/// partial-map allocation) is negligible, small enough that 8+ workers share
/// even a single skewed group scan.
pub const MORSEL_ROWS: usize = 65_536;

/// Merges `other` into `acc` by element-wise addition, consuming `other` so
/// key tuples move instead of being cloned.
pub fn merge_computed(acc: &mut ComputedView, other: ComputedView) {
    acc.merge_from(other);
}

/// Folds a batch of `(view, result)` pairs into the accumulator map: results
/// for a view already present merge by element-wise addition (domain-parallel
/// partials), new views are inserted (task-parallel group outputs). Keyed by
/// the hash map, so the cost is O(results), not O(results · views).
fn merge_results(acc: &mut FxHashMap<ViewId, ComputedView>, results: Vec<(ViewId, ComputedView)>) {
    for (vid, cv) in results {
        match acc.entry(vid) {
            std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge_from(cv),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(cv);
            }
        }
    }
}

/// The row range of morsel `index` in a `rows`-row scan.
fn morsel_range(rows: usize, index: usize) -> Range<usize> {
    let start = index * MORSEL_ROWS;
    start..rows.min(start + MORSEL_ROWS)
}

/// Number of morsels of a `rows`-row scan (at least one, so empty relations
/// still run their group once and produce the empty output views).
fn morsel_count(rows: usize) -> usize {
    rows.div_ceil(MORSEL_ROWS).max(1)
}

/// Renders a panic payload for [`EngineError::WorkerPanicked`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Locks a scheduler mutex, ignoring poisoning: a panicked worker already
/// recorded (or will surface as) a typed error, so survivors may keep
/// reading the state to shut down cleanly.
fn lock_ignore_poison<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A runnable group: all dependencies complete, scan decomposed into morsels
/// claimed from the shared cursor.
struct GroupJob {
    gid: usize,
    rows: usize,
    num_morsels: usize,
    /// Next unclaimed morsel index (advanced under the scheduler lock).
    cursor: AtomicUsize,
    /// Snapshot of the incoming views the group's plan probes, taken when
    /// the job was enqueued (its dependencies were complete then, so every
    /// needed view exists and can no longer change).
    incoming: FxHashMap<ViewId, Arc<ComputedView>>,
}

/// Morsel partials of an in-flight group, indexed by morsel.
struct GroupPartials {
    finished: usize,
    slots: Vec<Option<Vec<(ViewId, ComputedView)>>>,
}

/// Scheduler state shared by the worker pool.
struct Sched {
    /// Runnable jobs in dependency-completion order. The front job's morsels
    /// are claimed first; a job is popped when its last morsel is claimed.
    queue: VecDeque<Arc<GroupJob>>,
    /// Unfinished-dependency count per group.
    indegree: Vec<usize>,
    /// Completed view results (published when their group's last morsel
    /// merge finishes).
    computed: FxHashMap<ViewId, Arc<ComputedView>>,
    /// Partials of groups whose morsels are still being scanned.
    partials: FxHashMap<usize, GroupPartials>,
    /// Groups not yet completed.
    remaining: usize,
    /// First error raised by any worker; set once, cancels the queue.
    error: Option<EngineError>,
}

/// Everything a worker borrows.
struct Pool<'a> {
    db: &'a Database,
    plans: &'a [GroupPlan],
    dependents: Vec<Vec<usize>>,
    state: Mutex<Sched>,
    wake: Condvar,
}

impl Pool<'_> {
    /// Builds the job for `gid`: snapshots its incoming views (dependencies
    /// are complete when this is called) and sizes the morsel cursor.
    fn make_job(&self, gid: usize, sched: &Sched) -> Arc<GroupJob> {
        let plan = &self.plans[gid];
        let rows = self
            .db
            .relation(&plan.relation)
            .map(Relation::len)
            .unwrap_or(0);
        let incoming: FxHashMap<ViewId, Arc<ComputedView>> = plan
            .incoming
            .iter()
            .filter_map(|inc| {
                sched
                    .computed
                    .get(&inc.view)
                    .map(|cv| (inc.view, Arc::clone(cv)))
            })
            .collect();
        Arc::new(GroupJob {
            gid,
            rows,
            num_morsels: morsel_count(rows),
            cursor: AtomicUsize::new(0),
            incoming,
        })
    }

    /// Records `error` (first writer wins) and wakes every worker.
    fn fail(&self, error: EngineError) {
        let mut sched = lock_ignore_poison(&self.state);
        if sched.error.is_none() {
            sched.error = Some(error);
        }
        sched.queue.clear();
        drop(sched);
        self.wake.notify_all();
    }

    /// The worker loop: claim a morsel, scan it, merge on group completion,
    /// release newly-ready dependents.
    fn work(&self, dynamics: &DynamicRegistry) {
        loop {
            // Claim the next morsel from the front job's cursor.
            let (job, morsel) = {
                let mut sched = lock_ignore_poison(&self.state);
                loop {
                    if sched.error.is_some() || sched.remaining == 0 {
                        return;
                    }
                    if let Some(front) = sched.queue.front() {
                        let job = Arc::clone(front);
                        let m = job.cursor.fetch_add(1, Ordering::Relaxed);
                        debug_assert!(m < job.num_morsels, "claimed morsel past the cursor end");
                        if m + 1 == job.num_morsels {
                            sched.queue.pop_front();
                        }
                        break (job, m);
                    }
                    sched = self
                        .wake
                        .wait(sched)
                        .unwrap_or_else(PoisonError::into_inner);
                }
            };

            // Scan the morsel outside the lock; a panic becomes a typed error.
            let plan = &self.plans[job.gid];
            let range = morsel_range(job.rows, morsel);
            let scanned = catch_unwind(AssertUnwindSafe(|| {
                execute_group(self.db, plan, &job.incoming, dynamics, Some(range))
            }));
            let partial = match scanned {
                Ok(Ok(partial)) => partial,
                Ok(Err(e)) => {
                    self.fail(e);
                    return;
                }
                Err(payload) => {
                    self.fail(EngineError::WorkerPanicked(panic_message(payload.as_ref())));
                    return;
                }
            };

            // Record the partial; the worker finishing the group's last
            // morsel folds them in morsel-index order and publishes.
            let to_merge = {
                let mut sched = lock_ignore_poison(&self.state);
                if sched.error.is_some() {
                    return;
                }
                let entry = sched
                    .partials
                    .entry(job.gid)
                    .or_insert_with(|| GroupPartials {
                        finished: 0,
                        slots: (0..job.num_morsels).map(|_| None).collect(),
                    });
                entry.slots[morsel] = Some(partial);
                entry.finished += 1;
                if entry.finished == job.num_morsels {
                    sched.partials.remove(&job.gid)
                } else {
                    None
                }
            };
            let Some(parts) = to_merge else { continue };

            // Deterministic fold outside the lock: morsel 0 first, then 1, …
            let folded = catch_unwind(AssertUnwindSafe(|| {
                let mut merged: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
                for slot in parts.slots {
                    merge_results(&mut merged, slot.expect("every morsel partial recorded"));
                }
                merged
            }));
            let merged = match folded {
                Ok(m) => m,
                Err(payload) => {
                    self.fail(EngineError::WorkerPanicked(panic_message(payload.as_ref())));
                    return;
                }
            };

            // Publish the group's views and release dependents whose last
            // dependency this was.
            {
                let mut sched = lock_ignore_poison(&self.state);
                for (vid, cv) in merged {
                    sched.computed.insert(vid, Arc::new(cv));
                }
                for &dep in &self.dependents[job.gid] {
                    sched.indegree[dep] -= 1;
                    if sched.indegree[dep] == 0 {
                        let ready = self.make_job(dep, &sched);
                        sched.queue.push_back(ready);
                    }
                }
                sched.remaining -= 1;
            }
            self.wake.notify_all();
        }
    }
}

/// Executes all groups of a grouping in dependency order on a morsel-driven
/// worker pool (task parallelism across ready groups, domain parallelism
/// within each scan). With `threads = 1` the scheduler is bypassed entirely:
/// groups run one unsplit scan each, in topological order — the reference
/// execution the parallel results are measured against. Returns the computed
/// result of every view.
pub fn execute_all(
    db: &Database,
    plans: &[GroupPlan],
    grouping: &Grouping,
    dynamics: &DynamicRegistry,
    config: &EngineConfig,
) -> Result<FxHashMap<ViewId, ComputedView>, EngineError> {
    if config.threads <= 1 || grouping.is_empty() {
        let mut computed: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        for gid in grouping.topological_order() {
            let result = execute_group(db, &plans[gid], &computed, dynamics, None)?;
            merge_results(&mut computed, result);
        }
        return Ok(computed);
    }

    // Dependency counts and reverse edges for the ready queue.
    let n = grouping.len();
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (g, deps) in grouping.dependencies.iter().enumerate() {
        indegree[g] = deps.len();
        for &d in deps {
            dependents[d].push(g);
        }
    }

    let pool = Pool {
        db,
        plans,
        dependents,
        state: Mutex::new(Sched {
            queue: VecDeque::new(),
            indegree,
            computed: FxHashMap::default(),
            partials: FxHashMap::default(),
            remaining: n,
            error: None,
        }),
        wake: Condvar::new(),
    };
    {
        let mut sched = lock_ignore_poison(&pool.state);
        let seeds: Vec<Arc<GroupJob>> = (0..n)
            .filter(|&g| sched.indegree[g] == 0)
            .map(|g| pool.make_job(g, &sched))
            .collect();
        sched.queue.extend(seeds);
    }

    // One persistent pool for the whole call; every worker runs until the
    // queue drains or an error cancels it. Panics that escape the per-morsel
    // guards (they should not) still surface as the typed error via `join`.
    let mut worker_panic: Option<EngineError> = None;
    crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..config.threads)
            .map(|_| scope.spawn(|_| pool.work(dynamics)))
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                worker_panic
                    .get_or_insert(EngineError::WorkerPanicked(panic_message(payload.as_ref())));
            }
        }
    })
    .map_err(|payload| EngineError::WorkerPanicked(panic_message(payload.as_ref())))?;

    let mut sched = lock_ignore_poison(&pool.state);
    if let Some(e) = sched.error.take() {
        return Err(e);
    }
    if let Some(e) = worker_panic {
        return Err(e);
    }
    debug_assert_eq!(sched.remaining, 0, "scheduler exited with groups pending");
    let computed = std::mem::take(&mut sched.computed);
    drop(sched);
    Ok(computed
        .into_iter()
        .map(|(vid, cv)| {
            let cv = Arc::try_unwrap(cv).unwrap_or_else(|arc| (*arc).clone());
            (vid, cv)
        })
        .collect())
}

/// Morsel-parallel variant of [`execute_group_scan`] for the maintenance
/// layer's full-relation propagation scans: the scan is decomposed into
/// [`MORSEL_ROWS`]-row morsels claimed from a shared atomic cursor and the
/// partials fold in morsel-index order (same determinism guarantee as
/// [`execute_all`]). Small scans and `threads = 1` run unsplit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_morsels<V: ViewSource + Sync>(
    relation: &Relation,
    num_attrs: usize,
    plan: &GroupPlan,
    computed: &V,
    dynamics: &DynamicRegistry,
    slot_mask: Option<&[bool]>,
    threads: usize,
) -> Result<Vec<(ViewId, ComputedView)>, EngineError> {
    let rows = relation.len();
    if threads <= 1 || rows <= MORSEL_ROWS {
        return execute_group_scan(
            relation, num_attrs, plan, computed, dynamics, None, slot_mask,
        );
    }
    let num_morsels = morsel_count(rows);
    let cursor = AtomicUsize::new(0);
    type Partial = Vec<(ViewId, ComputedView)>;
    let worker = || -> Result<Vec<(usize, Partial)>, EngineError> {
        let mut out = Vec::new();
        loop {
            let m = cursor.fetch_add(1, Ordering::Relaxed);
            if m >= num_morsels {
                return Ok(out);
            }
            let range = morsel_range(rows, m);
            let scanned = catch_unwind(AssertUnwindSafe(|| {
                execute_group_scan(
                    relation,
                    num_attrs,
                    plan,
                    computed,
                    dynamics,
                    Some(range),
                    slot_mask,
                )
            }));
            match scanned {
                Ok(Ok(partial)) => out.push((m, partial)),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    return Err(EngineError::WorkerPanicked(panic_message(payload.as_ref())))
                }
            }
        }
    };
    let joined: Vec<Result<Vec<(usize, Partial)>, EngineError>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..threads.min(num_morsels))
            .map(|_| scope.spawn(|_| worker()))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|payload| {
                    Err(EngineError::WorkerPanicked(panic_message(payload.as_ref())))
                })
            })
            .collect()
    })
    .map_err(|payload| EngineError::WorkerPanicked(panic_message(payload.as_ref())))?;

    // Deterministic fold: sort all partials by morsel index, merge in order.
    let mut indexed: Vec<(usize, Partial)> = Vec::with_capacity(num_morsels);
    for worker_out in joined {
        indexed.extend(worker_out?);
    }
    indexed.sort_by_key(|(m, _)| *m);
    let mut merged: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
    let mut order: Vec<ViewId> = Vec::new();
    for (_, partial) in indexed {
        for (vid, _) in &partial {
            if !merged.contains_key(vid) {
                order.push(*vid);
            }
        }
        merge_results(&mut merged, partial);
    }
    // Preserve the plan's output order (callers zip scans positionally).
    Ok(order
        .into_iter()
        .map(|vid| {
            let cv = merged.remove(&vid).expect("merged view present");
            (vid, cv)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrId, Value};

    #[test]
    fn morsel_ranges_cover_the_scan_without_overlap() {
        for rows in [
            0,
            1,
            MORSEL_ROWS - 1,
            MORSEL_ROWS,
            MORSEL_ROWS + 1,
            1_000_000,
        ] {
            let n = morsel_count(rows);
            assert!(n >= 1);
            let mut covered = 0;
            let mut prev_end = 0;
            for m in 0..n {
                let r = morsel_range(rows, m);
                assert_eq!(r.start, prev_end);
                covered += r.len();
                prev_end = r.end;
            }
            assert_eq!(covered, rows, "rows = {rows}");
            assert_eq!(prev_end, rows);
        }
    }

    #[test]
    fn merge_results_sums_existing_views_and_inserts_new_ones() {
        let mut acc: FxHashMap<ViewId, ComputedView> = FxHashMap::default();
        let mut a = ComputedView::new(vec![AttrId(0)], 1);
        a.add(vec![Value::Int(1)], &[1.0]);
        merge_results(&mut acc, vec![(ViewId(0), a)]);
        let mut b = ComputedView::new(vec![AttrId(0)], 1);
        b.add(vec![Value::Int(1)], &[2.0]);
        let mut c = ComputedView::new(vec![AttrId(1)], 1);
        c.add(vec![Value::Int(9)], &[5.0]);
        merge_results(&mut acc, vec![(ViewId(0), b), (ViewId(1), c)]);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[&ViewId(0)].get(&[Value::Int(1)]).unwrap(), &[3.0]);
        assert_eq!(acc[&ViewId(1)].get(&[Value::Int(9)]).unwrap(), &[5.0]);
    }

    #[test]
    fn merge_computed_sums_payloads_and_moves_keys() {
        let mut a = ComputedView::new(vec![AttrId(0)], 2);
        a.add(vec![Value::Int(1)], &[1.0, 2.0]);
        let mut b = ComputedView::new(vec![AttrId(0)], 2);
        b.add(vec![Value::Int(1)], &[10.0, 20.0]);
        b.add(vec![Value::Int(2)], &[5.0, 5.0]);
        merge_computed(&mut a, b);
        assert_eq!(a.get(&[Value::Int(1)]).unwrap(), &[11.0, 22.0]);
        assert_eq!(a.get(&[Value::Int(2)]).unwrap(), &[5.0, 5.0]);
    }

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(s.as_ref()), "boom");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("kaput"));
        assert_eq!(panic_message(owned.as_ref()), "kaput");
        let other: Box<dyn std::any::Any + Send> = Box::new(17usize);
        assert!(panic_message(other.as_ref()).contains("non-string"));
    }
}
