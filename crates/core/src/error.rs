//! Typed engine errors.
//!
//! Planning and execution failures used to surface as panics
//! (`expect("group relation must exist")`) or as silently-empty results (the
//! old `IncomingData::Missing` path that treated an uncomputed dependency
//! view as empty). Both are now typed [`EngineError`]s surfaced through
//! [`crate::engine::Engine::prepare`] / [`crate::prepared::PreparedBatch::execute`]
//! and through the maintenance API ([`crate::maintain::MaintainedBatch`]).

use crate::view::ViewId;
use lmfao_data::DataError;
use std::fmt;

/// Errors raised by the planning, execution and maintenance layers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A join-tree node references a relation the database does not have.
    UnknownRelation(String),
    /// A plan could not be lowered against the database schema.
    InvalidPlan(String),
    /// Execution needed a view that has not been computed — a dependency
    /// scheduling bug, no longer masked as an empty view.
    ViewNotComputed(ViewId),
    /// A delta could not be applied (unknown target, unmatched delete, …).
    Data(DataError),
    /// A result lookup named a query the batch does not contain. Callers that
    /// serve user-supplied query names (the serving loop) get a typed error
    /// instead of a panic or a silent `None`.
    UnknownQuery(String),
    /// `commit` was handed a transaction recording no change at all. A commit
    /// always publishes a generation; an empty one would publish a phantom.
    /// Coalesce buffered streams first (a fully cancelling stream flushes to
    /// `None`, not to an empty transaction).
    EmptyTransaction,
    /// One transaction records both an insert and a delete of the same row.
    /// A transaction is an unordered changeset, so the pair is ambiguous —
    /// resolve it by stream order (`Transaction::coalesce`) before committing.
    ConflictingDelta {
        /// Relation whose delta contains the conflicting pair.
        relation: String,
        /// The conflicting row, debug-printed.
        row: String,
    },
    /// A worker thread of the morsel scheduler panicked. The panic payload
    /// (when it was a string) is carried here instead of aborting the whole
    /// process out of `join().unwrap()`.
    WorkerPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}` referenced by the plan")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::ViewNotComputed(id) => {
                write!(f, "view {} required before it was computed", id.0)
            }
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::UnknownQuery(name) => {
                write!(f, "no query named `{name}` in the batch")
            }
            EngineError::EmptyTransaction => {
                write!(f, "cannot commit an empty transaction")
            }
            EngineError::ConflictingDelta { relation, row } => {
                write!(
                    f,
                    "transaction both inserts and deletes row {row} of `{relation}`; \
                     coalesce the stream before committing"
                )
            }
            EngineError::WorkerPanicked(payload) => {
                write!(f, "executor worker thread panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EngineError::UnknownRelation("Sales".into())
            .to_string()
            .contains("Sales"));
        assert!(EngineError::ViewNotComputed(ViewId(7))
            .to_string()
            .contains('7'));
        assert!(EngineError::UnknownQuery("rev".into())
            .to_string()
            .contains("rev"));
        assert!(EngineError::EmptyTransaction.to_string().contains("empty"));
        let conflict = EngineError::ConflictingDelta {
            relation: "Sales".into(),
            row: "[Int(3)]".into(),
        };
        assert!(conflict.to_string().contains("Sales"));
        assert!(conflict.to_string().contains("[Int(3)]"));
        let panicked = EngineError::WorkerPanicked("index out of bounds".into());
        assert!(panicked.to_string().contains("panicked"));
        assert!(panicked.to_string().contains("index out of bounds"));
        let e: EngineError = DataError::UnknownRelation("R".into()).into();
        assert!(matches!(e, EngineError::Data(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&EngineError::InvalidPlan("x".into())).is_none());
    }
}
