//! Typed engine errors.
//!
//! Planning and execution failures used to surface as panics
//! (`expect("group relation must exist")`) or as silently-empty results (the
//! old `IncomingData::Missing` path that treated an uncomputed dependency
//! view as empty). Both are now typed [`EngineError`]s surfaced through
//! [`crate::engine::Engine::prepare`] / [`crate::prepared::PreparedBatch::execute`]
//! and through the maintenance API ([`crate::maintain::MaintainedBatch`]).

use crate::view::ViewId;
use lmfao_data::DataError;
use std::fmt;

/// Errors raised by the planning, execution and maintenance layers.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A join-tree node references a relation the database does not have.
    UnknownRelation(String),
    /// A plan could not be lowered against the database schema.
    InvalidPlan(String),
    /// Execution needed a view that has not been computed — a dependency
    /// scheduling bug, no longer masked as an empty view.
    ViewNotComputed(ViewId),
    /// A delta could not be applied (unknown target, unmatched delete, …).
    Data(DataError),
    /// A result lookup named a query the batch does not contain. Callers that
    /// serve user-supplied query names (the serving loop) get a typed error
    /// instead of a panic or a silent `None`.
    UnknownQuery(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownRelation(name) => {
                write!(f, "unknown relation `{name}` referenced by the plan")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid plan: {msg}"),
            EngineError::ViewNotComputed(id) => {
                write!(f, "view {} required before it was computed", id.0)
            }
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::UnknownQuery(name) => {
                write!(f, "no query named `{name}` in the batch")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(EngineError::UnknownRelation("Sales".into())
            .to_string()
            .contains("Sales"));
        assert!(EngineError::ViewNotComputed(ViewId(7))
            .to_string()
            .contains('7'));
        assert!(EngineError::UnknownQuery("rev".into())
            .to_string()
            .contains("rev"));
        let e: EngineError = DataError::UnknownRelation("R".into()).into();
        assert!(matches!(e, EngineError::Data(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&EngineError::InvalidPlan("x".into())).is_none());
    }
}
