//! Join-tree construction via GYO ear reduction, with a greedy hypertree
//! decomposition fallback for cyclic joins.
//!
//! Acyclic joins always admit join trees; the GYO (Graham / Yu–Özsoyoğlu)
//! reduction finds one by repeatedly removing *ears*: hyperedges whose
//! attributes are either private to them or entirely contained in some other
//! hyperedge (the witness). The ear becomes a child of its witness in the
//! join tree. If the reduction gets stuck before consuming all edges, the join
//! is cyclic; the paper then computes a hypertree decomposition and
//! materializes its bags (footnote 1). We provide a greedy decomposition that
//! merges the residual cyclic edges into bags until the hypergraph becomes
//! acyclic.

use crate::error::{JoinTreeError, Result};
use crate::hypergraph::{Hyperedge, Hypergraph};
use crate::tree::{JoinTree, JoinTreeNode};
use lmfao_data::{AttrId, FxHashMap, FxHashSet};

/// Outcome of join-tree construction: the tree itself plus, for cyclic
/// inputs, the bags that must be materialized (each bag lists the names of
/// the base relations it joins).
#[derive(Debug, Clone)]
pub struct JoinTreePlan {
    /// The constructed join tree.
    pub tree: JoinTree,
    /// For each tree node, the base relations it covers. Singleton lists are
    /// plain base relations; longer lists are bags that must be materialized
    /// before execution.
    pub node_sources: Vec<Vec<String>>,
}

impl JoinTreePlan {
    /// True if the plan requires no bag materialization (the join is acyclic).
    pub fn is_acyclic(&self) -> bool {
        self.node_sources.iter().all(|s| s.len() == 1)
    }

    /// The bags that must be materialized: `(node id, relations)`.
    pub fn bags(&self) -> Vec<(usize, &[String])> {
        self.node_sources
            .iter()
            .enumerate()
            .filter(|(_, s)| s.len() > 1)
            .map(|(i, s)| (i, s.as_slice()))
            .collect()
    }
}

/// Checks whether `ear` is an ear with respect to the other edges: every
/// attribute of `ear` that occurs in some other edge is contained in a single
/// witness edge. Returns the witness index.
fn find_witness(edges: &[Hyperedge], ear_idx: usize, alive: &[bool]) -> Option<usize> {
    let ear = &edges[ear_idx];
    // Attributes of the ear that appear in some other alive edge.
    let mut shared: Vec<AttrId> = Vec::new();
    for &a in &ear.attrs {
        let occurs_elsewhere = edges
            .iter()
            .enumerate()
            .any(|(j, e)| j != ear_idx && alive[j] && e.contains(a));
        if occurs_elsewhere {
            shared.push(a);
        }
    }
    if shared.is_empty() {
        // Fully private ear: any other alive edge can serve as witness; pick
        // the first. (If none is alive, the caller handles the last edge.)
        return edges
            .iter()
            .enumerate()
            .find(|(j, _)| *j != ear_idx && alive[*j])
            .map(|(j, _)| j);
    }
    edges.iter().enumerate().find_map(|(j, e)| {
        if j != ear_idx && alive[j] && shared.iter().all(|a| e.contains(*a)) {
            Some(j)
        } else {
            None
        }
    })
}

/// Runs the GYO reduction. Returns `Ok(edges of the join tree over hyperedge
/// indices)` when the hypergraph is acyclic, or `Err(indices of the residual
/// cyclic core)` otherwise.
fn gyo_reduction(edges: &[Hyperedge]) -> std::result::Result<Vec<(usize, usize)>, Vec<usize>> {
    let n = edges.len();
    let mut alive = vec![true; n];
    let mut remaining = n;
    let mut tree_edges = Vec::new();
    while remaining > 1 {
        let mut removed_any = false;
        for i in 0..n {
            if !alive[i] {
                continue;
            }
            if let Some(witness) = find_witness(edges, i, &alive) {
                tree_edges.push((i, witness));
                alive[i] = false;
                remaining -= 1;
                removed_any = true;
                if remaining == 1 {
                    break;
                }
            }
        }
        if !removed_any {
            let residual: Vec<usize> = (0..n).filter(|&i| alive[i]).collect();
            return Err(residual);
        }
    }
    Ok(tree_edges)
}

/// Checks whether a hypergraph is acyclic (admits a join tree).
pub fn is_acyclic(hypergraph: &Hypergraph) -> bool {
    gyo_reduction(&hypergraph.edges).is_ok()
}

/// Builds a join tree for an acyclic hypergraph. Fails with
/// [`JoinTreeError::Cyclic`] if the hypergraph is cyclic — use
/// [`build_join_tree_plan`] to also handle cyclic joins by decomposition.
pub fn build_join_tree(hypergraph: &Hypergraph) -> Result<JoinTree> {
    if hypergraph.is_empty() {
        return Err(JoinTreeError::Empty);
    }
    match gyo_reduction(&hypergraph.edges) {
        Ok(tree_edges) => {
            let nodes: Vec<JoinTreeNode> = hypergraph
                .edges
                .iter()
                .enumerate()
                .map(|(id, e)| JoinTreeNode {
                    id,
                    relation: e.name.clone(),
                    attrs: e.attrs.clone(),
                })
                .collect();
            JoinTree::new(nodes, &tree_edges)
        }
        Err(residual) => Err(JoinTreeError::Cyclic(format!(
            "residual cyclic core of {} relations",
            residual.len()
        ))),
    }
}

/// Builds a join-tree plan for an arbitrary hypergraph. Cyclic cores are
/// greedily merged into bags (hypertree-decomposition style): the pair of
/// residual edges with the largest attribute overlap is merged first, until
/// the hypergraph becomes acyclic. Bags appear in the resulting plan's
/// `node_sources` with more than one base relation and must be materialized
/// by joining those relations before execution.
pub fn build_join_tree_plan(hypergraph: &Hypergraph) -> Result<JoinTreePlan> {
    if hypergraph.is_empty() {
        return Err(JoinTreeError::Empty);
    }
    // Working copy: each working edge tracks the base relations it covers.
    let mut edges: Vec<Hyperedge> = hypergraph.edges.clone();
    let mut sources: Vec<Vec<String>> = hypergraph
        .edges
        .iter()
        .map(|e| vec![e.name.clone()])
        .collect();

    loop {
        match gyo_reduction(&edges) {
            Ok(tree_edges) => {
                let nodes: Vec<JoinTreeNode> = edges
                    .iter()
                    .enumerate()
                    .map(|(id, e)| JoinTreeNode {
                        id,
                        relation: e.name.clone(),
                        attrs: e.attrs.clone(),
                    })
                    .collect();
                let tree = JoinTree::new(nodes, &tree_edges)?;
                return Ok(JoinTreePlan {
                    tree,
                    node_sources: sources,
                });
            }
            Err(residual) => {
                // Merge the residual pair with the largest attribute overlap.
                let (mut best_i, mut best_j, mut best_overlap) = (residual[0], residual[1], 0usize);
                for (xi, &i) in residual.iter().enumerate() {
                    for &j in &residual[xi + 1..] {
                        let set: FxHashSet<AttrId> = edges[i].attrs.iter().copied().collect();
                        let overlap = edges[j].attrs.iter().filter(|a| set.contains(a)).count();
                        if overlap >= best_overlap {
                            best_i = i;
                            best_j = j;
                            best_overlap = overlap;
                        }
                    }
                }
                // Merge j into i.
                let merged_name = format!("{}+{}", edges[best_i].name, edges[best_j].name);
                let mut merged_attrs = edges[best_i].attrs.clone();
                for &a in &edges[best_j].attrs {
                    if !merged_attrs.contains(&a) {
                        merged_attrs.push(a);
                    }
                }
                let mut merged_sources = sources[best_i].clone();
                merged_sources.extend(sources[best_j].clone());
                // Remove the two old edges (higher index first) and push the bag.
                let (lo, hi) = if best_i < best_j {
                    (best_i, best_j)
                } else {
                    (best_j, best_i)
                };
                edges.remove(hi);
                edges.remove(lo);
                sources.remove(hi);
                sources.remove(lo);
                edges.push(Hyperedge::new(merged_name, merged_attrs));
                sources.push(merged_sources);
            }
        }
    }
}

/// Builds a join tree from an explicit list of `relation — relation` edges
/// (used when reproducing the paper's hand-picked join trees of Figure 6).
pub fn join_tree_from_named_edges(
    hypergraph: &Hypergraph,
    edges: &[(&str, &str)],
) -> Result<JoinTree> {
    let index: FxHashMap<&str, usize> = hypergraph
        .edges
        .iter()
        .enumerate()
        .map(|(i, e)| (e.name.as_str(), i))
        .collect();
    let mut tree_edges = Vec::with_capacity(edges.len());
    for &(a, b) in edges {
        let ia = *index
            .get(a)
            .ok_or_else(|| JoinTreeError::UnknownRelation(a.to_string()))?;
        let ib = *index
            .get(b)
            .ok_or_else(|| JoinTreeError::UnknownRelation(b.to_string()))?;
        tree_edges.push((ia, ib));
    }
    let nodes: Vec<JoinTreeNode> = hypergraph
        .edges
        .iter()
        .enumerate()
        .map(|(id, e)| JoinTreeNode {
            id,
            relation: e.name.clone(),
            attrs: e.attrs.clone(),
        })
        .collect();
    JoinTree::new(nodes, &tree_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema};

    fn chain(n: usize) -> Hypergraph {
        let mut s = DatabaseSchema::new();
        for k in 1..n {
            s.add_relation_with_attrs(
                format!("S{k}"),
                &[
                    (&format!("X{k}"), AttrType::Int),
                    (&format!("X{}", k + 1), AttrType::Int),
                ],
            );
        }
        Hypergraph::from_schema(&s)
    }

    fn triangle() -> Hypergraph {
        Hypergraph::from_edges(vec![
            ("R".into(), vec![AttrId(0), AttrId(1)]),
            ("S".into(), vec![AttrId(1), AttrId(2)]),
            ("T".into(), vec![AttrId(2), AttrId(0)]),
        ])
    }

    #[test]
    fn chain_is_acyclic_and_builds_a_path_tree() {
        let h = chain(5);
        assert!(is_acyclic(&h));
        let t = build_join_tree(&h).unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.edges().len(), 3);
        // A chain join tree is a path: max degree 2.
        assert!((0..4).all(|i| t.neighbors(i).len() <= 2));
    }

    #[test]
    fn star_schema_is_acyclic() {
        let mut s = DatabaseSchema::new();
        s.add_relation_with_attrs(
            "Fact",
            &[
                ("k1", AttrType::Int),
                ("k2", AttrType::Int),
                ("k3", AttrType::Int),
                ("m", AttrType::Double),
            ],
        );
        s.add_relation_with_attrs("D1", &[("k1", AttrType::Int), ("a", AttrType::Int)]);
        s.add_relation_with_attrs("D2", &[("k2", AttrType::Int), ("b", AttrType::Int)]);
        s.add_relation_with_attrs("D3", &[("k3", AttrType::Int), ("c", AttrType::Int)]);
        let h = Hypergraph::from_schema(&s);
        let t = build_join_tree(&h).unwrap();
        assert_eq!(t.num_nodes(), 4);
        // The fact table is the hub: degree 3.
        let fact = t.node_of_relation("Fact").unwrap();
        assert_eq!(t.neighbors(fact).len(), 3);
    }

    #[test]
    fn triangle_is_cyclic() {
        let h = triangle();
        assert!(!is_acyclic(&h));
        assert!(matches!(
            build_join_tree(&h).unwrap_err(),
            JoinTreeError::Cyclic(_)
        ));
    }

    #[test]
    fn triangle_plan_materializes_a_bag() {
        let h = triangle();
        let plan = build_join_tree_plan(&h).unwrap();
        assert!(!plan.is_acyclic());
        assert!(!plan.bags().is_empty());
        // All three base relations are still covered.
        let covered: usize = plan.node_sources.iter().map(Vec::len).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn acyclic_plan_has_singleton_sources() {
        let h = chain(4);
        let plan = build_join_tree_plan(&h).unwrap();
        assert!(plan.is_acyclic());
        assert!(plan.bags().is_empty());
        assert_eq!(plan.tree.num_nodes(), 3);
    }

    #[test]
    fn named_edges_construction_matches_figure() {
        // Favorita-style: Sales - {Holidays, Items, Transactions}, Transactions - {StoRes, Oil}
        let h = Hypergraph::from_edges(vec![
            ("Sales".into(), vec![AttrId(0), AttrId(1), AttrId(2)]),
            ("Holidays".into(), vec![AttrId(0), AttrId(3)]),
            ("Items".into(), vec![AttrId(2), AttrId(4)]),
            ("Transactions".into(), vec![AttrId(0), AttrId(1), AttrId(5)]),
            ("StoRes".into(), vec![AttrId(1), AttrId(6)]),
            ("Oil".into(), vec![AttrId(0), AttrId(7)]),
        ]);
        let t = join_tree_from_named_edges(
            &h,
            &[
                ("Sales", "Holidays"),
                ("Sales", "Items"),
                ("Sales", "Transactions"),
                ("Transactions", "StoRes"),
                ("Transactions", "Oil"),
            ],
        )
        .unwrap();
        assert_eq!(t.num_nodes(), 6);
        let sales = t.node_of_relation("Sales").unwrap();
        assert_eq!(t.neighbors(sales).len(), 3);
        assert!(join_tree_from_named_edges(&h, &[("Sales", "Nope")]).is_err());
    }

    #[test]
    fn empty_hypergraph_rejected() {
        let h = Hypergraph::default();
        assert!(matches!(
            build_join_tree(&h).unwrap_err(),
            JoinTreeError::Empty
        ));
        assert!(matches!(
            build_join_tree_plan(&h).unwrap_err(),
            JoinTreeError::Empty
        ));
    }

    #[test]
    fn single_relation_tree() {
        let h = Hypergraph::from_edges(vec![("R".into(), vec![AttrId(0)])]);
        let t = build_join_tree(&h).unwrap();
        assert_eq!(t.num_nodes(), 1);
        assert!(t.edges().is_empty());
    }

    #[test]
    fn snowflake_with_two_levels() {
        // Fact - Dim1 - SubDim (snowflake, like Retailer's Location - Census).
        let mut s = DatabaseSchema::new();
        s.add_relation_with_attrs(
            "Inventory",
            &[("locn", AttrType::Int), ("sku", AttrType::Int)],
        );
        s.add_relation_with_attrs(
            "Location",
            &[("locn", AttrType::Int), ("zip", AttrType::Int)],
        );
        s.add_relation_with_attrs(
            "Census",
            &[("zip", AttrType::Int), ("population", AttrType::Int)],
        );
        s.add_relation_with_attrs(
            "Items",
            &[("sku", AttrType::Int), ("price", AttrType::Double)],
        );
        let h = Hypergraph::from_schema(&s);
        let t = build_join_tree(&h).unwrap();
        // Census must hang off Location (only shared attribute zip).
        let census = t.node_of_relation("Census").unwrap();
        let location = t.node_of_relation("Location").unwrap();
        assert_eq!(t.neighbors(census), &[location]);
    }
}
