//! # lmfao-jointree
//!
//! Join-tree construction for LMFAO: the schema hypergraph, the GYO ear
//! reduction that builds join trees for acyclic natural joins, a greedy
//! hypertree decomposition with bag materialization for cyclic joins, and the
//! natural-join materialization routine shared with the baseline engines.

#![warn(missing_docs)]

pub mod error;
pub mod gyo;
pub mod hypergraph;
pub mod materialize;
pub mod tree;

pub use error::{JoinTreeError, Result};
pub use gyo::{
    build_join_tree, build_join_tree_plan, is_acyclic, join_tree_from_named_edges, JoinTreePlan,
};
pub use hypergraph::{Hyperedge, Hypergraph};
pub use materialize::{natural_join, natural_join_pair};
pub use tree::{JoinTree, JoinTreeNode};

#[cfg(test)]
mod smoke {
    use super::*;
    use lmfao_data::{AttrType, DatabaseSchema};

    /// Exercises the crate-level surface the engine builds on: hypergraph
    /// from a schema, acyclicity check, GYO join-tree construction.
    #[test]
    fn acyclic_schema_yields_a_join_tree() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[("store", AttrType::Int), ("item", AttrType::Int)],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let hg = Hypergraph::from_schema(&schema);
        assert!(is_acyclic(&hg));
        let tree = build_join_tree(&hg).unwrap();
        assert_eq!(tree.num_nodes(), 2);
        let sales = tree.node_of_relation("Sales").unwrap();
        let items = tree.node_of_relation("Items").unwrap();
        let item = schema.attr_id("item").unwrap();
        assert_eq!(tree.edge_join_attrs(sales, items), vec![item]);
    }
}
