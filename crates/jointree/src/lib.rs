//! # lmfao-jointree
//!
//! Join-tree construction for LMFAO: the schema hypergraph, the GYO ear
//! reduction that builds join trees for acyclic natural joins, a greedy
//! hypertree decomposition with bag materialization for cyclic joins, and the
//! natural-join materialization routine shared with the baseline engines.

#![warn(missing_docs)]

pub mod error;
pub mod gyo;
pub mod hypergraph;
pub mod materialize;
pub mod tree;

pub use error::{JoinTreeError, Result};
pub use gyo::{build_join_tree, build_join_tree_plan, is_acyclic, join_tree_from_named_edges, JoinTreePlan};
pub use hypergraph::{Hyperedge, Hypergraph};
pub use materialize::{natural_join, natural_join_pair};
pub use tree::{JoinTree, JoinTreeNode};
