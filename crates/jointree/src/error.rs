//! Errors raised during join-tree construction.

use std::fmt;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, JoinTreeError>;

/// Errors raised by join-tree construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTreeError {
    /// The schema has no relations.
    Empty,
    /// The provided edges do not form a tree over the nodes.
    NotATree(String),
    /// The running-intersection property is violated.
    RunningIntersectionViolated {
        /// First relation of the offending pair.
        a: String,
        /// Second relation of the offending pair.
        b: String,
        /// Relation on the path that misses a shared attribute.
        missing_at: String,
    },
    /// The join is cyclic and no decomposition was requested.
    Cyclic(String),
    /// A referenced relation does not exist.
    UnknownRelation(String),
}

impl fmt::Display for JoinTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTreeError::Empty => write!(f, "cannot build a join tree over zero relations"),
            JoinTreeError::NotATree(msg) => write!(f, "edges do not form a tree: {msg}"),
            JoinTreeError::RunningIntersectionViolated { a, b, missing_at } => write!(
                f,
                "running intersection violated: attributes shared by `{a}` and `{b}` missing at `{missing_at}`"
            ),
            JoinTreeError::Cyclic(msg) => write!(f, "join is cyclic: {msg}"),
            JoinTreeError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
        }
    }
}

impl std::error::Error for JoinTreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(JoinTreeError::Empty.to_string().contains("zero relations"));
        assert!(JoinTreeError::Cyclic("triangle".into())
            .to_string()
            .contains("triangle"));
        let e = JoinTreeError::RunningIntersectionViolated {
            a: "R".into(),
            b: "T".into(),
            missing_at: "S".into(),
        };
        assert!(e.to_string().contains("`S`"));
    }
}
