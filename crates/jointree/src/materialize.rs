//! Natural-join materialization.
//!
//! Two users: (1) bags of a hypertree decomposition are materialized before
//! the LMFAO engine runs over the join tree of the decomposition (footnote 1
//! of the paper); (2) the baseline engines (`lmfao-baseline`) materialize the
//! full join — exactly what the paper's competitors (PostgreSQL exports for
//! TensorFlow/scikit, MADlib's view) must do, and what LMFAO avoids.

use lmfao_data::{AttrId, Column, FxHashMap, Relation, RelationSchema, Value};

/// Hash-joins two relations on their shared attributes (natural join).
/// The output schema is `left ∪ right` with the left attributes first.
///
/// The join is materialized column-wise: the probe phase only collects the
/// matching `(left row, right row)` index pairs, and each output column is
/// then built with a single typed gather ([`Column::gather`]) from its source
/// column — no row-at-a-time copies of `Value` tuples.
pub fn natural_join_pair(left: &Relation, right: &Relation, out_name: &str) -> Relation {
    // Row indices are gathered as u32; make the limit loud instead of
    // silently wrapping on relations beyond 2^32 rows.
    assert!(
        left.len() <= u32::MAX as usize && right.len() <= u32::MAX as usize,
        "natural_join_pair: inputs exceed u32 row indexing"
    );
    let left_attrs = &left.schema().attrs;
    let right_attrs = &right.schema().attrs;
    let shared: Vec<AttrId> = left_attrs
        .iter()
        .copied()
        .filter(|a| right_attrs.contains(a))
        .collect();
    let left_key_cols: Vec<&Column> = shared
        .iter()
        .map(|a| left.column(left.position(*a).unwrap()))
        .collect();
    let right_key_cols: Vec<&Column> = shared
        .iter()
        .map(|a| right.column(right.position(*a).unwrap()))
        .collect();
    let right_extra_pos: Vec<usize> = right_attrs
        .iter()
        .enumerate()
        .filter(|(_, a)| !shared.contains(a))
        .map(|(i, _)| i)
        .collect();

    let mut out_attrs = left_attrs.clone();
    out_attrs.extend(right_extra_pos.iter().map(|&i| right_attrs[i]));
    let out_schema = RelationSchema::new(out_name, out_attrs);

    // Build side: the smaller relation would be preferable, but keeping the
    // build on the right keeps output attribute order deterministic.
    let mut index: FxHashMap<Vec<Value>, Vec<u32>> = FxHashMap::default();
    for i in 0..right.len() {
        let key: Vec<Value> = right_key_cols.iter().map(|c| c.value(i)).collect();
        index.entry(key).or_default().push(i as u32);
    }

    // Probe side: record matching row-index pairs.
    let mut left_rows: Vec<u32> = Vec::new();
    let mut right_rows: Vec<u32> = Vec::new();
    for i in 0..left.len() {
        let key: Vec<Value> = left_key_cols.iter().map(|c| c.value(i)).collect();
        if let Some(matches) = index.get(&key) {
            for &j in matches {
                left_rows.push(i as u32);
                right_rows.push(j);
            }
        }
    }

    // Materialize: one gather per output column.
    let mut columns: Vec<Column> = left
        .columns()
        .iter()
        .map(|c| c.gather(&left_rows))
        .collect();
    columns.extend(
        right_extra_pos
            .iter()
            .map(|&p| right.column(p).gather(&right_rows)),
    );
    Relation::from_columns(out_schema, columns).expect("gathered columns share one length")
}

/// Natural join of several relations, performed pairwise in the given order.
/// Relations are joined left to right; for join trees this order should be a
/// BFS/DFS order so every join has at least one shared attribute (otherwise
/// the pairwise join degenerates to a cartesian product, as in SQL).
pub fn natural_join(relations: &[&Relation], out_name: &str) -> Relation {
    assert!(!relations.is_empty(), "cannot join zero relations");
    let mut acc = relations[0].clone();
    for (k, rel) in relations.iter().enumerate().skip(1) {
        let name = if k + 1 == relations.len() {
            out_name.to_string()
        } else {
            format!("{out_name}_{k}")
        };
        acc = natural_join_pair(&acc, rel, &name);
    }
    if relations.len() == 1 {
        let (schema, columns) = acc.into_parts();
        let renamed = RelationSchema::new(out_name, schema.attrs);
        return Relation::from_columns(renamed, columns).expect("rename keeps columns intact");
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(name: &str, attrs: Vec<AttrId>, rows: Vec<Vec<i64>>) -> Relation {
        let schema = RelationSchema::new(name, attrs);
        let rows = rows
            .into_iter()
            .map(|r| r.into_iter().map(Value::Int).collect())
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn pair_join_on_single_shared_attr() {
        // R(a, b) ⋈ S(b, c)
        let r = rel(
            "R",
            vec![AttrId(0), AttrId(1)],
            vec![vec![1, 10], vec![2, 20], vec![3, 10]],
        );
        let s = rel(
            "S",
            vec![AttrId(1), AttrId(2)],
            vec![vec![10, 100], vec![10, 200], vec![30, 300]],
        );
        let j = natural_join_pair(&r, &s, "RS");
        // b=10 matches rows {1,3} x {100,200} = 4 tuples; b=20/30 match nothing.
        assert_eq!(j.len(), 4);
        assert_eq!(j.arity(), 3);
        assert_eq!(j.schema().attrs, vec![AttrId(0), AttrId(1), AttrId(2)]);
    }

    #[test]
    fn pair_join_without_shared_attrs_is_cartesian() {
        let r = rel("R", vec![AttrId(0)], vec![vec![1], vec![2]]);
        let s = rel("S", vec![AttrId(1)], vec![vec![10], vec![20], vec![30]]);
        let j = natural_join_pair(&r, &s, "RS");
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn multi_way_join_chain() {
        // S1(x1,x2) ⋈ S2(x2,x3) ⋈ S3(x3,x4)
        let s1 = rel(
            "S1",
            vec![AttrId(0), AttrId(1)],
            vec![vec![1, 2], vec![5, 6]],
        );
        let s2 = rel(
            "S2",
            vec![AttrId(1), AttrId(2)],
            vec![vec![2, 3], vec![2, 4]],
        );
        let s3 = rel(
            "S3",
            vec![AttrId(2), AttrId(3)],
            vec![vec![3, 9], vec![4, 8]],
        );
        let j = natural_join(&[&s1, &s2, &s3], "J");
        assert_eq!(j.len(), 2);
        assert_eq!(j.arity(), 4);
        assert_eq!(j.name(), "J");
        let rows: Vec<Vec<i64>> = j
            .rows()
            .map(|r| r.iter().map(|v| v.as_i64()).collect())
            .collect();
        assert!(rows.contains(&vec![1, 2, 3, 9]));
        assert!(rows.contains(&vec![1, 2, 4, 8]));
    }

    #[test]
    fn single_relation_join_renames() {
        let r = rel("R", vec![AttrId(0)], vec![vec![7]]);
        let j = natural_join(&[&r], "Renamed");
        assert_eq!(j.name(), "Renamed");
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn many_to_many_join_grows_output() {
        // Yelp-style: the join result is much larger than either input.
        let r = rel(
            "R",
            vec![AttrId(0), AttrId(1)],
            (0..10).map(|i| vec![1, i]).collect(),
        );
        let s = rel(
            "S",
            vec![AttrId(0), AttrId(2)],
            (0..10).map(|i| vec![1, 100 + i]).collect(),
        );
        let j = natural_join_pair(&r, &s, "RS");
        assert_eq!(j.len(), 100);
        assert!(j.len() > r.len() + s.len());
    }

    #[test]
    fn empty_input_produces_empty_join() {
        let r = rel("R", vec![AttrId(0), AttrId(1)], vec![]);
        let s = rel("S", vec![AttrId(1), AttrId(2)], vec![vec![1, 2]]);
        let j = natural_join_pair(&r, &s, "RS");
        assert!(j.is_empty());
    }
}
