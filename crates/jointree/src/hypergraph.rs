//! The query hypergraph: one hyperedge per relation, vertices are attributes.

use lmfao_data::{AttrId, DatabaseSchema, FxHashSet};

/// A hyperedge: a named set of attributes (a relation schema, or a bag of a
/// hypertree decomposition).
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperedge {
    /// Name of the relation (or bag) the edge represents.
    pub name: String,
    /// Attributes covered by the edge.
    pub attrs: Vec<AttrId>,
}

impl Hyperedge {
    /// Creates a hyperedge.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrId>) -> Self {
        Hyperedge {
            name: name.into(),
            attrs,
        }
    }

    /// The attribute set of the edge.
    pub fn attr_set(&self) -> FxHashSet<AttrId> {
        self.attrs.iter().copied().collect()
    }

    /// Whether the edge contains the attribute.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }
}

/// The hypergraph of a natural join query.
#[derive(Debug, Clone, Default)]
pub struct Hypergraph {
    /// The hyperedges, one per relation.
    pub edges: Vec<Hyperedge>,
}

impl Hypergraph {
    /// Builds the hypergraph of the natural join of all relations of a schema.
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let edges = schema
            .relations()
            .iter()
            .map(|r| Hyperedge::new(r.name.clone(), r.attrs.clone()))
            .collect();
        Hypergraph { edges }
    }

    /// Builds a hypergraph from explicit `(name, attrs)` pairs.
    pub fn from_edges(edges: Vec<(String, Vec<AttrId>)>) -> Self {
        Hypergraph {
            edges: edges
                .into_iter()
                .map(|(n, a)| Hyperedge::new(n, a))
                .collect(),
        }
    }

    /// Number of hyperedges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if there are no hyperedges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All distinct attributes of the hypergraph.
    pub fn vertices(&self) -> Vec<AttrId> {
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for e in &self.edges {
            for &a in &e.attrs {
                if seen.insert(a) {
                    out.push(a);
                }
            }
        }
        out
    }

    /// Attributes shared between two edges.
    pub fn shared_attrs(&self, i: usize, j: usize) -> Vec<AttrId> {
        let set: FxHashSet<AttrId> = self.edges[j].attrs.iter().copied().collect();
        self.edges[i]
            .attrs
            .iter()
            .copied()
            .filter(|a| set.contains(a))
            .collect()
    }

    /// Index of the edge with the given name.
    pub fn edge_index(&self, name: &str) -> Option<usize> {
        self.edges.iter().position(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_data::AttrType;

    fn chain_schema(n: usize) -> DatabaseSchema {
        // S_k(X_k, X_{k+1}) for k in 1..n, the schema of Example 3.3.
        let mut s = DatabaseSchema::new();
        for k in 1..n {
            s.add_relation_with_attrs(
                format!("S{k}"),
                &[
                    (&format!("X{k}"), AttrType::Int),
                    (&format!("X{}", k + 1), AttrType::Int),
                ],
            );
        }
        s
    }

    #[test]
    fn from_schema_builds_one_edge_per_relation() {
        let schema = chain_schema(4);
        let h = Hypergraph::from_schema(&schema);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.vertices().len(), 4);
        assert_eq!(h.edge_index("S2"), Some(1));
        assert_eq!(h.edge_index("nope"), None);
    }

    #[test]
    fn shared_attrs_of_adjacent_chain_edges() {
        let schema = chain_schema(4);
        let h = Hypergraph::from_schema(&schema);
        let shared = h.shared_attrs(0, 1);
        assert_eq!(shared.len(), 1);
        assert_eq!(schema.attr_name(shared[0]), "X2");
        assert!(h.shared_attrs(0, 2).is_empty());
    }

    #[test]
    fn hyperedge_helpers() {
        let e = Hyperedge::new("R", vec![AttrId(0), AttrId(1)]);
        assert!(e.contains(AttrId(0)));
        assert!(!e.contains(AttrId(2)));
        assert_eq!(e.attr_set().len(), 2);
    }
}
