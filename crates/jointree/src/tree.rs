//! Join trees.
//!
//! A join tree of the natural join of relations `R1, …, Rm` is an undirected
//! tree whose nodes are the relations such that for every pair of nodes, their
//! common attributes appear in every node on the path between them (the
//! *running intersection* property, Section 3.1 of the paper). LMFAO computes
//! every aggregate of a batch over one join tree, possibly rooted at different
//! nodes for different aggregates.

use crate::error::{JoinTreeError, Result};
use lmfao_data::{AttrId, FxHashSet};

/// A node of a join tree: a relation (or a materialized bag) and its schema.
#[derive(Debug, Clone)]
pub struct JoinTreeNode {
    /// Node index within the tree.
    pub id: usize,
    /// Name of the relation stored at this node.
    pub relation: String,
    /// Attributes of the relation.
    pub attrs: Vec<AttrId>,
}

impl JoinTreeNode {
    /// The attribute set of the node.
    pub fn attr_set(&self) -> FxHashSet<AttrId> {
        self.attrs.iter().copied().collect()
    }

    /// Whether the node's relation contains the attribute.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }
}

/// An undirected join tree.
#[derive(Debug, Clone)]
pub struct JoinTree {
    nodes: Vec<JoinTreeNode>,
    adjacency: Vec<Vec<usize>>,
}

impl JoinTree {
    /// Builds a join tree from nodes and undirected edges, and validates that
    /// the edges form a tree satisfying the running-intersection property.
    pub fn new(nodes: Vec<JoinTreeNode>, edges: &[(usize, usize)]) -> Result<Self> {
        let n = nodes.len();
        if n == 0 {
            return Err(JoinTreeError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(JoinTreeError::NotATree(format!(
                "{} nodes require {} edges, got {}",
                n,
                n - 1,
                edges.len()
            )));
        }
        let mut adjacency = vec![Vec::new(); n];
        for &(a, b) in edges {
            if a >= n || b >= n || a == b {
                return Err(JoinTreeError::NotATree(format!("invalid edge ({a},{b})")));
            }
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        let tree = JoinTree { nodes, adjacency };
        tree.check_connected()?;
        tree.check_running_intersection()?;
        Ok(tree)
    }

    fn check_connected(&self) -> Result<()> {
        let n = self.nodes.len();
        let mut visited = vec![false; n];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    count += 1;
                    stack.push(v);
                }
            }
        }
        if count != n {
            return Err(JoinTreeError::NotATree("tree is not connected".into()));
        }
        Ok(())
    }

    fn check_running_intersection(&self) -> Result<()> {
        let n = self.nodes.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let shared: FxHashSet<AttrId> = self.nodes[i]
                    .attrs
                    .iter()
                    .copied()
                    .filter(|a| self.nodes[j].contains(*a))
                    .collect();
                if shared.is_empty() {
                    continue;
                }
                for &k in &self.path(i, j) {
                    for &a in &shared {
                        if !self.nodes[k].contains(a) {
                            return Err(JoinTreeError::RunningIntersectionViolated {
                                a: self.nodes[i].relation.clone(),
                                b: self.nodes[j].relation.clone(),
                                missing_at: self.nodes[k].relation.clone(),
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All nodes.
    pub fn nodes(&self) -> &[JoinTreeNode] {
        &self.nodes
    }

    /// A node by id.
    pub fn node(&self, id: usize) -> &JoinTreeNode {
        &self.nodes[id]
    }

    /// The node holding the given relation.
    pub fn node_of_relation(&self, relation: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.relation == relation)
    }

    /// Neighbors of a node.
    pub fn neighbors(&self, id: usize) -> &[usize] {
        &self.adjacency[id]
    }

    /// All undirected edges `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// The join attributes of an edge: attributes shared by its two nodes.
    pub fn edge_join_attrs(&self, a: usize, b: usize) -> Vec<AttrId> {
        self.nodes[a]
            .attrs
            .iter()
            .copied()
            .filter(|x| self.nodes[b].contains(*x))
            .collect()
    }

    /// The unique path between two nodes (inclusive of both endpoints).
    pub fn path(&self, from: usize, to: usize) -> Vec<usize> {
        if from == to {
            return vec![from];
        }
        let n = self.nodes.len();
        let mut parent = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            if u == to {
                break;
            }
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    parent[v] = u;
                    queue.push_back(v);
                }
            }
        }
        let mut path = vec![to];
        let mut cur = to;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Nodes of the subtree rooted at `child` when the tree is oriented away
    /// from `parent` (i.e. the component containing `child` after removing the
    /// edge `parent—child`).
    pub fn subtree_nodes(&self, child: usize, parent: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![(child, parent)];
        while let Some((u, from)) = stack.pop() {
            out.push(u);
            for &v in &self.adjacency[u] {
                if v != from {
                    stack.push((v, u));
                }
            }
        }
        out
    }

    /// All attributes appearing in the subtree rooted at `child` away from
    /// `parent` (the `ω_{T_i}` of Section 3.2).
    pub fn subtree_attrs(&self, child: usize, parent: usize) -> FxHashSet<AttrId> {
        let mut set = FxHashSet::default();
        for n in self.subtree_nodes(child, parent) {
            set.extend(self.nodes[n].attrs.iter().copied());
        }
        set
    }

    /// Attributes of the whole tree.
    pub fn all_attrs(&self) -> FxHashSet<AttrId> {
        let mut set = FxHashSet::default();
        for n in &self.nodes {
            set.extend(n.attrs.iter().copied());
        }
        set
    }

    /// The join attributes of a node: its attributes shared with at least one
    /// neighbor.
    pub fn node_join_attrs(&self, id: usize) -> Vec<AttrId> {
        let mut out = Vec::new();
        for &a in &self.nodes[id].attrs {
            if self.adjacency[id]
                .iter()
                .any(|&nb| self.nodes[nb].contains(a))
            {
                out.push(a);
            }
        }
        out
    }

    /// A breadth-first order of the nodes starting from `root`, together with
    /// each node's parent (the root's parent is `usize::MAX`).
    pub fn bfs_order(&self, root: usize) -> Vec<(usize, usize)> {
        let n = self.nodes.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back((root, usize::MAX));
        while let Some((u, p)) = queue.pop_front() {
            order.push((u, p));
            for &v in &self.adjacency[u] {
                if !visited[v] {
                    visited[v] = true;
                    queue.push_back((v, u));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Favorita join tree of Figure 3: Sales at the center-ish.
    ///   Sales(date, store, item, units, promo)
    ///   Holidays(date, ...) - Sales
    ///   Items(item, ...) - Sales
    ///   Transactions(date, store, txns) - Sales
    ///   StoRes(store, ...) - Transactions
    ///   Oil(date, price) - Transactions
    fn favorita_like() -> JoinTree {
        let date = AttrId(0);
        let store = AttrId(1);
        let item = AttrId(2);
        let units = AttrId(3);
        let city = AttrId(4);
        let family = AttrId(5);
        let txns = AttrId(6);
        let price = AttrId(7);
        let htype = AttrId(8);
        let nodes = vec![
            JoinTreeNode {
                id: 0,
                relation: "Sales".into(),
                attrs: vec![date, store, item, units],
            },
            JoinTreeNode {
                id: 1,
                relation: "Holidays".into(),
                attrs: vec![date, htype],
            },
            JoinTreeNode {
                id: 2,
                relation: "Items".into(),
                attrs: vec![item, family],
            },
            JoinTreeNode {
                id: 3,
                relation: "Transactions".into(),
                attrs: vec![date, store, txns],
            },
            JoinTreeNode {
                id: 4,
                relation: "StoRes".into(),
                attrs: vec![store, city],
            },
            JoinTreeNode {
                id: 5,
                relation: "Oil".into(),
                attrs: vec![date, price],
            },
        ];
        JoinTree::new(nodes, &[(0, 1), (0, 2), (0, 3), (3, 4), (3, 5)]).unwrap()
    }

    #[test]
    fn valid_tree_is_accepted() {
        let t = favorita_like();
        assert_eq!(t.num_nodes(), 6);
        assert_eq!(t.edges().len(), 5);
        assert_eq!(t.node_of_relation("Oil"), Some(5));
        assert_eq!(t.node_of_relation("Missing"), None);
    }

    #[test]
    fn running_intersection_violation_is_rejected() {
        // R(a,b) - S(b,c) - T(a,c): shared attribute `a` of R and T is not in S.
        let nodes = vec![
            JoinTreeNode {
                id: 0,
                relation: "R".into(),
                attrs: vec![AttrId(0), AttrId(1)],
            },
            JoinTreeNode {
                id: 1,
                relation: "S".into(),
                attrs: vec![AttrId(1), AttrId(2)],
            },
            JoinTreeNode {
                id: 2,
                relation: "T".into(),
                attrs: vec![AttrId(0), AttrId(2)],
            },
        ];
        let err = JoinTree::new(nodes, &[(0, 1), (1, 2)]).unwrap_err();
        assert!(matches!(
            err,
            JoinTreeError::RunningIntersectionViolated { .. }
        ));
    }

    #[test]
    fn wrong_edge_count_rejected() {
        let nodes = vec![
            JoinTreeNode {
                id: 0,
                relation: "R".into(),
                attrs: vec![AttrId(0)],
            },
            JoinTreeNode {
                id: 1,
                relation: "S".into(),
                attrs: vec![AttrId(0)],
            },
        ];
        assert!(matches!(
            JoinTree::new(nodes.clone(), &[]).unwrap_err(),
            JoinTreeError::NotATree(_)
        ));
        assert!(matches!(
            JoinTree::new(nodes, &[(0, 1), (0, 1)]).unwrap_err(),
            JoinTreeError::NotATree(_)
        ));
    }

    #[test]
    fn disconnected_tree_rejected() {
        let nodes = vec![
            JoinTreeNode {
                id: 0,
                relation: "A".into(),
                attrs: vec![AttrId(0)],
            },
            JoinTreeNode {
                id: 1,
                relation: "B".into(),
                attrs: vec![AttrId(0)],
            },
            JoinTreeNode {
                id: 2,
                relation: "C".into(),
                attrs: vec![AttrId(0)],
            },
            JoinTreeNode {
                id: 3,
                relation: "D".into(),
                attrs: vec![AttrId(0)],
            },
        ];
        // 3 edges but one node is in a cycle and one disconnected.
        let err = JoinTree::new(nodes, &[(0, 1), (1, 2), (2, 0)]).unwrap_err();
        assert!(matches!(err, JoinTreeError::NotATree(_)));
    }

    #[test]
    fn paths_and_subtrees() {
        let t = favorita_like();
        // Path Oil -> Sales goes through Transactions.
        assert_eq!(t.path(5, 0), vec![5, 3, 0]);
        assert_eq!(t.path(2, 2), vec![2]);
        // Subtree of Transactions away from Sales = {Transactions, StoRes, Oil}.
        let mut sub = t.subtree_nodes(3, 0);
        sub.sort();
        assert_eq!(sub, vec![3, 4, 5]);
        let attrs = t.subtree_attrs(3, 0);
        assert!(attrs.contains(&AttrId(7))); // price
        assert!(attrs.contains(&AttrId(4))); // city
        assert!(!attrs.contains(&AttrId(5))); // family is under Items
    }

    #[test]
    fn edge_and_node_join_attrs() {
        let t = favorita_like();
        // Sales—Transactions share date and store.
        let shared = t.edge_join_attrs(0, 3);
        assert_eq!(shared.len(), 2);
        // Sales join attributes: date (Holidays/Transactions), store, item.
        let keys = t.node_join_attrs(0);
        assert_eq!(keys.len(), 3);
        // Oil only joins on date.
        assert_eq!(t.node_join_attrs(5), vec![AttrId(0)]);
    }

    #[test]
    fn bfs_order_from_root() {
        let t = favorita_like();
        let order = t.bfs_order(0);
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], (0, usize::MAX));
        // every non-root node's parent appears before it
        for (i, &(node, parent)) in order.iter().enumerate().skip(1) {
            assert!(order[..i].iter().any(|&(n, _)| n == parent), "node {node}");
        }
    }

    #[test]
    fn all_attrs_union() {
        let t = favorita_like();
        assert_eq!(t.all_attrs().len(), 9);
    }
}
