//! # lmfao-bench
//!
//! The benchmark harness reproducing the LMFAO paper's evaluation:
//!
//! * the `experiments` binary regenerates every table and figure
//!   (`cargo run --release -p lmfao-bench --bin experiments -- all`),
//! * the Criterion benches (`cargo bench -p lmfao-bench`) provide
//!   statistically sound timings for the same workloads at a smaller scale,
//! * the `serve` binary and the [`serve`] module run the concurrent-serving
//!   benchmark: reader threads answering query lookups from epoch-published
//!   snapshots while a writer applies updates
//!   (`cargo run --release -p lmfao-bench --bin serve`),
//! * the [`iso`] module runs the isolation stress harness: the same
//!   reader/writer shape, but recording a black-box read/commit history that
//!   the snapshot-isolation checker validates
//!   (`cargo run --release -p lmfao-bench --bin experiments -- iso`).
//!
//! The workload builders in this crate are shared between all of them.

#![warn(missing_docs)]

pub mod iso;
pub mod serve;

use lmfao_core::{Engine, EngineConfig, SharedDatabase};
use lmfao_data::AttrId;
use lmfao_datagen::Dataset;
use lmfao_expr::{Aggregate, QueryBatch};
use lmfao_ml::{covar_batch, datacube_batch, mutual_info_batch, CovarSpec};

/// The per-dataset workload configuration used throughout the paper's
/// experiments: which attributes participate in the covar matrix, the
/// regression-tree node, the mutual-information batch and the data cube.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Continuous attributes (the last one is the regression label).
    pub continuous: Vec<String>,
    /// Categorical attributes (one-hot encoded / group-by attributes).
    pub categorical: Vec<String>,
    /// Attributes used for the pairwise mutual-information batch.
    pub mutual_info: Vec<String>,
    /// The three cube dimensions.
    pub cube_dims: Vec<String>,
    /// The five cube measures.
    pub cube_measures: Vec<String>,
    /// The label attribute for model training.
    pub label: String,
}

impl WorkloadSpec {
    /// The workload attributes for a dataset by name, mirroring the paper's
    /// setup (all attributes except join keys, a handful of MI attributes,
    /// three dimensions and five measures for the cube).
    pub fn for_dataset(name: &str) -> WorkloadSpec {
        match name {
            "Retailer" => WorkloadSpec {
                continuous: vec![
                    "avghhi",
                    "tot_area_sq_ft",
                    "sell_area_sq_ft",
                    "distance_comp",
                    "population",
                    "medianage",
                    "households",
                    "maxtemp",
                    "mintemp",
                    "meanwind",
                    "prices",
                    "inventoryunits",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                categorical: vec!["rgn_cd", "clim_zn_nbr", "category", "categorycluster"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                mutual_info: vec![
                    "rgn_cd",
                    "clim_zn_nbr",
                    "category",
                    "categorycluster",
                    "subcategory",
                    "rain",
                    "snow",
                    "thunder",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                cube_dims: vec!["category", "rgn_cd", "clim_zn_nbr"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                cube_measures: vec![
                    "inventoryunits",
                    "prices",
                    "avghhi",
                    "maxtemp",
                    "population",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                label: "inventoryunits".into(),
            },
            "Favorita" => WorkloadSpec {
                continuous: vec!["txns", "price", "cluster", "units"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                categorical: vec!["family", "city", "state", "stype", "htype"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                mutual_info: vec![
                    "family",
                    "city",
                    "state",
                    "stype",
                    "htype",
                    "locale",
                    "perishable",
                    "promo",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                cube_dims: vec!["family", "city", "stype"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                cube_measures: vec!["units", "txns", "price", "cluster", "perishable"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                label: "units".into(),
            },
            "Yelp" => WorkloadSpec {
                continuous: vec![
                    "useful",
                    "user_review_count",
                    "user_avg_stars",
                    "fans",
                    "bstars",
                    "breview_count",
                    "stars",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                categorical: vec!["bcity", "bstate", "category", "battribute"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                mutual_info: vec![
                    "bcity",
                    "bstate",
                    "category",
                    "battribute",
                    "is_open",
                    "review_year",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                cube_dims: vec!["bcity", "category", "review_year"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                cube_measures: vec![
                    "stars",
                    "useful",
                    "fans",
                    "breview_count",
                    "user_review_count",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                label: "stars".into(),
            },
            "TPC-DS" => WorkloadSpec {
                continuous: vec![
                    "quantity",
                    "salesprice",
                    "discount",
                    "birth_year",
                    "purchase_estimate",
                    "iprice",
                    "floor_space",
                    "lower_bound",
                    "netpaid",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                categorical: vec![
                    "preferred",
                    "gender",
                    "marital",
                    "education",
                    "icategory",
                    "sstate",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                mutual_info: vec![
                    "preferred",
                    "gender",
                    "marital",
                    "education",
                    "icategory",
                    "sstate",
                    "scity",
                    "weekday",
                    "shift",
                    "buy_potential",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                cube_dims: vec!["icategory", "sstate", "year"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
                cube_measures: vec![
                    "quantity",
                    "salesprice",
                    "discount",
                    "netpaid",
                    "purchase_estimate",
                ]
                .into_iter()
                .map(String::from)
                .collect(),
                label: "netpaid".into(),
            },
            other => panic!("no workload specification for dataset `{other}`"),
        }
    }

    fn attrs(ds: &Dataset, names: &[String]) -> Vec<AttrId> {
        names.iter().map(|n| ds.attr(n)).collect()
    }

    /// The count query (the sharing yardstick of Table 3).
    pub fn count_batch(&self, _ds: &Dataset) -> QueryBatch {
        let mut batch = QueryBatch::new();
        batch.push("count", vec![], vec![Aggregate::count()]);
        batch
    }

    /// The covar-matrix batch (CM workload).
    pub fn covar_batch(&self, ds: &Dataset) -> QueryBatch {
        let spec = CovarSpec {
            continuous: Self::attrs(ds, &self.continuous),
            categorical: Self::attrs(ds, &self.categorical),
        };
        covar_batch(&spec).batch
    }

    /// A regression-tree node batch (RT workload): COUNT / SUM(y) / SUM(y²)
    /// for ~20 candidate thresholds over every continuous attribute plus
    /// per-category counts for every categorical attribute.
    pub fn rt_node_batch(&self, ds: &Dataset) -> QueryBatch {
        use lmfao_expr::{CmpOp, ProductTerm, ScalarFunction};
        let label = ds.attr(&self.label);
        let mut batch = QueryBatch::new();
        batch.push(
            "rt_parent",
            vec![],
            vec![
                Aggregate::count(),
                Aggregate::sum(label),
                Aggregate::sum_square(label),
            ],
        );
        for name in self.continuous.iter().filter(|n| **n != self.label) {
            let attr = ds.attr(name);
            // 20 candidate thresholds, as in the paper's setup.
            let (lo, hi) = ds
                .db
                .relations()
                .iter()
                .find_map(|r| r.position(attr).and_then(|c| r.min_max(c)))
                .map(|(lo, hi)| (lo.as_f64(), hi.as_f64()))
                .unwrap_or((0.0, 1.0));
            for b in 1..=20 {
                let t = lo + (hi - lo) * b as f64 / 21.0;
                let cond = ScalarFunction::Indicator {
                    attr,
                    op: CmpOp::Le,
                    threshold: lmfao_data::Value::Double(t),
                };
                batch.push(
                    format!("rt_{name}_{b}"),
                    vec![],
                    vec![
                        Aggregate::product(ProductTerm::single(cond.clone())),
                        Aggregate::product(
                            ProductTerm::single(cond.clone())
                                .times(ScalarFunction::Identity(label)),
                        ),
                        Aggregate::product(ProductTerm::single(cond).times(
                            ScalarFunction::Power {
                                attr: label,
                                exponent: 2,
                            },
                        )),
                    ],
                );
            }
        }
        for name in &self.categorical {
            let attr = ds.attr(name);
            batch.push(
                format!("rt_cat_{name}"),
                vec![attr],
                vec![
                    Aggregate::count(),
                    Aggregate::sum(label),
                    Aggregate::sum_square(label),
                ],
            );
        }
        batch
    }

    /// The pairwise mutual-information batch (MI workload).
    pub fn mutual_info_batch(&self, ds: &Dataset) -> QueryBatch {
        mutual_info_batch(&Self::attrs(ds, &self.mutual_info)).batch
    }

    /// The data-cube batch (DC workload): three dimensions, five measures.
    pub fn datacube_batch(&self, ds: &Dataset) -> QueryBatch {
        datacube_batch(
            &Self::attrs(ds, &self.cube_dims),
            &Self::attrs(ds, &self.cube_measures),
        )
        .batch
    }

    /// All four named workloads of Tables 2 and 3.
    pub fn workloads(&self, ds: &Dataset) -> Vec<(&'static str, QueryBatch)> {
        vec![
            ("CM", self.covar_batch(ds)),
            ("RT", self.rt_node_batch(ds)),
            ("MI", self.mutual_info_batch(ds)),
            ("DC", self.datacube_batch(ds)),
        ]
    }
}

/// Builds an LMFAO engine for a dataset with the given configuration. When
/// several engines over the same dataset are needed (the ablation ladder),
/// prepare the database once with [`shared_for`] and use
/// [`engine_for_shared`] instead of paying one full database clone + sort per
/// configuration.
pub fn engine_for(ds: &Dataset, config: EngineConfig) -> Engine {
    Engine::new(ds.db.clone(), ds.tree.clone(), config)
}

/// Sorts and freezes a dataset's database once for sharing across engine
/// configurations.
pub fn shared_for(ds: &Dataset) -> SharedDatabase {
    SharedDatabase::prepare(ds.db.clone(), &ds.tree)
}

/// Builds an engine over an already prepared shared database (cheap: no
/// clone, no re-sort).
pub fn engine_for_shared(db: &SharedDatabase, ds: &Dataset, config: EngineConfig) -> Engine {
    Engine::with_shared(db.clone(), ds.tree.clone(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_datagen::Scale;

    #[test]
    fn workload_specs_resolve_for_all_datasets() {
        for ds in lmfao_datagen::all_datasets(Scale::small()) {
            let spec = WorkloadSpec::for_dataset(&ds.name);
            let workloads = spec.workloads(&ds);
            assert_eq!(workloads.len(), 4);
            for (name, batch) in &workloads {
                assert!(!batch.is_empty(), "{}/{name} batch is empty", ds.name);
            }
            // The DC workload always has 2^3 = 8 queries.
            assert_eq!(workloads[3].1.len(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "no workload specification")]
    fn unknown_dataset_panics() {
        WorkloadSpec::for_dataset("Unknown");
    }

    #[test]
    fn engines_execute_the_count_workload() {
        let ds = lmfao_datagen::favorita::generate(Scale::small());
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let engine = engine_for(&ds, EngineConfig::default());
        let result = engine.execute(&spec.count_batch(&ds)).unwrap();
        assert!(result.query("count").scalar()[0] > 0.0);
    }

    #[test]
    fn shared_databases_back_several_engine_configurations() {
        let ds = lmfao_datagen::favorita::generate(Scale::small());
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let shared = shared_for(&ds);
        let batch = spec.count_batch(&ds);
        let mut counts = Vec::new();
        for (_, config) in EngineConfig::ablation_ladder(2) {
            let engine = engine_for_shared(&shared, &ds, config);
            let prepared = engine.prepare(&batch).unwrap();
            counts.push(
                prepared
                    .execute(&lmfao_expr::DynamicRegistry::new())
                    .unwrap()
                    .query("count")
                    .scalar()[0],
            );
        }
        assert!(counts.iter().all(|&c| c == counts[0] && c > 0.0));
    }
}
