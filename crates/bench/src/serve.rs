//! Concurrent-serving benchmark: readers answering named-query lookups from
//! epoch-published snapshots while one writer drains an update stream.
//!
//! [`run_serve`] builds a [`lmfao_core::Maintainer`] over a workload batch,
//! then runs `readers` threads against its [`lmfao_core::SnapshotHandle`] for
//! a fixed wall-clock window while a pipelined two-thread writer drains an
//! update stream: a **pacer** offers [`lmfao_data::TableDelta`]s from
//! [`lmfao_datagen::update_stream`] into a [`lmfao_core::DeltaBuffer`] at a
//! fixed target cadence (a slow commit never resets the schedule — the
//! shortfall is recorded, not silently absorbed), and a **committer** flushes
//! the buffer into coalesced transactions and commits them, so the scan of
//! generation G+1 overlaps the enqueueing of its successors. Readers never
//! block on a refresh: each read is `handle.load()` (pin the current
//! generation, a lock-free hazard-pointer acquire) followed by a query lookup
//! on the pinned, immutable snapshot. The maintainer's generation GC runs
//! with a configurable [`ServeConfig::history_window`]; the report records
//! the retained-generation count and approximate retained bytes.
//!
//! Every reader records per-read latency into a log-bucketed
//! [`LatencyHistogram`] and retains a capped set of *pinned samples*
//! (generation + query name + the observed result). After the run the
//! harness audits a bounded number of distinct sampled generations against
//! [`lmfao_baseline::RecomputeReference::for_snapshot`] — a fresh engine over
//! the snapshot's own database state — and counts mismatches. A non-zero
//! [`ServeReport::mismatches`] means a reader observed a value that full
//! recomputation at its pinned generation cannot reproduce, which is the one
//! thing this benchmark exists to rule out.
//!
//! Independently of the recompute audit, the writer retains every published
//! [`lmfao_certify::Certificate`] (the generation-0 execute certificate plus
//! one maintenance certificate per published generation) and, for the same
//! time-spread sample of pinned generations, the untrusted-engine /
//! trusted-checker split is exercised end to end:
//! [`lmfao_certify::check_chain`] must accept the chain from generation 0 up
//! to each sampled generation. Any rejection counts as a
//! [`ServeReport::certificate_failures`] and fails the run.

use lmfao_baseline::RecomputeReference;
use lmfao_certify::{check_chain, Certificate};
use lmfao_core::{DeltaBuffer, EngineConfig, QueryResult, ViewSnapshot, DEFAULT_HISTORY_WINDOW};
use lmfao_datagen::{fact_relation, update_stream, Dataset, UpdateMix};
use lmfao_expr::{DynamicRegistry, QueryBatch};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Relative tolerance when comparing a sampled read against the recompute
/// referee: float aggregate addition is not associative, so maintained state
/// and a fresh scan may differ in the last bits.
pub const VERIFY_REL_EPS: f64 = 1e-9;

/// How many pinned samples each reader retains for post-run verification.
const SAMPLES_PER_READER: usize = 8;

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of reader threads.
    pub readers: usize,
    /// Wall-clock duration of the run in seconds.
    pub duration_secs: f64,
    /// Target update rate for the writer thread (deltas applied per second).
    pub updates_per_sec: f64,
    /// Seed of the update stream (reader query choice derives from it too).
    pub seed: u64,
    /// Cap on distinct sampled generations recomputed during verification
    /// (each one pays a full from-scratch batch execution).
    pub verify_generations: usize,
    /// Generation-GC window of the maintainer: how many recently published
    /// generations the writer retains (see
    /// [`lmfao_core::Maintainer::set_history_window`]).
    pub history_window: usize,
    /// Print a progress line roughly once per second while running.
    pub progress: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            readers: 4,
            duration_secs: 5.0,
            updates_per_sec: 200.0,
            seed: 42,
            verify_generations: 6,
            history_window: DEFAULT_HISTORY_WINDOW,
            progress: false,
        }
    }
}

/// The outcome of a serving run: reader throughput and latency quantiles,
/// writer throughput, and the post-run verification verdict.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Reader threads that ran.
    pub readers: usize,
    /// Actual wall-clock duration in seconds.
    pub duration_secs: f64,
    /// Total completed reads across all readers.
    pub total_reads: u64,
    /// Reads per second across all readers.
    pub queries_per_sec: f64,
    /// Median read latency in microseconds.
    pub p50_us: f64,
    /// 95th-percentile read latency in microseconds.
    pub p95_us: f64,
    /// 99th-percentile read latency in microseconds.
    pub p99_us: f64,
    /// Worst observed read latency in microseconds.
    pub max_us: f64,
    /// Deltas the writer applied (committed) within the window.
    pub updates_applied: u64,
    /// Achieved writer rate (deltas per second).
    pub updates_per_sec: f64,
    /// Deltas the pacer offered within the window. The pacer holds the
    /// target cadence regardless of commit speed, so `updates_offered -
    /// updates_applied` is the backlog a too-slow committer left behind.
    pub updates_offered: u64,
    /// Offered rate (deltas per second) — the requested rate as actually
    /// delivered by the pacer clock.
    pub offered_updates_per_sec: f64,
    /// True when the committer applied less than 90% of what the pacer
    /// offered: the writer could not sustain the requested rate.
    pub rate_shortfall: bool,
    /// The configured target writer rate.
    pub target_updates_per_sec: f64,
    /// Generations published by the writer. At most `updates_applied`: the
    /// committer coalesces queued deltas into one commit when it falls
    /// behind the pacer.
    pub generations: u64,
    /// The configured generation-GC window.
    pub history_window: usize,
    /// Generations retained writer-side at the end of the run (bounded by
    /// `history_window`).
    pub retained_generations: usize,
    /// Approximate bytes of relation + view storage reachable from the
    /// retained history, deduplicated across generations.
    pub retained_bytes: usize,
    /// Pinned samples retained by readers.
    pub sampled_reads: usize,
    /// Distinct generations audited against the recompute referee.
    pub verified_generations: usize,
    /// Sampled reads the referee could not reproduce. Must be zero.
    pub mismatches: usize,
    /// Certificate chains (generation 0 up to a sampled pinned generation)
    /// accepted by the independent checker.
    pub certified_chains: usize,
    /// Certificate chains the checker rejected (or whose certificates were
    /// missing). Must be zero.
    pub certificate_failures: usize,
    /// Wall-clock seconds the checker spent auditing certificate chains.
    pub certify_secs: f64,
    /// A writer-side failure (a `commit` that errored), if any.
    pub writer_error: Option<String>,
}

impl ServeReport {
    /// True when the run completed with no writer error, no mismatch, and no
    /// certificate rejection.
    pub fn ok(&self) -> bool {
        self.mismatches == 0 && self.certificate_failures == 0 && self.writer_error.is_none()
    }

    /// Prints the report as aligned human-readable lines.
    pub fn print(&self) {
        println!(
            "readers {:>2}  reads {:>10}  {:>10.0} q/s  p50 {:>7.1}us  p95 {:>7.1}us  p99 {:>7.1}us  max {:>8.1}us",
            self.readers, self.total_reads, self.queries_per_sec,
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        );
        println!(
            "writer     applied {:>7} of {:>7} offered  {:>8.1}/s (target {:.0}/s)  generations {}{}",
            self.updates_applied,
            self.updates_offered,
            self.updates_per_sec,
            self.target_updates_per_sec,
            self.generations,
            if self.rate_shortfall {
                "  RATE SHORTFALL >10%"
            } else {
                ""
            }
        );
        println!(
            "gc         window {:>2}  retained {:>2} generations  ~{:.1} MiB",
            self.history_window,
            self.retained_generations,
            self.retained_bytes as f64 / (1024.0 * 1024.0)
        );
        println!(
            "verify     {} sampled reads over {} generations, {} mismatches{}",
            self.sampled_reads,
            self.verified_generations,
            self.mismatches,
            match &self.writer_error {
                Some(e) => format!("  WRITER ERROR: {e}"),
                None => String::new(),
            }
        );
        println!(
            "certify    {} chains accepted, {} rejected  ({:.3}s checker time)",
            self.certified_chains, self.certificate_failures, self.certify_secs
        );
    }
}

/// A log-bucketed latency histogram: 8 sub-buckets per power of two of
/// nanoseconds, so any recorded value lands in a bucket within 12.5% of its
/// true magnitude. Fixed 512-slot footprint, O(1) record, merges by addition
/// — each reader keeps its own and the harness folds them at join time.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    max_ns: u64,
}

/// log2(sub-buckets per octave).
const SUB_BITS: u32 = 3;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; 512],
            count: 0,
            max_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        let sub_count: u64 = 1 << SUB_BITS;
        if ns < sub_count {
            return ns as usize;
        }
        let msb = 63 - ns.leading_zeros();
        let sub = (ns >> (msb - SUB_BITS)) & (sub_count - 1);
        (((msb - SUB_BITS + 1) as u64 * sub_count) + sub) as usize
    }

    /// Lower bound (in ns) of the values a bucket holds.
    fn bucket_floor(idx: usize) -> u64 {
        let sub_count: usize = 1 << SUB_BITS;
        if idx < sub_count {
            return idx as u64;
        }
        let octave = (idx / sub_count) as u32;
        let sub = (idx % sub_count) as u64;
        (sub_count as u64 + sub) << (octave - 1)
    }

    /// Records one duration.
    pub fn record(&mut self, elapsed: Duration) {
        let ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The worst recorded value in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0.0..=1.0`) in nanoseconds: the floor of the bucket
    /// holding the ceil(q·count)-th smallest value. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_floor(idx);
            }
        }
        self.max_ns
    }
}

/// One pinned read retained for post-run verification: the snapshot the
/// reader loaded, which query it asked, and the answer it observed.
struct ReadSample {
    snapshot: Arc<ViewSnapshot>,
    query: String,
    observed: QueryResult,
}

struct ReaderOutcome {
    hist: LatencyHistogram,
    reads: u64,
    samples: Vec<ReadSample>,
}

/// Minimal xorshift64* generator so readers pick query names without pulling
/// an RNG dependency into the hot loop.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Xorshift(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// True when both results have the same group keys and every aggregate value
/// agrees within `rel_eps` relative tolerance.
fn results_match(got: &QueryResult, want: &QueryResult, rel_eps: f64) -> bool {
    if got.data.len() != want.data.len() {
        return false;
    }
    got.data.iter().all(|(key, gv)| match want.data.get(key) {
        Some(wv) => {
            gv.len() == wv.len()
                && gv
                    .iter()
                    .zip(wv)
                    .all(|(g, w)| (g - w).abs() <= rel_eps * w.abs().max(1.0))
        }
        None => false,
    })
}

/// Runs the serving benchmark for `batch` over `ds`.
///
/// Builds the maintainer on the calling thread, then spawns
/// `config.readers` reader threads plus the pacer/committer writer pair and
/// lets them run for `config.duration_secs`. The pacer offers a
/// deterministic balanced update stream against the dataset's fact relation
/// at the target cadence; the committer flushes it into coalesced
/// transactions; readers hammer [`lmfao_core::SnapshotHandle::load`] + query
/// lookups. Afterwards, sampled pinned reads are audited against a
/// from-scratch recompute at their own generation.
pub fn run_serve(
    ds: &Dataset,
    batch: &QueryBatch,
    engine_config: EngineConfig,
    config: &ServeConfig,
) -> Result<ServeReport, lmfao_core::EngineError> {
    let dynamics = DynamicRegistry::new();
    let engine = crate::engine_for(ds, engine_config);
    let mut maintainer = engine.prepare(batch)?.into_serving(&dynamics)?;
    maintainer.set_history_window(config.history_window);
    let handle = maintainer.handle();

    let names: Vec<String> = batch.queries.iter().map(|q| q.name.clone()).collect();
    assert!(!names.is_empty(), "serving needs a non-empty batch");

    // Generate twice the operations the target rate could consume, so the
    // stream never runs dry inside the window.
    let ops = ((config.updates_per_sec * config.duration_secs).ceil() as usize)
        .saturating_mul(2)
        .max(64);
    let fact = fact_relation(&ds.name);
    let stream = update_stream(ds, fact, &UpdateMix::balanced(ops).seed(config.seed));

    let stop = AtomicBool::new(false);
    let reads_ctr = AtomicU64::new(0);
    let updates_ctr = AtomicU64::new(0);
    let duration = Duration::from_secs_f64(config.duration_secs.max(0.1));
    let interval = Duration::from_secs_f64(1.0 / config.updates_per_sec.max(1e-6));

    // The pacer/committer hand-off: deltas queue in a DeltaBuffer (which
    // merges per relation) guarded by one mutex, with a condvar waking the
    // committer. Any pending delta is flushable immediately (`max_ops = 1`);
    // the age threshold is the no-new-push backstop the committer polls
    // while the queue idles.
    let queue = Mutex::new(DeltaBuffer::new(1, interval));
    let wake = Condvar::new();

    // The certificate chain: index g holds generation g's certificate. The
    // committer is the only thread that extends it (one entry per published
    // generation), so by join time every generation has its certificate on
    // file and `certs[..=g]` is exactly the chain up to generation g.
    let genesis = Arc::clone(handle.load().certificate());

    let started = Instant::now();
    let (reader_outcomes, writer, offered) = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..config.readers.max(1))
            .map(|reader_id| {
                let stop = &stop;
                let reads_ctr = &reads_ctr;
                let handle = handle.clone();
                let names = &names;
                let seed = config.seed;
                s.spawn(move || {
                    let mut rng = Xorshift::new(seed ^ (reader_id as u64 + 1));
                    let mut hist = LatencyHistogram::new();
                    let mut reads = 0u64;
                    let mut unflushed = 0u64;
                    let mut samples: Vec<ReadSample> = Vec::new();
                    // Pin samples spread across the window (not the first
                    // reads, which would all land on generation 0).
                    let sample_every = duration / (SAMPLES_PER_READER as u32 + 1);
                    let mut next_sample = Instant::now();
                    while !stop.load(Ordering::Relaxed) {
                        let name = &names[(rng.next() % names.len() as u64) as usize];
                        let t = Instant::now();
                        let snap = handle.load();
                        let result = snap
                            .query(name)
                            .expect("batch names always resolve in their own snapshot");
                        // Touch the answer so the read is not optimized away.
                        std::hint::black_box(result.data.values().next().and_then(|v| v.first()));
                        hist.record(t.elapsed());
                        reads += 1;
                        unflushed += 1;
                        if unflushed >= 1024 {
                            reads_ctr.fetch_add(unflushed, Ordering::Relaxed);
                            unflushed = 0;
                        }
                        if samples.len() < SAMPLES_PER_READER && t >= next_sample {
                            next_sample = t + sample_every;
                            let observed = result.clone();
                            samples.push(ReadSample {
                                snapshot: snap,
                                query: name.clone(),
                                observed,
                            });
                        }
                    }
                    reads_ctr.fetch_add(unflushed, Ordering::Relaxed);
                    ReaderOutcome {
                        hist,
                        reads,
                        samples,
                    }
                })
            })
            .collect();

        // Pacer: offers deltas at the target cadence. `next` advances by a
        // fixed interval and is never reset to "now" — a slow committer
        // cannot stretch the pacer's clock, so under-delivery shows up as an
        // applied-vs-offered gap instead of being silently absorbed.
        let pacer_handle = {
            let stop = &stop;
            let queue = &queue;
            let wake = &wake;
            s.spawn(move || {
                let mut next = Instant::now();
                let mut offered = 0u64;
                for delta in &stream {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    lock_queue(queue).push(delta.clone());
                    wake.notify_one();
                    offered += 1;
                    next += interval;
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
                offered
            })
        };

        // Committer: owns the maintainer. Flushes the queue into one
        // coalesced transaction per commit and publishes it, overlapping the
        // refresh of one generation with the enqueueing of the next. Exits
        // at stop; whatever is still queued is the recorded backlog.
        let committer_handle = {
            let stop = &stop;
            let queue = &queue;
            let wake = &wake;
            let updates_ctr = &updates_ctr;
            let dynamics = &dynamics;
            s.spawn(move || {
                let mut applied = 0u64;
                let mut error = None;
                let mut certs: Vec<Arc<Certificate>> = vec![genesis];
                while error.is_none() {
                    let flushed = {
                        let mut q = lock_queue(queue);
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break None;
                            }
                            if q.should_flush() {
                                break Some((q.pushes_since_flush(), q.flush()));
                            }
                            // Timed wait: the age-threshold flush must fire
                            // even if no new push ever notifies.
                            let (guard, _) = wake
                                .wait_timeout(q, Duration::from_millis(1))
                                .unwrap_or_else(PoisonError::into_inner);
                            q = guard;
                        }
                    };
                    match flushed {
                        None => break,
                        // The whole batch cancelled to nothing: the deltas
                        // are applied by definition, no generation needed.
                        Some((deltas, None)) => {
                            applied += deltas;
                            updates_ctr.fetch_add(deltas, Ordering::Relaxed);
                        }
                        Some((deltas, Some(txn))) => match maintainer.commit(txn, dynamics) {
                            Ok(_) => {
                                certs.push(Arc::clone(maintainer.snapshot().certificate()));
                                applied += deltas;
                                updates_ctr.fetch_add(deltas, Ordering::Relaxed);
                            }
                            Err(e) => error = Some(e.to_string()),
                        },
                    }
                }
                (applied, error, certs, maintainer)
            })
        };

        // Timekeeper: the main thread ends the run (and optionally narrates).
        let mut last_reads = 0u64;
        let mut last_updates = 0u64;
        let mut last_tick = started;
        while started.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(50).min(duration));
            if config.progress && last_tick.elapsed() >= Duration::from_secs(1) {
                let r = reads_ctr.load(Ordering::Relaxed);
                let u = updates_ctr.load(Ordering::Relaxed);
                let dt = last_tick.elapsed().as_secs_f64();
                println!(
                    "t={:>4.0}s  {:>10.0} q/s  {:>7.1} updates/s  generation {}",
                    started.elapsed().as_secs_f64(),
                    (r - last_reads) as f64 / dt,
                    (u - last_updates) as f64 / dt,
                    handle.generation()
                );
                last_reads = r;
                last_updates = u;
                last_tick = Instant::now();
            }
        }
        stop.store(true, Ordering::Relaxed);
        wake.notify_one();

        let outcomes: Vec<ReaderOutcome> = reader_handles
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect();
        let offered = pacer_handle.join().expect("pacer thread panicked");
        let writer = committer_handle.join().expect("committer thread panicked");
        (outcomes, writer, offered)
    });
    let (writer_applied, writer_error, certs, maintainer) = writer;
    let elapsed = started.elapsed().as_secs_f64();

    // Fold reader-side measurements.
    let mut hist = LatencyHistogram::new();
    let mut total_reads = 0u64;
    let mut samples: Vec<ReadSample> = Vec::new();
    for outcome in reader_outcomes {
        hist.merge(&outcome.hist);
        total_reads += outcome.reads;
        samples.extend(outcome.samples);
    }

    // Audit: group pinned samples by generation, recompute a bounded number
    // of distinct generations from scratch, compare every sample against the
    // recompute of *its own* generation.
    let mut by_gen: BTreeMap<u64, Vec<ReadSample>> = BTreeMap::new();
    for sample in samples {
        by_gen
            .entry(sample.snapshot.generation())
            .or_default()
            .push(sample);
    }
    let keep: Vec<u64> = spread(by_gen.keys().copied().collect(), config.verify_generations);
    let mut mismatches = 0usize;
    let mut sampled_reads = 0usize;
    for generation in &keep {
        let group = &by_gen[generation];
        let truth =
            RecomputeReference::for_snapshot(&group[0].snapshot, batch.clone()).recompute()?;
        for sample in group {
            sampled_reads += 1;
            let want = truth
                .get_query(&sample.query)
                .expect("batch names always resolve in the recompute");
            // The pinned snapshot must still answer exactly what the reader
            // saw (immutability), and that answer must match the referee.
            let still = sample.snapshot.query(&sample.query)?;
            if !results_match(&sample.observed, still, 0.0)
                || !results_match(&sample.observed, want, VERIFY_REL_EPS)
            {
                mismatches += 1;
            }
        }
    }

    // Certificate audit over the same time-spread sample: the independent
    // checker must accept the chain from generation 0 up to each sampled
    // pinned generation, and the chain must actually end there.
    let certify_started = Instant::now();
    let mut certified_chains = 0usize;
    let mut certificate_failures = 0usize;
    for &generation in &keep {
        let end = generation as usize;
        if end >= certs.len() {
            certificate_failures += 1;
            continue;
        }
        match check_chain(certs[..=end].iter().map(Arc::as_ref)) {
            Ok(summary) if summary.final_generation == generation => certified_chains += 1,
            Ok(_) | Err(_) => certificate_failures += 1,
        }
    }
    let certify_secs = certify_started.elapsed().as_secs_f64();

    Ok(ServeReport {
        readers: config.readers.max(1),
        duration_secs: elapsed,
        total_reads,
        queries_per_sec: total_reads as f64 / elapsed.max(1e-9),
        p50_us: hist.quantile_ns(0.50) as f64 / 1e3,
        p95_us: hist.quantile_ns(0.95) as f64 / 1e3,
        p99_us: hist.quantile_ns(0.99) as f64 / 1e3,
        max_us: hist.max_ns() as f64 / 1e3,
        updates_applied: writer_applied,
        updates_per_sec: writer_applied as f64 / elapsed.max(1e-9),
        updates_offered: offered,
        offered_updates_per_sec: offered as f64 / elapsed.max(1e-9),
        rate_shortfall: offered > 0 && (writer_applied as f64) < 0.9 * offered as f64,
        target_updates_per_sec: config.updates_per_sec,
        generations: handle.generation(),
        history_window: config.history_window,
        retained_generations: maintainer.retained_generations(),
        retained_bytes: maintainer.retained_bytes(),
        sampled_reads,
        verified_generations: keep.len(),
        mismatches,
        certified_chains,
        certificate_failures,
        certify_secs,
        writer_error,
    })
}

fn lock_queue(m: &Mutex<DeltaBuffer>) -> std::sync::MutexGuard<'_, DeltaBuffer> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Keeps at most `cap` elements of a sorted list, spread evenly across it
/// (always keeping the first and last when possible).
fn spread(keys: Vec<u64>, cap: usize) -> Vec<u64> {
    if keys.len() <= cap || cap == 0 {
        return keys;
    }
    (0..cap)
        .map(|i| keys[i * (keys.len() - 1) / (cap - 1).max(1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_datagen::Scale;

    #[test]
    fn histogram_quantiles_bracket_recorded_values() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_ns(0.5);
        // Log buckets: the answer is within 12.5% below the true quantile.
        assert!((437_500..=500_000).contains(&p50), "p50 = {p50}ns");
        let p99 = h.quantile_ns(0.99);
        assert!((866_250..=990_000).contains(&p99), "p99 = {p99}ns");
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.quantile_ns(0.0), h.quantile_ns(1e-9));
    }

    #[test]
    fn histogram_merge_is_addition() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for i in 0..100u64 {
            a.record(Duration::from_nanos(i * 17 + 1));
            b.record(Duration::from_nanos(i * 31 + 5));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 200);
        assert_eq!(merged.max_ns(), a.max_ns().max(b.max_ns()));
    }

    #[test]
    fn spread_keeps_ends_and_bounds_cardinality() {
        let keys: Vec<u64> = (0..100).collect();
        let kept = spread(keys.clone(), 5);
        assert_eq!(kept.len(), 5);
        assert_eq!(kept[0], 0);
        assert_eq!(*kept.last().unwrap(), 99);
        assert_eq!(spread(keys[..3].to_vec(), 5).len(), 3);
    }

    /// End-to-end smoke: a short run over the small Favorita dataset with a
    /// real writer must serve reads, publish generations, and audit clean.
    #[test]
    fn short_serving_run_audits_clean() {
        let ds = lmfao_datagen::favorita::generate(Scale::small());
        let spec = crate::WorkloadSpec::for_dataset(&ds.name);
        let batch = spec.count_batch(&ds);
        let config = ServeConfig {
            readers: 2,
            duration_secs: 0.5,
            updates_per_sec: 100.0,
            seed: 7,
            verify_generations: 3,
            history_window: 4,
            progress: false,
        };
        let report = run_serve(&ds, &batch, EngineConfig::default(), &config).unwrap();
        assert!(report.ok(), "writer error: {:?}", report.writer_error);
        assert!(report.total_reads > 0, "readers must make progress");
        assert!(report.updates_applied > 0, "writer must make progress");
        assert!(report.updates_offered >= report.updates_applied);
        // Coalescing: the committer may fold several offered deltas into one
        // published generation, never the other way around.
        assert!(report.generations > 0);
        assert!(report.generations <= report.updates_applied);
        assert!(report.retained_generations >= 1);
        assert!(
            report.retained_generations <= config.history_window,
            "GC must bound the retained history: {} > {}",
            report.retained_generations,
            config.history_window
        );
        assert!(report.retained_bytes > 0);
        assert_eq!(report.mismatches, 0);
        assert!(report.sampled_reads > 0, "verification must sample reads");
        assert!(
            report.certified_chains > 0,
            "the certificate audit must cover sampled generations"
        );
        assert_eq!(report.certificate_failures, 0);
        assert!(report.p50_us <= report.p99_us);
    }
}
