//! Isolation stress harness: concurrent readers and a transactional writer
//! recording a black-box history for the snapshot-isolation checker.
//!
//! Where [`crate::serve`] measures *throughput* and audits sampled values
//! against a recompute referee, [`run_iso`] audits the *isolation contract*
//! itself: it runs reader threads against a [`lmfao_core::SnapshotHandle`]
//! while one writer drains a multi-relation
//! [`lmfao_datagen::transaction_stream`], and every thread records what it
//! actually saw — the writer a [`CommitEvent`] per committed transaction
//! (generation, transaction id, and a digest of the full published
//! results), each reader a [`ReadEvent`] whenever the generation under its
//! handle moves (plus a periodic re-read, so repeated observation of one
//! generation is also checked). The merged [`History`] then goes through
//! [`lmfao_core::check_history`], which knows nothing about the engine and
//! simply enforces the snapshot-isolation axioms: reads see exactly some
//! committed prefix (no torn transactions), digests match commits
//! bit-for-bit, and generations never travel backwards on one handle. Any
//! [`IsoViolation`] in [`IsoReport::violations`] fails the run.

use lmfao_core::isocheck::snapshot_digest;
use lmfao_core::{check_history, CommitEvent, EngineConfig, History, IsoViolation, ReadEvent};
use lmfao_datagen::{transaction_stream, txn_relations, Dataset, UpdateMix};
use lmfao_expr::{DynamicRegistry, QueryBatch};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Configuration of one isolation stress run.
#[derive(Debug, Clone)]
pub struct IsoConfig {
    /// Number of reader threads.
    pub readers: usize,
    /// Wall-clock duration of the run in seconds.
    pub duration_secs: f64,
    /// Target writer rate (transactions committed per second).
    pub commits_per_sec: f64,
    /// Operations per relation in the generated transaction stream.
    pub operations: usize,
    /// Seed of the transaction stream.
    pub seed: u64,
}

impl Default for IsoConfig {
    fn default() -> Self {
        IsoConfig {
            readers: 4,
            duration_secs: 3.0,
            commits_per_sec: 200.0,
            operations: 4096,
            seed: 42,
        }
    }
}

/// The outcome of an isolation stress run.
#[derive(Debug, Clone)]
pub struct IsoReport {
    /// Reader threads that ran.
    pub readers: usize,
    /// Actual wall-clock duration in seconds.
    pub duration_secs: f64,
    /// Snapshot loads across all readers (recorded or not).
    pub total_reads: u64,
    /// Read events that entered the checked history.
    pub recorded_reads: usize,
    /// Commit events in the history (including the genesis generation).
    pub commits: usize,
    /// Transactions that spanned more than one relation.
    pub multi_relation_commits: usize,
    /// Every snapshot-isolation violation the checker found. Must be empty.
    pub violations: Vec<IsoViolation>,
    /// A writer-side failure (a `commit` that errored), if any.
    pub writer_error: Option<String>,
}

impl IsoReport {
    /// True when the run completed with no violation and no writer error.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.writer_error.is_none()
    }

    /// Prints the report as aligned human-readable lines.
    pub fn print(&self) {
        println!(
            "iso        readers {:>2}  {:>8} loads  {:>6} recorded reads  {:>5} commits ({} multi-relation)",
            self.readers,
            self.total_reads,
            self.recorded_reads,
            self.commits,
            self.multi_relation_commits
        );
        match (&self.writer_error, self.violations.len()) {
            (None, 0) => println!("checker    0 violations — snapshot isolation holds"),
            (err, n) => {
                println!(
                    "checker    {n} VIOLATIONS{}",
                    match err {
                        Some(e) => format!("  WRITER ERROR: {e}"),
                        None => String::new(),
                    }
                );
                for v in self.violations.iter().take(8) {
                    println!("           {v:?}");
                }
            }
        }
    }
}

/// Runs the isolation stress harness for `batch` over `ds`: `config.readers`
/// reader threads record generation movements under their own handles while
/// one writer commits multi-relation transactions against the dataset's
/// [`txn_relations`]. Returns the checker's verdict over the merged history.
pub fn run_iso(
    ds: &Dataset,
    batch: &QueryBatch,
    engine_config: EngineConfig,
    config: &IsoConfig,
) -> Result<IsoReport, lmfao_core::EngineError> {
    let dynamics = DynamicRegistry::new();
    let engine = crate::engine_for(ds, engine_config);
    let mut maintainer = engine.prepare(batch)?.into_serving(&dynamics)?;
    let handle = maintainer.handle();

    let relations = txn_relations(&ds.name);
    let mix = UpdateMix::balanced(config.operations).seed(config.seed);
    let stream = transaction_stream(ds, &relations, &mix);
    let multi_relation_commits = stream.iter().filter(|t| t.num_relations() > 1).count();

    let stop = AtomicBool::new(false);
    let duration = Duration::from_secs_f64(config.duration_secs.max(0.1));
    let interval = Duration::from_secs_f64(1.0 / config.commits_per_sec.max(1e-6));

    // The genesis generation is a commit too (transaction 0): reads of the
    // initial snapshot need a commit event to validate against.
    let genesis = handle.load();
    let mut writer_history = History::new();
    writer_history.add_commit(CommitEvent {
        txn_id: genesis.txn_id(),
        generation: genesis.generation(),
        digest: snapshot_digest(&genesis),
    });
    drop(genesis);

    let started = Instant::now();
    let (histories, total_reads, writer_history, writer_error) = std::thread::scope(|s| {
        let reader_handles: Vec<_> = (0..config.readers.max(1))
            .map(|reader_id| {
                let stop = &stop;
                let handle = handle.clone();
                s.spawn(move || {
                    let mut history = History::new();
                    let mut reads = 0u64;
                    let mut seq = 0u64;
                    let mut last_generation = u64::MAX;
                    // Re-read (and re-record) an unchanged generation about
                    // every 64 loads so steady states are validated too.
                    let mut since_recorded = 0u32;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = handle.load();
                        reads += 1;
                        since_recorded += 1;
                        if snap.generation() != last_generation || since_recorded >= 64 {
                            last_generation = snap.generation();
                            since_recorded = 0;
                            history.add_read(ReadEvent {
                                reader: reader_id,
                                seq,
                                generation: snap.generation(),
                                txn_id: snap.txn_id(),
                                digest: snapshot_digest(&snap),
                            });
                            seq += 1;
                        }
                    }
                    (history, reads)
                })
            })
            .collect();

        let writer_handle = {
            let stop = &stop;
            let dynamics = &dynamics;
            let mut history = writer_history;
            s.spawn(move || {
                let start = Instant::now();
                let mut next = start;
                let mut error = None;
                for txn in &stream {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Err(e) = maintainer.commit(txn.clone(), dynamics) {
                        error = Some(e.to_string());
                        break;
                    }
                    let snap = maintainer.snapshot();
                    history.add_commit(CommitEvent {
                        txn_id: snap.txn_id(),
                        generation: snap.generation(),
                        digest: snapshot_digest(&snap),
                    });
                    // Fixed cadence: never reset `next` to "now", so a slow
                    // commit borrows from the next slot instead of silently
                    // stretching the whole schedule (same fix as the serve
                    // bench's pacer).
                    next += interval;
                    let now = Instant::now();
                    if next > now {
                        std::thread::sleep(next - now);
                    }
                }
                (history, error)
            })
        };

        while started.elapsed() < duration {
            std::thread::sleep(Duration::from_millis(25).min(duration));
        }
        stop.store(true, Ordering::Relaxed);

        let mut histories = Vec::new();
        let mut total_reads = 0u64;
        for h in reader_handles {
            let (history, reads) = h.join().expect("reader thread panicked");
            histories.push(history);
            total_reads += reads;
        }
        let (writer_history, writer_error) = writer_handle.join().expect("writer thread panicked");
        (histories, total_reads, writer_history, writer_error)
    });

    let mut history = writer_history;
    for h in histories {
        history.merge(h);
    }
    let recorded_reads = history.reads.len();
    let commits = history.commits.len();
    let violations = check_history(&history);

    Ok(IsoReport {
        readers: config.readers.max(1),
        duration_secs: started.elapsed().as_secs_f64(),
        total_reads,
        recorded_reads,
        commits,
        multi_relation_commits: multi_relation_commits.min(commits.saturating_sub(1)),
        violations,
        writer_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmfao_datagen::Scale;

    /// End-to-end smoke: a short concurrent run over the small Favorita
    /// dataset must commit multi-relation transactions, record reads, and
    /// pass the snapshot-isolation checker with zero violations.
    #[test]
    fn short_iso_run_has_no_violations() {
        let ds = lmfao_datagen::favorita::generate(Scale::small());
        let spec = crate::WorkloadSpec::for_dataset(&ds.name);
        let batch = spec.count_batch(&ds);
        let config = IsoConfig {
            readers: 2,
            duration_secs: 0.5,
            commits_per_sec: 200.0,
            operations: 256,
            seed: 9,
        };
        let report = run_iso(&ds, &batch, EngineConfig::default(), &config).unwrap();
        assert!(
            report.ok(),
            "violations: {:?}, writer error: {:?}",
            report.violations,
            report.writer_error
        );
        assert!(report.total_reads > 0, "readers must make progress");
        assert!(report.commits > 1, "writer must commit past genesis");
        assert!(report.recorded_reads > 0, "history must record reads");
    }
}
