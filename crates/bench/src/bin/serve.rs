//! Long-running concurrent-serving loop: reader threads answer named-query
//! lookups from epoch-published snapshots while one writer drains an update
//! stream against the dataset's fact relation.
//!
//! ```text
//! cargo run --release -p lmfao-bench --bin serve -- \
//!     --dataset Retailer --readers 4 --secs 30 --updates-per-sec 200
//! ```
//!
//! Flags: `--dataset NAME` (Retailer | Favorita | Yelp | TPC-DS, default
//! Retailer), `--readers N` (default 4), `--secs S` (default 30),
//! `--updates-per-sec U` (default 200), `--history-window W` (snapshot
//! generations retained for GC, default 8), `--threads N` (engine worker
//! threads), `--seed S`. Scale comes from `LMFAO_SCALE` (default 5000).
//! Progress is printed once per second; the process exits non-zero if any
//! sampled read disagrees with a from-scratch recompute at its pinned
//! generation, or if the writer errors.

use lmfao_bench::serve::{run_serve, ServeConfig};
use lmfao_bench::WorkloadSpec;
use lmfao_core::EngineConfig;
use lmfao_datagen::{all_datasets, Scale};

fn arg_value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i + 1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dataset = "Retailer".to_string();
    let mut config = ServeConfig {
        duration_secs: 30.0,
        progress: true,
        ..ServeConfig::default()
    };
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => {
                dataset = arg_value(&args, i, "--dataset");
                i += 1;
            }
            "--readers" => {
                config.readers = arg_value(&args, i, "--readers");
                i += 1;
            }
            "--secs" => {
                config.duration_secs = arg_value(&args, i, "--secs");
                i += 1;
            }
            "--updates-per-sec" => {
                config.updates_per_sec = arg_value(&args, i, "--updates-per-sec");
                i += 1;
            }
            "--history-window" => {
                config.history_window = arg_value::<usize>(&args, i, "--history-window").max(1);
                i += 1;
            }
            "--threads" => {
                threads = arg_value::<usize>(&args, i, "--threads").max(1);
                i += 1;
            }
            "--seed" => {
                config.seed = arg_value(&args, i, "--seed");
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag `{other}`; use --dataset, --readers, --secs, \
                     --updates-per-sec, --history-window, --threads, --seed"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let sc = Scale::new(
        std::env::var("LMFAO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5_000),
        42,
    );
    let datasets = all_datasets(sc);
    let ds = datasets
        .iter()
        .find(|d| d.name == dataset)
        .unwrap_or_else(|| {
            eprintln!("unknown dataset `{dataset}`; use Retailer, Favorita, Yelp or TPC-DS");
            std::process::exit(2);
        });
    let spec = WorkloadSpec::for_dataset(&ds.name);
    let batch = spec.covar_batch(ds);
    println!(
        "serving {} — covar batch ({} queries), scale {} fact tuples, {} readers, \
         target {:.0} updates/s, {:.0}s",
        ds.name,
        batch.len(),
        sc.fact_rows,
        config.readers,
        config.updates_per_sec,
        config.duration_secs
    );

    match run_serve(ds, &batch, EngineConfig::full(threads), &config) {
        Ok(report) => {
            report.print();
            std::process::exit(if report.ok() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("serving run failed: {e}");
            std::process::exit(1);
        }
    }
}
