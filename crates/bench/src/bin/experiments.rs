//! Regenerates every table and figure of the LMFAO paper's evaluation over
//! the synthetic datasets.
//!
//! ```text
//! cargo run --release -p lmfao-bench --bin experiments -- all
//! cargo run --release -p lmfao-bench --bin experiments -- table3
//! LMFAO_SCALE=100000 cargo run --release -p lmfao-bench --bin experiments -- figure5
//! cargo run --release -p lmfao-bench --bin experiments -- --quick --json BENCH_ci.json
//! ```
//!
//! Available experiments: `table1`, `table2`, `table3`, `table4`, `table5`,
//! `figure5`, `example33`, `all`. The fact-table size is controlled with the
//! `LMFAO_SCALE` environment variable (default 20000).
//!
//! `--quick` runs the CI benchmark smoke suite instead: every Table-3
//! workload (Count, CM, RT, MI, DC) on every dataset at a reduced scale
//! (`LMFAO_SCALE`, default 5000), executing each prepared batch several times
//! and reporting per-workload **median** wall-clock plus output row counts.
//! With `--json [path]` the results are additionally written as a
//! machine-readable JSON benchmark artifact (default path `BENCH_ci.json`).
//! The process exits non-zero if any workload errors, so CI fails loudly.
//!
//! `--serve` runs the concurrent-serving benchmark (combinable with
//! `--quick` so one JSON artifact carries both): reader threads answer
//! named-query lookups from epoch-published snapshots while one writer
//! applies updates at a target rate; the report carries queries/sec,
//! p50/p95/p99 read latency, achieved updates/sec, and the post-run audit of
//! sampled reads against a from-scratch recompute at their pinned
//! generations. `--readers` takes a comma grid (e.g. `--readers 1,2,4,8`,
//! default 4): the whole serving run repeats per reader count and the
//! `"serving"` JSON section records one cell per count — reads/s, p50/p99
//! latency, achieved versus offered update rate, and the generation-GC
//! telemetry (`retained_generations`, `retained_bytes`, bounded by the
//! history window). Other tunables: `--serve-secs S` (default 5),
//! `--updates-per-sec U` (default 200), `--dataset NAME` (default
//! Retailer). Any sampled-read mismatch fails the process. Every cell also
//! carries the certificate-chain audit (accepted / rejected chains and
//! checker wall-time); a rejected chain fails the process too.
//!
//! `--certify` (with `--quick`) additionally runs every workload through
//! [`lmfao_core::PreparedBatch::execute_certified`], serializes the emitted
//! execution certificate to canonical JSON, and re-checks it with the
//! independent `lmfao-certify` crate — parse plus
//! [`lmfao_certify::check_certificate`], median of three timed passes. The
//! per-workload checker overhead lands in the JSON artifact as
//! `check_secs`; any rejected certificate fails the process.
//!
//! `--maintain` runs the maintenance suite (combinable with `--quick` /
//! `--serve` into one JSON artifact): per dataset, the RT-workload batch is
//! measured as (a) full re-execution, (b) single-delta refresh, and (c) the
//! transactional write path — multi-relation transactions over
//! [`lmfao_datagen::txn_relations`] committed in one DAG walk versus the
//! same deltas applied one relation at a time, plus the same transactions
//! walked sequentially on a single-threaded engine so the parallel-frontier
//! payoff (`frontier_speedup`) is measured directly. Medians land in the
//! `"maintenance"` JSON section together with the one-walk speedup.
//!
//! `--iso` runs the isolation stress harness: reader threads record every
//! generation movement under their own snapshot handles while one writer
//! commits multi-relation transactions, and the black-box
//! snapshot-isolation checker validates the merged history. Any violation
//! fails the process. Tunables: `--readers` (the maximum of the serving
//! grid), `--iso-secs S` (default 3), `--dataset NAME`.
//!
//! `--scaling` runs the threads × scale sweep (combinable into the same JSON
//! artifact): the CM and RT workloads of every dataset are executed at every
//! point of a thread grid (default `1,2,4,8`, override with
//! `--thread-grid 1,2,4`) crossed with a scale-factor grid multiplying the
//! base `LMFAO_SCALE` (default `1,10`, override with `--scale-factors 1,10`).
//! Each (dataset, workload, factor) sweep shares one prepared database so
//! cells differ only in the worker count; the `"scaling"` JSON section
//! records per-cell medians plus the speedup over the single-threaded cell,
//! turning `BENCH_ci.json` into scaling curves instead of single points.

use lmfao_baseline::{self as baseline, DenseTask, MaterializedEngine};
use lmfao_bench::iso::{run_iso, IsoConfig, IsoReport};
use lmfao_bench::serve::{run_serve, ServeConfig, ServeReport};
use lmfao_bench::{engine_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_datagen::{all_datasets, Dataset, Scale};
use lmfao_expr::{Aggregate, DynamicRegistry, QueryBatch};
use lmfao_ml as ml;
use std::time::Instant;

fn scale() -> Scale {
    let rows = std::env::var("LMFAO_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    Scale::new(rows, 42)
}

/// Worker-thread count: the `--threads N` flag wins, otherwise the available
/// parallelism capped at 8.
static THREAD_OVERRIDE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();

fn threads() -> usize {
    if let Some(&n) = THREAD_OVERRIDE.get() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8)
}

/// The git revision the binary runs from: `LMFAO_GIT_REVISION` /
/// `GITHUB_SHA` when set (CI), else `git rev-parse HEAD`, else "unknown".
/// Recorded in the benchmark JSON so regression diffs can name the commits.
fn git_revision() -> String {
    for var in ["LMFAO_GIT_REVISION", "GITHUB_SHA"] {
        if let Ok(rev) = std::env::var(var) {
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parses the value following a flag, exiting with a usage error if absent
/// or malformed.
fn parse_flag_value<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i + 1)
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("{flag} requires a value");
            std::process::exit(2);
        })
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Table 1: dataset characteristics.
fn table1(datasets: &[Dataset]) {
    println!("\n=== Table 1: dataset characteristics (synthetic, scaled) ===");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "", "Retailer", "Favorita", "Yelp", "TPC-DS"
    );
    let mut tuples = vec![];
    let mut sizes = vec![];
    let mut join_tuples = vec![];
    let mut join_sizes = vec![];
    let mut rels = vec![];
    let mut attrs = vec![];
    let mut cats = vec![];
    for ds in datasets {
        tuples.push(ds.total_tuples());
        sizes.push(ds.db.total_size_bytes() / (1024 * 1024));
        let join = MaterializedEngine::materialize(&ds.db, &ds.tree);
        join_tuples.push(join.join().len());
        join_sizes.push(join.join_size_bytes() / (1024 * 1024));
        rels.push(ds.db.schema().num_relations());
        attrs.push(ds.db.schema().num_attributes());
        cats.push(
            ds.db
                .attributes_of_type(lmfao_data::AttrType::Categorical)
                .len(),
        );
    }
    let row = |name: &str, vals: &[usize]| {
        println!(
            "{:<22} {:>10} {:>10} {:>10} {:>10}",
            name, vals[0], vals[1], vals[2], vals[3]
        );
    };
    row("Tuples in Database", &tuples);
    row("Size of Database MB", &sizes);
    row("Tuples in Join", &join_tuples);
    row("Size of Join MB", &join_sizes);
    row("Relations", &rels);
    row("Attributes", &attrs);
    row("Categorical Attrs", &cats);
}

/// Table 2: number of aggregates, views and groups per workload and dataset.
fn table2(datasets: &[Dataset]) {
    println!("\n=== Table 2: aggregates (A+I), views (V), groups (G), output size ===");
    println!(
        "{:<4} {:<10} {:>8} {:>8} {:>6} {:>6} {:>12}",
        "WL", "Dataset", "A", "I", "V", "G", "Output(KB)"
    );
    for ds in datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let engine = engine_for(ds, EngineConfig::full(threads()));
        for (wl, batch) in spec.workloads(ds) {
            // Planning statistics come from the prepared batch; executing it
            // fills in the output sizes.
            let prepared = engine.prepare(&batch).unwrap();
            let result = prepared.execute(&DynamicRegistry::new()).unwrap();
            let s = &result.stats;
            println!(
                "{:<4} {:<10} {:>8} {:>8} {:>6} {:>6} {:>12.1}",
                wl,
                ds.name,
                s.application_aggregates,
                s.intermediate_aggregates,
                s.num_views,
                s.num_groups,
                s.output_size_bytes as f64 / 1024.0
            );
        }
    }
}

/// Table 3: aggregate batch timings, LMFAO vs the materialized baseline.
fn table3(datasets: &[Dataset]) {
    println!("\n=== Table 3: aggregate batches — LMFAO vs materialized baseline (seconds) ===");
    println!(
        "{:<14} {:<10} {:>10} {:>12} {:>10}",
        "Batch", "Dataset", "LMFAO", "Baseline", "Speedup"
    );
    let dynamics = DynamicRegistry::new();
    for ds in datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let engine = engine_for(ds, EngineConfig::full(threads()));
        let (baseline_engine, materialize_time) =
            time(|| MaterializedEngine::materialize(&ds.db, &ds.tree));
        let mut workloads = vec![("Count", spec.count_batch(ds))];
        workloads.extend(spec.workloads(ds));
        for (wl, batch) in workloads {
            let (_, lmfao_time) = time(|| engine.execute(&batch).unwrap());
            let (_, scan_time) = time(|| baseline_engine.execute_batch(&batch, &dynamics));
            let baseline_time = materialize_time + scan_time;
            println!(
                "{:<14} {:<10} {:>10.3} {:>12.3} {:>9.1}x",
                wl,
                ds.name,
                lmfao_time,
                baseline_time,
                baseline_time / lmfao_time.max(1e-9)
            );
        }
    }
}

/// Figure 5: the optimization ablation over the covar-matrix workload.
fn figure5(datasets: &[Dataset]) {
    println!("\n=== Figure 5: covar matrix, optimization ablation (seconds) ===");
    print!("{:<20}", "Configuration");
    for ds in datasets {
        print!(" {:>10}", ds.name);
    }
    println!();
    let ladder = EngineConfig::ablation_ladder(threads());
    let mut previous: Vec<f64> = vec![];
    for (name, config) in ladder {
        print!("{name:<20}");
        let mut current = vec![];
        for (i, ds) in datasets.iter().enumerate() {
            let spec = WorkloadSpec::for_dataset(&ds.name);
            let batch = spec.covar_batch(ds);
            let engine = engine_for(ds, config);
            let (_, secs) = time(|| engine.execute(&batch).unwrap());
            if let Some(prev) = previous.get(i) {
                print!(" {:>6.2}s({:>3.1}x)", secs, prev / secs.max(1e-9));
            } else {
                print!(" {secs:>10.2}s");
            }
            current.push(secs);
        }
        println!();
        previous = current;
    }
    println!("(each row annotated with its speedup over the previous row)");
}

/// Tables 4 and 5: end-to-end model training, LMFAO vs materialize-then-learn.
fn tables45(datasets: &[Dataset]) {
    println!("\n=== Table 4: linear regression & regression trees (seconds) ===");
    println!("{:<26} {:>10} {:>10}", "", "Retailer", "Favorita");
    let mut join_times = vec![];
    let mut lr_lmfao = vec![];
    let mut lr_baseline = vec![];
    let mut rt_lmfao = vec![];
    let mut rt_baseline = vec![];
    for name in ["Retailer", "Favorita"] {
        let ds = datasets.iter().find(|d| d.name == name).unwrap();
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let label = ds.attr(&spec.label);
        let features: Vec<lmfao_data::AttrId> = spec
            .continuous
            .iter()
            .filter(|n| **n != spec.label)
            .map(|n| ds.attr(n))
            .collect();

        // Baseline: materialize + export + learn.
        let (join, t_join) = time(|| MaterializedEngine::materialize(&ds.db, &ds.tree));
        join_times.push(t_join);
        let (dense, t_export) =
            time(|| baseline::export_dense(join.join(), ds.db.schema(), &features, label));
        let (_, t_lr_base) =
            time(|| baseline::train_linear_regression_dense(&dense, 1e-3, 1e-9, 20));
        lr_baseline.push(t_join + t_export + t_lr_base);
        let (_, t_rt_base) =
            time(|| baseline::train_tree_dense(&dense, DenseTask::Regression, 4, 1000, 10));
        rt_baseline.push(t_join + t_export + t_rt_base);

        // LMFAO: covar batch + BGD; decision tree over batches.
        let engine = engine_for(ds, EngineConfig::full(threads()));
        let (_, t_lr) = time(|| {
            let mut all = features.clone();
            all.push(label);
            let cb = ml::covar_batch(&ml::CovarSpec::continuous_only(all));
            let result = engine.execute(&cb.batch).unwrap();
            let covar = ml::assemble_covar_matrix(&cb, &result);
            ml::train_linear_regression(&covar, &ml::LinRegConfig::default())
        });
        lr_lmfao.push(t_lr);
        let (_, t_rt) = time(|| {
            ml::train_decision_tree(
                &engine,
                &features,
                label,
                &ml::TreeConfig {
                    task: ml::TreeTask::Regression,
                    max_depth: 4,
                    min_samples: 1000,
                    buckets: 10,
                },
            )
        });
        rt_lmfao.push(t_rt);
    }
    let row = |name: &str, vals: &[f64]| {
        println!("{:<26} {:>10.3} {:>10.3}", name, vals[0], vals[1]);
    };
    row("Join materialization", &join_times);
    row("Linear regression LMFAO", &lr_lmfao);
    row("Linear regression baseline", &lr_baseline);
    row("Regression tree LMFAO", &rt_lmfao);
    row("Regression tree baseline", &rt_baseline);

    println!("\n=== Table 5: classification tree over TPC-DS (seconds) ===");
    let ds = datasets.iter().find(|d| d.name == "TPC-DS").unwrap();
    let label = ds.attr("preferred");
    let features: Vec<lmfao_data::AttrId> = [
        "birth_year",
        "purchase_estimate",
        "gender",
        "marital",
        "education",
        "dep_count",
        "quantity",
        "salesprice",
    ]
    .iter()
    .map(|n| ds.attr(n))
    .collect();
    let (join, t_join) = time(|| MaterializedEngine::materialize(&ds.db, &ds.tree));
    let (dense, t_export) =
        time(|| baseline::export_dense(join.join(), ds.db.schema(), &features, label));
    let (_, t_ct_base) =
        time(|| baseline::train_tree_dense(&dense, DenseTask::Classification, 4, 1000, 10));
    let engine = engine_for(ds, EngineConfig::full(threads()));
    let (tree, t_ct) = time(|| {
        ml::train_decision_tree(
            &engine,
            &features,
            label,
            &ml::TreeConfig {
                task: ml::TreeTask::Classification,
                max_depth: 4,
                min_samples: 1000,
                buckets: 10,
            },
        )
        .unwrap()
    });
    println!("{:<30} {:>10.3}", "Join materialization", t_join);
    println!("{:<30} {:>10.3}", "Classification tree LMFAO", t_ct);
    println!(
        "{:<30} {:>10.3}",
        "Classification tree baseline",
        t_join + t_export + t_ct_base
    );
    println!(
        "(LMFAO tree: {} nodes, {} aggregate queries issued)",
        tree.size(),
        tree.queries_issued
    );
}

/// Example 3.3: multi-root vs single-root evaluation over a chain schema.
fn example33() {
    println!("\n=== Example 3.3: chain schema, multi-root vs single-root ===");
    let n = 8;
    let ds = lmfao_datagen::chain::generate(n, 20_000, 300, Scale::new(0, 7));
    let mut batch = QueryBatch::new();
    for i in 1..=n {
        let attr = ds.attr(&format!("X{i}"));
        batch.push(format!("Q{i}"), vec![attr], vec![Aggregate::count()]);
    }
    let shared = lmfao_bench::shared_for(&ds);
    for (name, config) in [
        (
            "single root",
            EngineConfig {
                multi_root: false,
                ..EngineConfig::default()
            },
        ),
        ("multi root", EngineConfig::default()),
    ] {
        let engine = lmfao_bench::engine_for_shared(&shared, &ds, config);
        let (result, secs) = time(|| engine.execute(&batch).unwrap());
        println!(
            "{name:<12}: {:.3}s  ({} views, {} groups, {} roots)",
            secs, result.stats.num_views, result.stats.num_groups, result.stats.num_roots
        );
    }
}

/// One benchmarked workload of the quick suite.
struct BenchRecord {
    dataset: String,
    workload: &'static str,
    /// Median wall-clock seconds over `runs` executions of the prepared batch.
    median_secs: f64,
    /// Fastest execution.
    min_secs: f64,
    /// One-off planning (prepare) seconds.
    prepare_secs: f64,
    runs: usize,
    /// Total output rows (groups) across all queries of the batch.
    output_rows: usize,
    /// Number of queries in the batch.
    queries: usize,
    /// Median wall-clock seconds of the independent certificate checker
    /// (canonical-JSON parse + check), when `--certify` ran.
    check_secs: Option<f64>,
    error: Option<String>,
}

/// Minimal JSON string escaping (the emitted names are ASCII, but be correct).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a finite float for JSON (NaN/inf are not valid JSON numbers).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Renders the serving reader-count grid as the `"serving"` JSON object:
/// shared run parameters at the top level, one `cells` entry per reader
/// count with that run's throughput, latency percentiles, writer pipeline
/// accounting, generation-GC telemetry, and audits.
fn render_serve_json(dataset: &str, cells: &[(usize, ServeReport)]) -> String {
    let ok = !cells.is_empty() && cells.iter().all(|(_, r)| r.ok());
    let first = cells.first().map(|(_, r)| r);
    let grid = cells
        .iter()
        .map(|(n, _)| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let mut s = format!(
        "  \"serving\": {{\n    \"dataset\": \"{}\", \"ok\": {}, \
         \"target_updates_per_sec\": {}, \"history_window\": {},\n    \
         \"reader_grid\": [{}],\n    \"cells\": [\n",
        json_escape(dataset),
        ok,
        json_f64(first.map_or(f64::NAN, |r| r.target_updates_per_sec)),
        first.map_or(0, |r| r.history_window),
        grid
    );
    for (i, (readers, r)) in cells.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"readers\": {}, \"ok\": {}, \"duration_secs\": {},\n       \
             \"total_reads\": {}, \"queries_per_sec\": {}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {},\n       \
             \"updates_offered\": {}, \"updates_applied\": {}, \
             \"updates_per_sec\": {}, \"offered_updates_per_sec\": {}, \
             \"rate_shortfall\": {},\n       \
             \"generations\": {}, \"retained_generations\": {}, \"retained_bytes\": {},\n       \
             \"sampled_reads\": {}, \"verified_generations\": {}, \"mismatches\": {},\n       \
             \"certified_chains\": {}, \"certificate_failures\": {}, \"certify_secs\": {}}}",
            readers,
            r.ok(),
            json_f64(r.duration_secs),
            r.total_reads,
            json_f64(r.queries_per_sec),
            json_f64(r.p50_us),
            json_f64(r.p95_us),
            json_f64(r.p99_us),
            json_f64(r.max_us),
            r.updates_offered,
            r.updates_applied,
            json_f64(r.updates_per_sec),
            json_f64(r.offered_updates_per_sec),
            r.rate_shortfall,
            r.generations,
            r.retained_generations,
            r.retained_bytes,
            r.sampled_reads,
            r.verified_generations,
            r.mismatches,
            r.certified_chains,
            r.certificate_failures,
            json_f64(r.certify_secs)
        ));
        if i + 1 < cells.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("    ]\n  }");
    s
}

/// Renders the maintenance records as the `"maintenance"` JSON array.
fn render_maintain_json(records: &[MaintainRecord]) -> String {
    let mut s = String::from("  \"maintenance\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"dataset\": \"{}\", ", json_escape(&r.dataset)));
        match &r.error {
            Some(e) => s.push_str(&format!("\"ok\": false, \"error\": \"{}\"", json_escape(e))),
            None => s.push_str(&format!(
                "\"ok\": true, \"full_exec_secs\": {}, \"refresh_secs\": {}, \
                 \"txn_commit_secs\": {}, \"sequential_secs\": {}, \
                 \"txn_speedup\": {}, \"seq_walk_secs\": {}, \
                 \"frontier_speedup\": {}, \"txn_relations\": {}",
                json_f64(r.full_exec_secs),
                json_f64(r.refresh_secs),
                json_f64(r.txn_commit_secs),
                json_f64(r.sequential_secs),
                json_f64(r.txn_speedup),
                json_f64(r.seq_walk_secs),
                json_f64(r.frontier_speedup),
                r.txn_relations
            )),
        }
        s.push('}');
        if i + 1 < records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]");
    s
}

/// Renders the scaling sweep as the `"scaling"` JSON object. Every cell with
/// a single-threaded sibling (same dataset, workload and factor) also carries
/// `speedup_vs_1`, so the artifact encodes the scaling curves directly.
fn render_scaling_json(cells: &[ScalingCell], thread_grid: &[usize], factors: &[usize]) -> String {
    let list = |xs: &[usize]| {
        xs.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = format!(
        "  \"scaling\": {{\n    \"thread_grid\": [{}],\n    \"scale_factors\": [{}],\n    \"cells\": [\n",
        list(thread_grid),
        list(factors)
    );
    for (i, c) in cells.iter().enumerate() {
        let baseline = cells.iter().find(|b| {
            b.threads == 1
                && b.error.is_none()
                && b.dataset == c.dataset
                && b.workload == c.workload
                && b.scale_factor == c.scale_factor
        });
        s.push_str("      {");
        s.push_str(&format!(
            "\"dataset\": \"{}\", \"workload\": \"{}\", \"scale_factor\": {}, \
             \"fact_rows\": {}, \"threads\": {}, ",
            json_escape(&c.dataset),
            json_escape(c.workload),
            c.scale_factor,
            c.fact_rows,
            c.threads
        ));
        match &c.error {
            Some(e) => s.push_str(&format!("\"ok\": false, \"error\": \"{}\"", json_escape(e))),
            None => {
                s.push_str(&format!(
                    "\"ok\": true, \"median_secs\": {}, \"min_secs\": {}",
                    json_f64(c.median_secs),
                    json_f64(c.min_secs)
                ));
                if let Some(b) = baseline {
                    s.push_str(&format!(
                        ", \"speedup_vs_1\": {}",
                        json_f64(b.median_secs / c.median_secs.max(1e-9))
                    ));
                }
            }
        }
        s.push('}');
        if i + 1 < cells.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("    ]\n  }");
    s
}

/// Renders the isolation-run report as the `"isolation"` JSON object.
fn render_iso_json(dataset: &str, r: &IsoReport) -> String {
    format!(
        "  \"isolation\": {{\n    \"dataset\": \"{}\", \"ok\": {}, \"readers\": {}, \
         \"duration_secs\": {},\n    \"total_reads\": {}, \"recorded_reads\": {}, \
         \"commits\": {}, \"multi_relation_commits\": {},\n    \"violations\": {}{}\n  }}",
        json_escape(dataset),
        r.ok(),
        r.readers,
        json_f64(r.duration_secs),
        r.total_reads,
        r.recorded_reads,
        r.commits,
        r.multi_relation_commits,
        r.violations.len(),
        match &r.writer_error {
            Some(e) => format!(", \"writer_error\": \"{}\"", json_escape(e)),
            None => String::new(),
        }
    )
}

/// Renders the quick-suite records (plus the optional serving, maintenance,
/// and isolation reports) as the `BENCH_ci.json` document.
fn render_bench_json(
    records: &[BenchRecord],
    serving: Option<(&str, &[(usize, ServeReport)])>,
    maintenance: Option<&[MaintainRecord]>,
    isolation: Option<(&str, &IsoReport)>,
    scaling: Option<(&[ScalingCell], &[usize], &[usize])>,
    sc: Scale,
    threads: usize,
) -> String {
    let mut parts = Vec::new();
    if !records.is_empty() {
        parts.push("quick");
    }
    if serving.is_some() {
        parts.push("serve");
    }
    if maintenance.is_some() {
        parts.push("maintain");
    }
    if isolation.is_some() {
        parts.push("iso");
    }
    if scaling.is_some() {
        parts.push("scaling");
    }
    let suite = if parts.is_empty() {
        "quick".to_string()
    } else {
        parts.join("+")
    };
    let certified = !records.is_empty() && records.iter().all(|r| r.check_secs.is_some());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"suite\": \"{suite}\",\n"));
    s.push_str(&format!("  \"scale\": {},\n", sc.fact_rows));
    s.push_str(&format!("  \"seed\": {},\n", sc.seed));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!(
        "  \"git_revision\": \"{}\",\n",
        json_escape(&git_revision())
    ));
    let errors = records.iter().filter(|r| r.error.is_some()).count();
    s.push_str(&format!("  \"errors\": {errors},\n"));
    s.push_str(&format!("  \"certify\": {certified},\n"));
    s.push_str("  \"workloads\": [\n");
    for (i, r) in records.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!(
            "\"name\": \"{}/{}\", \"dataset\": \"{}\", \"workload\": \"{}\", ",
            json_escape(&r.dataset),
            json_escape(r.workload),
            json_escape(&r.dataset),
            json_escape(r.workload)
        ));
        match &r.error {
            Some(e) => s.push_str(&format!("\"ok\": false, \"error\": \"{}\"", json_escape(e))),
            None => {
                s.push_str(&format!(
                    "\"ok\": true, \"median_secs\": {}, \"min_secs\": {}, \"prepare_secs\": {}, \
                     \"runs\": {}, \"queries\": {}, \"output_rows\": {}",
                    json_f64(r.median_secs),
                    json_f64(r.min_secs),
                    json_f64(r.prepare_secs),
                    r.runs,
                    r.queries,
                    r.output_rows
                ));
                if let Some(check) = r.check_secs {
                    s.push_str(&format!(
                        ", \"certified\": true, \"check_secs\": {}",
                        json_f64(check)
                    ));
                }
            }
        }
        s.push('}');
        if i + 1 < records.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]");
    if let Some((dataset, cells)) = serving {
        s.push_str(",\n");
        s.push_str(&render_serve_json(dataset, cells));
    }
    if let Some(maintain_records) = maintenance {
        s.push_str(",\n");
        s.push_str(&render_maintain_json(maintain_records));
    }
    if let Some((dataset, report)) = isolation {
        s.push_str(",\n");
        s.push_str(&render_iso_json(dataset, report));
    }
    if let Some((cells, thread_grid, factors)) = scaling {
        s.push_str(",\n");
        s.push_str(&render_scaling_json(cells, thread_grid, factors));
    }
    s.push_str("\n}\n");
    s
}

/// One cell of the `--scaling` sweep: a (dataset, workload, scale factor,
/// thread count) point, median of several prepared executions.
struct ScalingCell {
    dataset: String,
    workload: &'static str,
    /// Multiplier applied to the base `LMFAO_SCALE`.
    scale_factor: usize,
    /// Fact-table rows actually generated for this cell.
    fact_rows: usize,
    threads: usize,
    median_secs: f64,
    min_secs: f64,
    error: Option<String>,
}

/// The `--scaling` sweep: the CM and RT workloads of every dataset, executed
/// at every point of `thread_grid` × `scale_factors`. For each scale factor
/// the four databases are regenerated once (streaming, so the 10–100× grids
/// stay memory-flat) and shared across all thread counts, so a sweep's cells
/// differ only in the worker count handed to the morsel scheduler.
fn scaling_bench(base: Scale, thread_grid: &[usize], scale_factors: &[usize]) -> Vec<ScalingCell> {
    const RUNS: usize = 3;
    println!(
        "\nLMFAO scaling — threads {thread_grid:?} × scale {scale_factors:?} \
         (base {} fact tuples), {RUNS} runs/cell",
        base.fact_rows
    );
    println!(
        "{:<10} {:<4} {:>7} {:>10} {:>8} {:>12} {:>9}",
        "Dataset", "WL", "factor", "rows", "threads", "median", "speedup"
    );
    let dynamics = DynamicRegistry::new();
    let mut cells = Vec::new();
    for &factor in scale_factors {
        let sc = base.scaled(factor);
        let (datasets, gen_secs) = time(|| all_datasets(sc));
        println!(
            "  ({factor}x: 4 datasets at {} fact tuples in {gen_secs:.2}s)",
            sc.fact_rows
        );
        for ds in &datasets {
            let spec = WorkloadSpec::for_dataset(&ds.name);
            let shared = lmfao_bench::shared_for(ds);
            for (wl, batch) in [("CM", spec.covar_batch(ds)), ("RT", spec.rt_node_batch(ds))] {
                let mut single_threaded = f64::NAN;
                for &t in thread_grid {
                    let engine = lmfao_bench::engine_for_shared(&shared, ds, EngineConfig::full(t));
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let prepared = engine.prepare(&batch).unwrap();
                        let mut times = Vec::with_capacity(RUNS);
                        for _ in 0..RUNS {
                            let (_, secs) = time(|| prepared.execute(&dynamics).unwrap());
                            times.push(secs);
                        }
                        times.sort_by(f64::total_cmp);
                        (times[times.len() / 2], times[0])
                    }));
                    let cell = match outcome {
                        Ok((median_secs, min_secs)) => {
                            if t == 1 {
                                single_threaded = median_secs;
                            }
                            println!(
                                "{:<10} {:<4} {:>7} {:>10} {:>8} {:>11.4}s {:>8.2}x",
                                ds.name,
                                wl,
                                factor,
                                sc.fact_rows,
                                t,
                                median_secs,
                                single_threaded / median_secs.max(1e-9)
                            );
                            ScalingCell {
                                dataset: ds.name.clone(),
                                workload: wl,
                                scale_factor: factor,
                                fact_rows: sc.fact_rows,
                                threads: t,
                                median_secs,
                                min_secs,
                                error: None,
                            }
                        }
                        Err(panic) => {
                            let msg = panic
                                .downcast_ref::<String>()
                                .cloned()
                                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                                .unwrap_or_else(|| "unknown panic".to_string());
                            println!(
                                "{:<10} {:<4} {:>7} threads {t} ERROR: {msg}",
                                ds.name, wl, factor
                            );
                            ScalingCell {
                                dataset: ds.name.clone(),
                                workload: wl,
                                scale_factor: factor,
                                fact_rows: sc.fact_rows,
                                threads: t,
                                median_secs: f64::NAN,
                                min_secs: f64::NAN,
                                error: Some(msg),
                            }
                        }
                    };
                    cells.push(cell);
                }
            }
        }
    }
    cells
}

/// The CI benchmark smoke suite: every Table-3 workload on every dataset,
/// median-of-N prepared executions. Returns the per-workload records; any
/// record with an error set means the run must exit non-zero.
fn quick(datasets: &[Dataset], sc: Scale, threads: usize, certify: bool) -> Vec<BenchRecord> {
    const RUNS: usize = 3;
    println!(
        "LMFAO bench smoke — scale {} fact tuples, {threads} threads, {RUNS} runs/workload{}",
        sc.fact_rows,
        if certify { ", certified" } else { "" }
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    for ds in datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let engine = engine_for(ds, EngineConfig::full(threads));
        let mut workloads = vec![("Count", spec.count_batch(ds))];
        workloads.extend(spec.workloads(ds));
        for (wl, batch) in workloads {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let dynamics = DynamicRegistry::new();
                let (prepared, prepare_secs) = time(|| engine.prepare(&batch).unwrap());
                let mut times = Vec::with_capacity(RUNS);
                let mut output_rows = 0usize;
                for _ in 0..RUNS {
                    let (result, secs) = time(|| prepared.execute(&dynamics).unwrap());
                    output_rows = result.queries.iter().map(|q| q.len()).sum();
                    times.push(secs);
                }
                times.sort_by(f64::total_cmp);
                // The certified pass exercises the untrusted-engine /
                // trusted-checker split end to end: emit the certificate,
                // serialize it to canonical JSON, and time the independent
                // checker (parse + check) over three passes.
                let check_secs = certify.then(|| {
                    let (_, cert) = prepared.execute_certified(&dynamics).unwrap();
                    let json = lmfao_certify::to_json(&cert);
                    let mut checks = Vec::with_capacity(RUNS);
                    for _ in 0..RUNS {
                        let (verdict, secs) = time(|| {
                            lmfao_certify::parse_certificate(&json)
                                .and_then(|c| lmfao_certify::check_certificate(&c))
                        });
                        if let Err(e) = verdict {
                            panic!("certificate rejected: {e}");
                        }
                        checks.push(secs);
                    }
                    checks.sort_by(f64::total_cmp);
                    checks[checks.len() / 2]
                });
                (
                    times[times.len() / 2],
                    times[0],
                    prepare_secs,
                    output_rows,
                    check_secs,
                )
            }));
            let record = match outcome {
                Ok((median_secs, min_secs, prepare_secs, output_rows, check_secs)) => BenchRecord {
                    dataset: ds.name.clone(),
                    workload: wl,
                    median_secs,
                    min_secs,
                    prepare_secs,
                    runs: RUNS,
                    output_rows,
                    queries: batch.len(),
                    check_secs,
                    error: None,
                },
                Err(panic) => {
                    let msg = panic
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "unknown panic".to_string());
                    BenchRecord {
                        dataset: ds.name.clone(),
                        workload: wl,
                        median_secs: f64::NAN,
                        min_secs: f64::NAN,
                        prepare_secs: f64::NAN,
                        runs: 0,
                        output_rows: 0,
                        queries: batch.len(),
                        check_secs: None,
                        error: Some(msg),
                    }
                }
            };
            match &record.error {
                Some(e) => println!("{:<10} {:<6} ERROR: {e}", record.dataset, record.workload),
                None => println!(
                    "{:<10} {:<6} median {:>9.4}s  min {:>9.4}s  plan {:>9.4}s  {:>8} rows / {} queries{}",
                    record.dataset,
                    record.workload,
                    record.median_secs,
                    record.min_secs,
                    record.prepare_secs,
                    record.output_rows,
                    record.queries,
                    match record.check_secs {
                        Some(c) => format!("  check {c:>8.5}s"),
                        None => String::new(),
                    }
                ),
            }
            records.push(record);
        }
    }
    records
}

/// Runs the serving benchmark for the CI artifact: covar batch over one
/// dataset, reader threads against epoch-published snapshots, one paced
/// writer. Prints the report; the caller folds `report.ok()` into the exit
/// code.
fn serve_bench(
    datasets: &[Dataset],
    dataset: &str,
    threads: usize,
    config: &ServeConfig,
) -> Option<ServeReport> {
    let ds = datasets.iter().find(|d| d.name == dataset)?;
    let spec = WorkloadSpec::for_dataset(&ds.name);
    let batch = spec.covar_batch(ds);
    println!(
        "\nLMFAO serving — {} covar batch ({} queries), {} readers, target {:.0} updates/s, {:.0}s",
        ds.name,
        batch.len(),
        config.readers,
        config.updates_per_sec,
        config.duration_secs
    );
    match run_serve(ds, &batch, EngineConfig::full(threads), config) {
        Ok(report) => {
            report.print();
            Some(report)
        }
        Err(e) => {
            eprintln!("serving run failed: {e}");
            None
        }
    }
}

/// Runs the isolation stress harness for the CI artifact: multi-relation
/// transaction stream against the covar batch of one dataset, concurrent
/// readers recording a black-box history, checker verdict over the merge.
fn iso_bench(
    datasets: &[Dataset],
    dataset: &str,
    threads: usize,
    config: &IsoConfig,
) -> Option<IsoReport> {
    let ds = datasets.iter().find(|d| d.name == dataset)?;
    let spec = WorkloadSpec::for_dataset(&ds.name);
    let batch = spec.covar_batch(ds);
    println!(
        "\nLMFAO isolation — {} covar batch ({} queries), {} readers, target {:.0} commits/s, {:.0}s",
        ds.name,
        batch.len(),
        config.readers,
        config.commits_per_sec,
        config.duration_secs
    );
    match run_iso(ds, &batch, EngineConfig::full(threads), config) {
        Ok(report) => {
            report.print();
            Some(report)
        }
        Err(e) => {
            eprintln!("isolation run failed: {e}");
            None
        }
    }
}

/// The CI entry point behind `--quick` / `--serve` / `--maintain` / `--iso`:
/// runs the selected suites over one shared set of generated datasets,
/// writes the combined JSON artifact, and returns the process exit code.
fn ci_mode(
    is_quick: bool,
    certify: bool,
    is_maintain: bool,
    serve_config: Option<(&str, &ServeConfig, &[usize])>,
    iso_config: Option<(&str, &IsoConfig)>,
    scaling_config: Option<(&[usize], &[usize])>,
    json_path: Option<&str>,
) -> i32 {
    let sc = Scale::new(
        std::env::var("LMFAO_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(5_000),
        42,
    );
    let threads = threads();
    let (datasets, gen_time) = time(|| all_datasets(sc));
    println!("generated 4 datasets in {gen_time:.2}s");

    let records = if is_quick {
        quick(&datasets, sc, threads, certify)
    } else {
        Vec::new()
    };
    let mut code = 0;
    let errors = records.iter().filter(|r| r.error.is_some()).count();
    if errors > 0 {
        eprintln!("{errors} workload(s) errored");
        code = 1;
    }

    let serving = serve_config.map(|(dataset, config, reader_grid)| {
        let mut cells: Vec<(usize, ServeReport)> = Vec::new();
        for &readers in reader_grid {
            let mut cell_config = config.clone();
            cell_config.readers = readers;
            match serve_bench(&datasets, dataset, threads, &cell_config) {
                Some(r) => {
                    if !r.ok() {
                        eprintln!(
                            "serving audit failed at {readers} reader(s): {} mismatch(es), \
                             {} certificate rejection(s){}",
                            r.mismatches,
                            r.certificate_failures,
                            r.writer_error
                                .as_deref()
                                .map(|e| format!(", writer error: {e}"))
                                .unwrap_or_default()
                        );
                        code = 1;
                    }
                    cells.push((readers, r));
                }
                None => code = 1,
            }
        }
        (dataset, cells)
    });

    let maintenance = is_maintain.then(|| {
        let maintain_records = maintain_bench(&datasets, threads);
        let maintain_errors = maintain_records
            .iter()
            .filter(|r| r.error.is_some())
            .count();
        if maintain_errors > 0 {
            eprintln!("{maintain_errors} maintenance dataset(s) errored");
            code = 1;
        }
        maintain_records
    });

    let scaling_cells = scaling_config.map(|(thread_grid, factors)| {
        let cells = scaling_bench(sc, thread_grid, factors);
        let cell_errors = cells.iter().filter(|c| c.error.is_some()).count();
        if cell_errors > 0 {
            eprintln!("{cell_errors} scaling cell(s) errored");
            code = 1;
        }
        cells
    });

    let isolation = iso_config.map(|(dataset, config)| {
        let report = iso_bench(&datasets, dataset, threads, config);
        match &report {
            Some(r) if r.ok() => {}
            Some(r) => {
                eprintln!(
                    "isolation check failed: {} violation(s){}",
                    r.violations.len(),
                    r.writer_error
                        .as_deref()
                        .map(|e| format!(", writer error: {e}"))
                        .unwrap_or_default()
                );
                code = 1;
            }
            None => code = 1,
        }
        (dataset, report)
    });

    if let Some(path) = json_path {
        let serving_section = serving
            .as_ref()
            .filter(|(_, cells)| !cells.is_empty())
            .map(|(ds, cells)| (*ds, cells.as_slice()));
        let iso_section = isolation
            .as_ref()
            .and_then(|(ds, r)| r.as_ref().map(|r| (*ds, r)));
        let scaling_section = scaling_cells
            .as_ref()
            .zip(scaling_config)
            .map(|(cells, (grid, factors))| (cells.as_slice(), grid, factors));
        let doc = render_bench_json(
            &records,
            serving_section,
            maintenance.as_deref(),
            iso_section,
            scaling_section,
            sc,
            threads,
        );
        if let Err(e) = std::fs::write(path, &doc) {
            eprintln!("failed to write {path}: {e}");
            return 1;
        }
        let mut extras = String::new();
        if serving_section.is_some() {
            extras.push_str(" + serving");
        }
        if maintenance.is_some() {
            extras.push_str(" + maintenance");
        }
        if iso_section.is_some() {
            extras.push_str(" + isolation");
        }
        if scaling_section.is_some() {
            extras.push_str(" + scaling");
        }
        println!("wrote {path} ({} workloads{extras})", records.len());
    }
    code
}

/// One dataset's maintenance measurements: full re-execution versus
/// single-delta refresh, and the transactional write path versus applying
/// the same deltas one relation at a time.
struct MaintainRecord {
    dataset: String,
    /// Median full-execution wall-clock of the prepared RT batch.
    full_exec_secs: f64,
    /// Median single-delta refresh (fact-table stream, one-op deltas).
    refresh_secs: f64,
    /// Median one-walk commit of a multi-relation transaction.
    txn_commit_secs: f64,
    /// Median of committing the same transaction's deltas sequentially,
    /// one relation at a time (sum of the per-delta commits).
    sequential_secs: f64,
    /// `sequential_secs / txn_commit_secs` — the one-DAG-walk payoff.
    txn_speedup: f64,
    /// Median one-walk commit of the same transactions on a single-threaded
    /// engine — the sequential DAG walk the parallel frontier replaces.
    seq_walk_secs: f64,
    /// `seq_walk_secs / txn_commit_secs` — the parallel-frontier payoff.
    /// Near 1.0 on single-core containers, where the frontier pool degrades
    /// to one worker.
    frontier_speedup: f64,
    /// Relations each measured transaction spans.
    txn_relations: usize,
    error: Option<String>,
}

/// The `--maintain` suite: refresh latency of maintained batches versus
/// full re-execution, plus the transactional write path versus sequential
/// per-relation application, on the RT workload of every dataset. Medians
/// over several reproducible updates.
fn maintain_bench(datasets: &[Dataset], threads: usize) -> Vec<MaintainRecord> {
    use lmfao_datagen::{
        fact_relation, transaction_stream, txn_relations, update_stream, UpdateMix,
    };
    const REFRESHES: usize = 9;
    const TXNS: usize = 9;
    println!(
        "\nLMFAO maintenance — RT batch, {REFRESHES} refreshes + {TXNS} transactions per dataset"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>9} {:>12} {:>12} {:>9} {:>12} {:>9}",
        "Dataset",
        "full exec",
        "refresh",
        "speedup",
        "txn commit",
        "sequential",
        "txn spdup",
        "seq walk",
        "frontier"
    );
    let dynamics = DynamicRegistry::new();
    let mut records = Vec::new();
    for ds in datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let batch = spec.rt_node_batch(ds);
        let engine = engine_for(ds, EngineConfig::full(threads));
        let fail = |msg: String| MaintainRecord {
            dataset: ds.name.clone(),
            full_exec_secs: f64::NAN,
            refresh_secs: f64::NAN,
            txn_commit_secs: f64::NAN,
            sequential_secs: f64::NAN,
            txn_speedup: f64::NAN,
            seq_walk_secs: f64::NAN,
            frontier_speedup: f64::NAN,
            txn_relations: 0,
            error: Some(msg),
        };
        let prepared = match engine.prepare(&batch) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<10} ERROR: {e}", ds.name);
                records.push(fail(e.to_string()));
                continue;
            }
        };
        // Full-execute median.
        let mut exec_times = Vec::new();
        for _ in 0..3 {
            let (_, secs) = time(|| prepared.execute(&dynamics).unwrap());
            exec_times.push(secs);
        }
        exec_times.sort_by(f64::total_cmp);
        let full = exec_times[exec_times.len() / 2];

        // Three identical maintained states: one commits whole transactions
        // (parallel frontier when `threads > 1`), one applies the same
        // deltas one relation at a time (several DAG walks), and one commits
        // whole transactions on a single-threaded engine (one *sequential*
        // DAG walk) — so both the one-walk payoff and the parallel-frontier
        // payoff are measured over identical data.
        let mut txn_side = match prepared.into_maintained(&dynamics) {
            Ok(m) => m,
            Err(e) => {
                println!("{:<10} ERROR: {e}", ds.name);
                records.push(fail(e.to_string()));
                continue;
            }
        };
        let mut seq_side = match engine
            .prepare(&batch)
            .and_then(|p| p.into_maintained(&dynamics))
        {
            Ok(m) => m,
            Err(e) => {
                println!("{:<10} ERROR: {e}", ds.name);
                records.push(fail(e.to_string()));
                continue;
            }
        };
        let mut walk_side = match engine_for(ds, EngineConfig::full(1))
            .prepare(&batch)
            .and_then(|p| p.into_maintained(&dynamics))
        {
            Ok(m) => m,
            Err(e) => {
                println!("{:<10} ERROR: {e}", ds.name);
                records.push(fail(e.to_string()));
                continue;
            }
        };

        // Single-delta refresh median over a reproducible fact-table stream.
        let fact = fact_relation(&ds.name);
        let stream = update_stream(ds, fact, &UpdateMix::balanced(REFRESHES));
        let mut refresh_times = Vec::new();
        for delta in &stream {
            let (_, secs) = time(|| txn_side.commit(delta, &dynamics).unwrap());
            seq_side.commit(delta, &dynamics).unwrap();
            walk_side.commit(delta, &dynamics).unwrap();
            refresh_times.push(secs);
        }
        refresh_times.sort_by(f64::total_cmp);
        let refresh = refresh_times[refresh_times.len() / 2];

        // Transactional write path: multi-relation transactions committed in
        // one walk versus their deltas applied relation by relation.
        let relations = txn_relations(&ds.name);
        let txns: Vec<_> = transaction_stream(ds, &relations, &UpdateMix::balanced(TXNS).seed(7))
            .into_iter()
            .filter(|t| t.num_relations() == relations.len())
            .take(TXNS)
            .collect();
        let mut txn_times = Vec::new();
        let mut seq_times = Vec::new();
        let mut walk_times = Vec::new();
        for txn in &txns {
            let (_, txn_secs) = time(|| txn_side.commit(txn.clone(), &dynamics).unwrap());
            let (_, seq_secs) = time(|| {
                for delta in txn.deltas() {
                    seq_side.commit(delta, &dynamics).unwrap();
                }
            });
            let (_, walk_secs) = time(|| walk_side.commit(txn.clone(), &dynamics).unwrap());
            txn_times.push(txn_secs);
            seq_times.push(seq_secs);
            walk_times.push(walk_secs);
        }
        txn_times.sort_by(f64::total_cmp);
        seq_times.sort_by(f64::total_cmp);
        walk_times.sort_by(f64::total_cmp);
        let (txn_commit, sequential, seq_walk) = match txns.is_empty() {
            true => (f64::NAN, f64::NAN, f64::NAN),
            false => (
                txn_times[txn_times.len() / 2],
                seq_times[seq_times.len() / 2],
                walk_times[walk_times.len() / 2],
            ),
        };
        let txn_speedup = sequential / txn_commit.max(1e-9);
        let frontier_speedup = seq_walk / txn_commit.max(1e-9);
        println!(
            "{:<10} {:>10.4}s {:>10.6}s {:>8.1}x {:>10.6}s {:>10.6}s {:>8.2}x {:>10.6}s {:>8.2}x",
            ds.name,
            full,
            refresh,
            full / refresh.max(1e-9),
            txn_commit,
            sequential,
            txn_speedup,
            seq_walk,
            frontier_speedup
        );
        records.push(MaintainRecord {
            dataset: ds.name.clone(),
            full_exec_secs: full,
            refresh_secs: refresh,
            txn_commit_secs: txn_commit,
            sequential_secs: sequential,
            txn_speedup,
            seq_walk_secs: seq_walk,
            frontier_speedup,
            txn_relations: relations.len(),
            error: None,
        });
    }
    records
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Flag parsing: `--quick` selects the CI smoke suite; `--serve` the
    // concurrent-serving benchmark; `--maintain` the maintenance suite
    // (refresh latency plus the transactional write path); `--iso` the
    // isolation stress harness — all four combine into one artifact.
    // `--certify` adds the independent certificate check to every `--quick`
    // workload; `--json [path]` writes the machine-readable artifact
    // (default BENCH_ci.json); `--threads N` overrides the worker count
    // (recorded in the JSON).
    let mut positional: Vec<&str> = Vec::new();
    let mut is_quick = false;
    let mut is_certify = false;
    let mut is_maintain = false;
    let mut is_serve = false;
    let mut is_iso = false;
    let mut is_scaling = false;
    let mut thread_grid: Vec<usize> = vec![1, 2, 4, 8];
    let mut scale_factors: Vec<usize> = vec![1, 10];
    let mut serve_config = ServeConfig::default();
    let mut iso_config = IsoConfig::default();
    let mut reader_grid: Vec<usize> = vec![serve_config.readers];
    let mut serve_dataset = "Retailer".to_string();
    let mut json_path: Option<String> = None;
    let parse_list = |args: &[String], i: usize, flag: &str| -> Vec<usize> {
        let raw: String = parse_flag_value(args, i, flag);
        raw.split(',')
            .map(|p| {
                p.trim().parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("{flag}: `{p}` is not a positive integer");
                    std::process::exit(2);
                })
            })
            .map(|n| n.max(1))
            .collect()
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => is_quick = true,
            "--certify" => is_certify = true,
            "--maintain" => is_maintain = true,
            "--serve" => is_serve = true,
            "--iso" => is_iso = true,
            "--scaling" => is_scaling = true,
            "--thread-grid" => {
                thread_grid = parse_list(&args, i, "--thread-grid");
                i += 1;
            }
            "--scale-factors" => {
                scale_factors = parse_list(&args, i, "--scale-factors");
                i += 1;
            }
            "--readers" => {
                reader_grid = parse_list(&args, i, "--readers");
                // The isolation harness is one stress run, not a sweep: it
                // takes the most contended point of the grid.
                iso_config.readers = reader_grid.iter().copied().max().unwrap_or(1);
                i += 1;
            }
            "--serve-secs" => {
                serve_config.duration_secs = parse_flag_value(&args, i, "--serve-secs");
                i += 1;
            }
            "--iso-secs" => {
                iso_config.duration_secs = parse_flag_value(&args, i, "--iso-secs");
                i += 1;
            }
            "--updates-per-sec" => {
                serve_config.updates_per_sec = parse_flag_value(&args, i, "--updates-per-sec");
                i += 1;
            }
            "--dataset" => {
                serve_dataset = parse_flag_value(&args, i, "--dataset");
                i += 1;
            }
            "--threads" => {
                let n: usize = args
                    .get(i + 1)
                    .and_then(|a| a.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires a positive integer");
                        std::process::exit(2);
                    });
                THREAD_OVERRIDE.set(n.max(1)).ok();
                i += 1;
            }
            "--json" => {
                let next = args.get(i + 1).filter(|a| !a.starts_with("--"));
                json_path = Some(match next {
                    Some(p) => {
                        i += 1;
                        p.clone()
                    }
                    None => "BENCH_ci.json".to_string(),
                });
            }
            other => positional.push(other),
        }
        i += 1;
    }
    if is_quick || is_serve || is_maintain || is_iso || is_scaling {
        let serving = is_serve.then_some((
            serve_dataset.as_str(),
            &serve_config,
            reader_grid.as_slice(),
        ));
        let iso = is_iso.then_some((serve_dataset.as_str(), &iso_config));
        let scaling = is_scaling.then_some((thread_grid.as_slice(), scale_factors.as_slice()));
        std::process::exit(ci_mode(
            is_quick,
            is_certify,
            is_maintain,
            serving,
            iso,
            scaling,
            json_path.as_deref(),
        ));
    }

    let what = positional.first().copied().unwrap_or("all");
    let sc = scale();
    println!(
        "LMFAO experiments — synthetic scale: {} fact tuples, {} threads",
        sc.fact_rows,
        threads()
    );
    let (datasets, gen_time) = time(|| all_datasets(sc));
    println!("generated 4 datasets in {gen_time:.2}s");

    match what {
        "table1" => table1(&datasets),
        "table2" => table2(&datasets),
        "table3" => table3(&datasets),
        "table4" | "table5" => tables45(&datasets),
        "figure5" => figure5(&datasets),
        "example33" => example33(),
        "all" => {
            table1(&datasets);
            table2(&datasets);
            table3(&datasets);
            figure5(&datasets);
            tables45(&datasets);
            example33();
        }
        other => {
            eprintln!("unknown experiment `{other}`; use table1..table5, figure5, example33, all");
            std::process::exit(1);
        }
    }
}
