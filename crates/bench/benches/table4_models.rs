//! Criterion benchmark for Table 4: end-to-end linear regression and
//! regression-tree training on Retailer and Favorita — LMFAO (aggregate
//! batches + BGD over sufficient statistics) vs the materialize-then-learn
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_baseline::{self as baseline, DenseTask, MaterializedEngine};
use lmfao_bench::{engine_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_data::AttrId;
use lmfao_datagen::{favorita, retailer, Dataset, Scale};
use lmfao_ml as ml;

fn features_and_label(ds: &Dataset, spec: &WorkloadSpec) -> (Vec<AttrId>, AttrId) {
    let label = ds.attr(&spec.label);
    let features = spec
        .continuous
        .iter()
        .filter(|n| **n != spec.label)
        .map(|n| ds.attr(n))
        .collect();
    (features, label)
}

fn bench_table4(c: &mut Criterion) {
    let datasets = vec![
        retailer::generate(Scale::new(4_000, 42)),
        favorita::generate(Scale::new(4_000, 42)),
    ];
    for ds in &datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let (features, label) = features_and_label(ds, &spec);
        let engine = engine_for(ds, EngineConfig::full(2));
        let tree_config = ml::TreeConfig {
            task: ml::TreeTask::Regression,
            max_depth: 2,
            min_samples: 200,
            buckets: 8,
        };

        let mut group = c.benchmark_group(format!("table4/{}", ds.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
        // The covar batch does not depend on the model parameters: prepare it
        // once, execute + train per iteration.
        let mut all = features.clone();
        all.push(label);
        let cb = ml::covar_batch(&ml::CovarSpec::continuous_only(all));
        let prepared_covar = engine.prepare(&cb.batch).unwrap();
        let dynamics = lmfao_expr::DynamicRegistry::new();
        group.bench_function(BenchmarkId::from_parameter("linreg_lmfao"), |b| {
            b.iter(|| {
                let result = prepared_covar.execute(&dynamics).unwrap();
                let covar = ml::assemble_covar_matrix(&cb, &result);
                ml::train_linear_regression(&covar, &ml::LinRegConfig::default())
            })
        });
        group.bench_function(BenchmarkId::from_parameter("linreg_materialized"), |b| {
            b.iter(|| {
                let join = MaterializedEngine::materialize(&ds.db, &ds.tree);
                let dense = baseline::export_dense(join.join(), ds.db.schema(), &features, label);
                baseline::train_linear_regression_dense(&dense, 1e-3, 1e-9, 20)
            })
        });
        group.bench_function(BenchmarkId::from_parameter("regtree_lmfao"), |b| {
            b.iter(|| ml::train_decision_tree(&engine, &features, label, &tree_config).unwrap())
        });
        group.bench_function(BenchmarkId::from_parameter("regtree_materialized"), |b| {
            b.iter(|| {
                let join = MaterializedEngine::materialize(&ds.db, &ds.tree);
                let dense = baseline::export_dense(join.join(), ds.db.schema(), &features, label);
                baseline::train_tree_dense(&dense, DenseTask::Regression, 2, 200, 8)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
