//! Criterion benchmark for Figure 5: the covar-matrix workload under the
//! optimization ablation ladder (unoptimized → +specialization →
//! +multi-output → +multi-root → +parallelization).
//!
//! The database is prepared once and shared across all five engine
//! configurations (`shared_for` + `engine_for_shared`), and each
//! configuration's batch is prepared once outside the timing loop — the
//! measurement isolates execution, which is what the ablation layers affect.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_bench::{engine_for_shared, shared_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_datagen::{favorita, retailer, Scale};
use lmfao_expr::DynamicRegistry;

fn bench_figure5(c: &mut Criterion) {
    let datasets = vec![
        retailer::generate(Scale::new(5_000, 42)),
        favorita::generate(Scale::new(5_000, 42)),
    ];
    let dynamics = DynamicRegistry::new();
    for ds in &datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let batch = spec.covar_batch(ds);
        let shared = shared_for(ds);
        let mut group = c.benchmark_group(format!("figure5/{}", ds.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
        for (name, config) in EngineConfig::ablation_ladder(4) {
            let engine = engine_for_shared(&shared, ds, config);
            let prepared = engine.prepare(&batch).unwrap();
            group.bench_with_input(
                BenchmarkId::from_parameter(name),
                &prepared,
                |b, prepared| b.iter(|| prepared.execute(&dynamics).unwrap()),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
