//! Criterion benchmark for Figure 5: the covar-matrix workload under the
//! optimization ablation ladder (unoptimized → +specialization →
//! +multi-output → +multi-root → +parallelization).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_bench::{engine_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_datagen::{favorita, retailer, Scale};

fn bench_figure5(c: &mut Criterion) {
    let datasets = vec![
        retailer::generate(Scale::new(5_000, 42)),
        favorita::generate(Scale::new(5_000, 42)),
    ];
    for ds in &datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let batch = spec.covar_batch(ds);
        let mut group = c.benchmark_group(format!("figure5/{}", ds.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
        for (name, config) in EngineConfig::ablation_ladder(4) {
            let engine = engine_for(ds, config);
            group.bench_with_input(BenchmarkId::from_parameter(name), &batch, |b, batch| {
                b.iter(|| engine.execute(batch))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_figure5);
criterion_main!(benches);
