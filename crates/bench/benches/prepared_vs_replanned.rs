//! Criterion benchmark for the prepared-batch API: plan once / execute many
//! versus re-planning on every call.
//!
//! The workload is a dynamically *weighted* covariance batch — the full
//! continuous × categorical covar-matrix shape of the CM workload, with every
//! aggregate carrying a dynamic per-tuple weight function as in iterative
//! reweighted model fitting — executed 50 times with the weight closure
//! swapped between iterations. The `prepared` path calls `Engine::prepare`
//! once and then only `PreparedBatch::execute`; the `replanned` path pays the
//! full optimizer stack (roots → pushdown → merging → grouping → plans) on
//! every iteration via `Engine::execute_with_dynamics`. The `prepare_only`
//! entry shows the per-call planning cost the prepared API amortizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_bench::engine_for;
use lmfao_core::EngineConfig;
use lmfao_data::AttrId;
use lmfao_datagen::{favorita, Scale};
use lmfao_expr::{Aggregate, DynamicRegistry, ProductTerm, QueryBatch, ScalarFunction};

/// Number of weight-mutating executions per measured sample.
const ITERATIONS: usize = 50;

/// The dynamic weight function is registered first, so its id is fixed.
const WEIGHT_ID: usize = 0;

/// A covariance batch where every aggregate is multiplied by the dynamic
/// weight `w(weight_attr)`: `Σw`, the degree-1 entries `Σw·Xj` (continuous)
/// and `Q(Xj; Σw)` (categorical, one-hot), and the degree-2 entries over all
/// pairs — `Σw·Xj·Xk`, `Q(Xj; Σw·Xk)` and `Q(Xj, Xk; Σw)` respectively.
fn weighted_covar_batch(
    continuous: &[AttrId],
    categorical: &[AttrId],
    weight_attr: AttrId,
) -> QueryBatch {
    let weight = ScalarFunction::Dynamic {
        id: WEIGHT_ID,
        attrs: vec![weight_attr],
    };
    let w = || ProductTerm::single(weight.clone());
    let nc = continuous.len();
    let attrs: Vec<AttrId> = continuous.iter().chain(categorical).copied().collect();

    let mut batch = QueryBatch::new();
    batch.push("w_count", vec![], vec![Aggregate::product(w())]);
    for (j, &a) in attrs.iter().enumerate() {
        if j < nc {
            batch.push(
                format!("w_1_{j}"),
                vec![],
                vec![Aggregate::product(w().times(ScalarFunction::Identity(a)))],
            );
        } else {
            batch.push(format!("w_1_{j}"), vec![a], vec![Aggregate::product(w())]);
        }
        for (k, &b) in attrs.iter().enumerate().skip(j) {
            let name = format!("w_2_{j}_{k}");
            match (j < nc, k < nc) {
                (true, true) => batch.push(
                    name,
                    vec![],
                    vec![Aggregate::product(
                        w().times(ScalarFunction::Identity(a))
                            .times(ScalarFunction::Identity(b)),
                    )],
                ),
                (true, false) => batch.push(
                    name,
                    vec![b],
                    vec![Aggregate::product(w().times(ScalarFunction::Identity(a)))],
                ),
                (false, true) => batch.push(
                    name,
                    vec![a],
                    vec![Aggregate::product(w().times(ScalarFunction::Identity(b)))],
                ),
                (false, false) => {
                    if j == k {
                        batch.push(name, vec![a], vec![Aggregate::product(w())])
                    } else {
                        batch.push(name, vec![a, b], vec![Aggregate::product(w())])
                    }
                }
            };
        }
    }
    batch
}

/// A fresh registry with the weight function registered under `WEIGHT_ID`.
fn weight_registry() -> DynamicRegistry {
    let mut dynamics = DynamicRegistry::new();
    let id = dynamics.register(|_| 1.0);
    assert_eq!(id, WEIGHT_ID);
    dynamics
}

/// Swaps the weight closure for iteration `i` (a different, cheap function
/// every time, so no result can be cached across iterations).
fn set_iteration_weight(dynamics: &mut DynamicRegistry, i: usize) {
    let step = 1.0 + i as f64 / ITERATIONS as f64;
    dynamics.replace(WEIGHT_ID, move |args| 1.0 + step * args[0].as_f64().abs());
}

fn bench_prepared_vs_replanned(c: &mut Criterion) {
    let ds = favorita::generate(Scale::new(1_000, 42));
    let continuous = vec![
        ds.attr("units"),
        ds.attr("txns"),
        ds.attr("price"),
        ds.attr("cluster"),
    ];
    let categorical = vec![
        ds.attr("family"),
        ds.attr("city"),
        ds.attr("state"),
        ds.attr("stype"),
    ];
    let batch = weighted_covar_batch(&continuous, &categorical, ds.attr("units"));
    let engine = engine_for(&ds, EngineConfig::default());

    let mut group = c.benchmark_group("prepared_vs_replanned/Favorita");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("prepared_{ITERATIONS}x")),
        &batch,
        |b, batch| {
            b.iter(|| {
                // Plan once, execute ITERATIONS times with mutating weights.
                let prepared = engine.prepare(batch).unwrap();
                let mut dynamics = weight_registry();
                let mut acc = 0.0;
                for i in 0..ITERATIONS {
                    set_iteration_weight(&mut dynamics, i);
                    acc += prepared
                        .execute(&dynamics)
                        .unwrap()
                        .query("w_count")
                        .scalar()[0];
                }
                acc
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter(format!("replanned_{ITERATIONS}x")),
        &batch,
        |b, batch| {
            b.iter(|| {
                // Re-run the whole optimizer stack on every iteration.
                let mut dynamics = weight_registry();
                let mut acc = 0.0;
                for i in 0..ITERATIONS {
                    set_iteration_weight(&mut dynamics, i);
                    acc += engine
                        .execute_with_dynamics(batch, &dynamics)
                        .unwrap()
                        .query("w_count")
                        .scalar()[0];
                }
                acc
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::from_parameter("prepare_only"),
        &batch,
        |b, batch| b.iter(|| engine.prepare(batch).unwrap().stats().num_views),
    );

    group.finish();
}

criterion_group!(benches, bench_prepared_vs_replanned);
criterion_main!(benches);
