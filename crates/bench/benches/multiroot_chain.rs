//! Criterion benchmark for Example 3.3: the chain schema where rooting every
//! `Q_i(X_i; COUNT)` at its own node `S_i` keeps all views linear, while a
//! single shared root forces larger intermediate views.
//!
//! Both configurations share one prepared database and each prepares its
//! batch once outside the timing loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_bench::{engine_for_shared, shared_for};
use lmfao_core::EngineConfig;
use lmfao_datagen::{chain, Scale};
use lmfao_expr::{Aggregate, DynamicRegistry, QueryBatch};

fn bench_multiroot(c: &mut Criterion) {
    let n = 6;
    let ds = chain::generate(n, 20_000, 500, Scale::new(0, 7));
    let mut batch = QueryBatch::new();
    for i in 1..=n {
        let attr = ds.attr(&format!("X{i}"));
        batch.push(format!("Q{i}"), vec![attr], vec![Aggregate::count()]);
    }
    let shared = shared_for(&ds);
    let dynamics = DynamicRegistry::new();

    let mut group = c.benchmark_group("example33/chain");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, config) in [
        (
            "single_root",
            EngineConfig {
                multi_root: false,
                ..EngineConfig::default()
            },
        ),
        ("multi_root", EngineConfig::default()),
    ] {
        let engine = engine_for_shared(&shared, &ds, config);
        let prepared = engine.prepare(&batch).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &prepared,
            |b, prepared| b.iter(|| prepared.execute(&dynamics).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_multiroot);
criterion_main!(benches);
