//! Criterion benchmark for Table 5: classification-tree training over the
//! TPC-DS excerpt — LMFAO vs the materialize-then-learn baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_baseline::{self as baseline, DenseTask, MaterializedEngine};
use lmfao_bench::engine_for;
use lmfao_core::EngineConfig;
use lmfao_data::AttrId;
use lmfao_datagen::{tpcds, Scale};
use lmfao_ml as ml;

fn bench_table5(c: &mut Criterion) {
    let ds = tpcds::generate(Scale::new(4_000, 42));
    let label = ds.attr("preferred");
    let features: Vec<AttrId> = [
        "birth_year",
        "purchase_estimate",
        "gender",
        "marital",
        "dep_count",
        "quantity",
    ]
    .iter()
    .map(|n| ds.attr(n))
    .collect();
    let engine = engine_for(&ds, EngineConfig::full(2));
    let tree_config = ml::TreeConfig {
        task: ml::TreeTask::Classification,
        max_depth: 2,
        min_samples: 200,
        buckets: 8,
    };

    let mut group = c.benchmark_group("table5/TPC-DS");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    // The default trainer prepares the candidate batch once and re-executes
    // it per node; the `_replanned` variant re-runs the optimizer per node.
    group.bench_function(BenchmarkId::from_parameter("classtree_lmfao"), |b| {
        b.iter(|| ml::train_decision_tree(&engine, &features, label, &tree_config).unwrap())
    });
    group.bench_function(
        BenchmarkId::from_parameter("classtree_lmfao_replanned"),
        |b| {
            b.iter(|| {
                ml::train_decision_tree_replanned(&engine, &features, label, &tree_config).unwrap()
            })
        },
    );
    group.bench_function(BenchmarkId::from_parameter("classtree_materialized"), |b| {
        b.iter(|| {
            let join = MaterializedEngine::materialize(&ds.db, &ds.tree);
            let dense = baseline::export_dense(join.join(), ds.db.schema(), &features, label);
            baseline::train_tree_dense(&dense, DenseTask::Classification, 2, 200, 8)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
