//! Criterion benchmark for incremental maintenance: single-tuple refresh of
//! a maintained batch versus re-executing the full prepared batch.
//!
//! The workload is the Retailer regression-tree node batch (RT) — the
//! acceptance workload of the maintenance milestone. `full_execute` re-runs
//! every scan of the prepared batch; `single_tuple_refresh` applies a
//! one-insert delta to the fact table of a `MaintainedBatch` (delta-partition
//! scan plus signed propagation through the view DAG); `delete_insert_pair`
//! measures a correction (retract + append in one delta). The maintained
//! paths must come out ≥10× faster than `full_execute` — the refresh touches
//! one tuple's join paths, not the fact table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_bench::{engine_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_data::TableDelta;
use lmfao_datagen::{fact_relation, retailer, Scale};
use lmfao_expr::DynamicRegistry;

fn bench_refresh_latency(c: &mut Criterion) {
    let ds = retailer::generate(Scale::new(10_000, 42));
    let spec = WorkloadSpec::for_dataset(&ds.name);
    let batch = spec.rt_node_batch(&ds);
    let engine = engine_for(&ds, EngineConfig::default());
    let dynamics = DynamicRegistry::new();
    let fact = fact_relation(&ds.name);

    let prepared = engine.prepare(&batch).unwrap();
    let mut maintained = engine
        .prepare(&batch)
        .unwrap()
        .into_maintained(&dynamics)
        .unwrap();
    let template = ds.db.relation(fact).unwrap().row(0).to_vec();

    let mut group = c.benchmark_group("refresh_latency/Retailer-RT");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));

    group.bench_with_input(
        BenchmarkId::from_parameter("full_execute"),
        &prepared,
        |b, prepared| {
            b.iter(|| {
                prepared
                    .execute(&dynamics)
                    .unwrap()
                    .query("rt_parent")
                    .scalar()[0]
            })
        },
    );

    group.bench_function(BenchmarkId::from_parameter("single_tuple_refresh"), |b| {
        b.iter(|| {
            let mut delta = TableDelta::for_relation(maintained.database().relation(fact).unwrap());
            delta.insert(&template).unwrap();
            maintained.commit(&delta, &dynamics).unwrap().views_changed
        })
    });

    group.bench_function(BenchmarkId::from_parameter("delete_insert_pair"), |b| {
        b.iter(|| {
            let mut delta = TableDelta::for_relation(maintained.database().relation(fact).unwrap());
            delta.delete(&template).unwrap();
            delta.insert(&template).unwrap();
            maintained.commit(&delta, &dynamics).unwrap().views_changed
        })
    });

    group.finish();
}

criterion_group!(benches, bench_refresh_latency);
criterion_main!(benches);
