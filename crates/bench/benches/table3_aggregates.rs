//! Criterion benchmark for Table 3: aggregate batches (Count, CM, RT, MI, DC)
//! on the four datasets, LMFAO vs the materialized-join baseline.
//!
//! Both engines plan/resolve each workload once outside the timing loop
//! (`Engine::prepare` / `MaterializedEngine::prepare`) so the loop measures
//! pure execution. Scales are kept small so `cargo bench` finishes in
//! minutes; the `experiments` binary runs the same workloads at larger scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmfao_baseline::MaterializedEngine;
use lmfao_bench::{engine_for, WorkloadSpec};
use lmfao_core::EngineConfig;
use lmfao_datagen::{all_datasets, Scale};
use lmfao_expr::DynamicRegistry;

fn bench_table3(c: &mut Criterion) {
    let datasets = all_datasets(Scale::new(2_000, 42));
    let dynamics = DynamicRegistry::new();
    for ds in &datasets {
        let spec = WorkloadSpec::for_dataset(&ds.name);
        let engine = engine_for(ds, EngineConfig::full(2));
        let baseline = MaterializedEngine::materialize(&ds.db, &ds.tree);

        let mut workloads = vec![("Count", spec.count_batch(ds))];
        workloads.extend(spec.workloads(ds));

        let mut group = c.benchmark_group(format!("table3/{}", ds.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_secs(1));
        group.measurement_time(std::time::Duration::from_secs(3));
        for (wl, batch) in &workloads {
            let prepared = engine.prepare(batch).unwrap();
            let baseline_prepared = baseline.prepare(batch);
            group.bench_with_input(BenchmarkId::new("lmfao", wl), &prepared, |b, prepared| {
                b.iter(|| prepared.execute(&dynamics).unwrap())
            });
            group.bench_with_input(
                BenchmarkId::new("baseline", wl),
                &baseline_prepared,
                |b, prepared| b.iter(|| baseline.execute_prepared(prepared, &dynamics)),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
