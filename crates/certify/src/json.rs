//! Canonical JSON serialization, parsing, and fingerprinting of certificates.
//!
//! The serialized form is the certificate's *canonical* representation: field
//! order is fixed, no whitespace is emitted, and integers wider than the JSON
//! number range (`i128` totals, `u64` hashes) are written as quoted decimal
//! strings. [`fingerprint`] hashes these canonical bytes, so two certificates
//! are chain-linkable iff they serialize identically.
//!
//! The parser is a minimal recursive-descent JSON reader (objects, arrays,
//! strings, integer numbers, booleans, null) — deliberately hand-rolled so
//! the checker carries no dependencies beyond `lmfao-data`. Unknown fields
//! are rejected, not ignored: a certificate is a closed witness, and silent
//! field loss would let a tampered producer smuggle state past the checker.

use crate::check::CertError;
use crate::schema::{
    Certificate, ExecuteCertificate, GroupProvenance, MaintenanceCertificate, QueryTotals,
    RelationDeltaAccount, ViewDeltaAccount, ViewProvenance,
};

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a certificate to its canonical JSON form.
pub fn to_json(cert: &Certificate) -> String {
    let mut out = String::with_capacity(512);
    match cert {
        Certificate::Execute(c) => write_execute(&mut out, c),
        Certificate::Maintenance(c) => write_maintenance(&mut out, c),
    }
    out
}

/// FNV-1a 64-bit fingerprint of a certificate's canonical JSON bytes.
///
/// Used as the `parent_hash` chaining maintenance certificates to their
/// predecessor. FNV-1a is not cryptographic — the threat model is accounting
/// bugs and accidental corruption, not an adversary forging preimages.
pub fn fingerprint(cert: &Certificate) -> u64 {
    fnv1a64(to_json(cert).as_bytes())
}

/// FNV-1a 64-bit hash.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn write_execute(out: &mut String, c: &ExecuteCertificate) {
    out.push_str("{\"kind\":\"execute\",\"version\":");
    out.push_str(&c.version.to_string());
    out.push_str(",\"generation\":");
    out.push_str(&c.generation.to_string());
    out.push_str(",\"groups\":[");
    for (i, g) in c.groups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_group(out, g);
    }
    out.push_str("],\"queries\":[");
    write_queries(out, &c.queries);
    out.push_str("]}");
}

fn write_maintenance(out: &mut String, c: &MaintenanceCertificate) {
    out.push_str("{\"kind\":\"maintenance\",\"version\":");
    out.push_str(&c.version.to_string());
    out.push_str(",\"generation\":");
    out.push_str(&c.generation.to_string());
    out.push_str(",\"txn\":");
    out.push_str(&c.txn.to_string());
    out.push_str(",\"parent_generation\":");
    out.push_str(&c.parent_generation.to_string());
    out.push_str(",\"parent_hash\":\"");
    out.push_str(&c.parent_hash.to_string());
    out.push_str("\",\"relations\":[");
    for (i, r) in c.relations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_relation_account(out, r);
    }
    out.push_str("],\"views\":[");
    for (i, v) in c.views.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_account(out, v);
    }
    out.push_str("],\"queries\":[");
    write_queries(out, &c.queries);
    out.push_str("]}");
}

fn write_group(out: &mut String, g: &GroupProvenance) {
    out.push_str("{\"group\":");
    out.push_str(&g.group.to_string());
    out.push_str(",\"relation\":");
    write_str(out, &g.relation);
    out.push_str(",\"rows_scanned\":");
    out.push_str(&g.rows_scanned.to_string());
    out.push_str(",\"incoming\":[");
    for (i, v) in g.incoming.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push_str("],\"outputs\":[");
    for (i, o) in g.outputs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"view\":");
        out.push_str(&o.view.to_string());
        out.push_str(",\"rows\":");
        out.push_str(&o.rows.to_string());
        out.push_str(",\"totals\":");
        write_i128s(out, &o.totals);
        out.push('}');
    }
    out.push_str("]}");
}

fn write_relation_account(out: &mut String, r: &RelationDeltaAccount) {
    out.push_str("{\"relation\":");
    write_str(out, &r.relation);
    out.push_str(",\"rows_inserted\":");
    out.push_str(&r.rows_inserted.to_string());
    out.push_str(",\"rows_deleted\":");
    out.push_str(&r.rows_deleted.to_string());
    out.push_str(",\"rows_before\":");
    out.push_str(&r.rows_before.to_string());
    out.push_str(",\"rows_after\":");
    out.push_str(&r.rows_after.to_string());
    out.push('}');
}

fn write_account(out: &mut String, v: &ViewDeltaAccount) {
    out.push_str("{\"view\":");
    out.push_str(&v.view.to_string());
    out.push_str(",\"rows_before\":");
    out.push_str(&v.rows_before.to_string());
    out.push_str(",\"rows_after\":");
    out.push_str(&v.rows_after.to_string());
    out.push_str(",\"inserted\":");
    write_opt_i128s(out, &v.inserted);
    out.push_str(",\"deleted\":");
    write_opt_i128s(out, &v.deleted);
    out.push_str(",\"propagated\":");
    write_opt_i128s(out, &v.propagated);
    out.push_str(",\"net\":");
    write_i128s(out, &v.net);
    out.push_str(",\"totals_before\":");
    write_i128s(out, &v.totals_before);
    out.push_str(",\"totals_after\":");
    write_i128s(out, &v.totals_after);
    out.push('}');
}

fn write_queries(out: &mut String, queries: &[QueryTotals]) {
    for (i, q) in queries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        write_str(out, &q.name);
        out.push_str(",\"view\":");
        out.push_str(&q.view.to_string());
        out.push_str(",\"rows\":");
        out.push_str(&q.rows.to_string());
        out.push_str(",\"aggregate_indices\":[");
        for (j, a) in q.aggregate_indices.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&a.to_string());
        }
        out.push_str("],\"totals\":");
        write_i128s(out, &q.totals);
        out.push('}');
    }
}

fn write_opt_i128s(out: &mut String, values: &Option<Vec<i128>>) {
    match values {
        Some(v) => write_i128s(out, v),
        None => out.push_str("null"),
    }
}

fn write_i128s(out: &mut String, values: &[i128]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&v.to_string());
        out.push('"');
    }
    out.push(']');
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a certificate from its JSON form.
///
/// Accepts exactly the canonical schema: unknown or missing fields, non-
/// integer numbers, and type mismatches are all rejected as
/// [`CertError::Malformed`].
pub fn parse_certificate(input: &str) -> Result<Certificate, CertError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(malformed("trailing data after certificate"));
    }
    certificate_from_json(&value)
}

fn malformed(msg: impl Into<String>) -> CertError {
    CertError::Malformed(msg.into())
}

/// Parsed JSON value. Numbers are integers and booleans are absent — the
/// certificate schema has neither floats nor booleans by construction, so
/// the parser rejects them outright.
enum Json {
    Null,
    Num(i128),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, CertError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| malformed("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), CertError> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(malformed(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Json, CertError> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Json::Str(self.parse_string()?)),
            b't' | b'f' => Err(malformed("booleans do not occur in certificates")),
            b'n' => self.parse_keyword("null", Json::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            other => Err(malformed(format!(
                "unexpected byte '{}' at {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Json) -> Result<Json, CertError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(malformed(format!("invalid keyword at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Json, CertError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(malformed(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, CertError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(malformed(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, CertError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| malformed("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| malformed("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| malformed("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| malformed("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| malformed("invalid \\u escape"))?;
                            self.pos += 4;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| malformed("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(malformed("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| malformed("invalid UTF-8"))?;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| malformed("truncated UTF-8"))?;
                    let chunk =
                        std::str::from_utf8(chunk).map_err(|_| malformed("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, CertError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'.' | b'e' | b'E')) {
            return Err(malformed("non-integer number in certificate"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<i128>()
            .map(Json::Num)
            .map_err(|_| malformed(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Json -> schema conversion
// ---------------------------------------------------------------------------

/// Closed-object accessor: every field must be consumed exactly once.
struct Fields<'a> {
    fields: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(value: &'a Json) -> Result<Self, CertError> {
        match value {
            Json::Obj(fields) => Ok(Fields {
                used: vec![false; fields.len()],
                fields,
            }),
            _ => Err(malformed("expected object")),
        }
    }

    fn take(&mut self, name: &str) -> Result<&'a Json, CertError> {
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if key == name && !self.used[i] {
                self.used[i] = true;
                return Ok(value);
            }
        }
        Err(malformed(format!("missing field '{name}'")))
    }

    fn finish(self) -> Result<(), CertError> {
        for (i, used) in self.used.iter().enumerate() {
            if !used {
                return Err(malformed(format!("unknown field '{}'", self.fields[i].0)));
            }
        }
        Ok(())
    }
}

fn as_u32(value: &Json, name: &str) -> Result<u32, CertError> {
    match value {
        Json::Num(n) => u32::try_from(*n).map_err(|_| malformed(format!("'{name}' out of range"))),
        _ => Err(malformed(format!("'{name}' must be an integer"))),
    }
}

fn as_u64(value: &Json, name: &str) -> Result<u64, CertError> {
    match value {
        Json::Num(n) => u64::try_from(*n).map_err(|_| malformed(format!("'{name}' out of range"))),
        _ => Err(malformed(format!("'{name}' must be an integer"))),
    }
}

fn as_str(value: &Json, name: &str) -> Result<String, CertError> {
    match value {
        Json::Str(s) => Ok(s.clone()),
        _ => Err(malformed(format!("'{name}' must be a string"))),
    }
}

/// Wide integers (`i128` totals, `u64` hashes) travel as quoted decimals.
fn as_quoted_i128(value: &Json, name: &str) -> Result<i128, CertError> {
    match value {
        Json::Str(s) => s
            .parse::<i128>()
            .map_err(|_| malformed(format!("'{name}' is not a decimal integer"))),
        _ => Err(malformed(format!("'{name}' must be a quoted integer"))),
    }
}

fn as_quoted_u64(value: &Json, name: &str) -> Result<u64, CertError> {
    match value {
        Json::Str(s) => s
            .parse::<u64>()
            .map_err(|_| malformed(format!("'{name}' is not a decimal integer"))),
        _ => Err(malformed(format!("'{name}' must be a quoted integer"))),
    }
}

fn as_arr<'a>(value: &'a Json, name: &str) -> Result<&'a [Json], CertError> {
    match value {
        Json::Arr(items) => Ok(items),
        _ => Err(malformed(format!("'{name}' must be an array"))),
    }
}

fn i128_vec(value: &Json, name: &str) -> Result<Vec<i128>, CertError> {
    as_arr(value, name)?
        .iter()
        .map(|v| as_quoted_i128(v, name))
        .collect()
}

fn opt_i128_vec(value: &Json, name: &str) -> Result<Option<Vec<i128>>, CertError> {
    match value {
        Json::Null => Ok(None),
        other => i128_vec(other, name).map(Some),
    }
}

fn u32_vec(value: &Json, name: &str) -> Result<Vec<u32>, CertError> {
    as_arr(value, name)?
        .iter()
        .map(|v| as_u32(v, name))
        .collect()
}

fn certificate_from_json(value: &Json) -> Result<Certificate, CertError> {
    let mut f = Fields::new(value)?;
    let kind = as_str(f.take("kind")?, "kind")?;
    match kind.as_str() {
        "execute" => {
            let cert = ExecuteCertificate {
                version: as_u32(f.take("version")?, "version")?,
                generation: as_u64(f.take("generation")?, "generation")?,
                groups: as_arr(f.take("groups")?, "groups")?
                    .iter()
                    .map(group_from_json)
                    .collect::<Result<_, _>>()?,
                queries: as_arr(f.take("queries")?, "queries")?
                    .iter()
                    .map(query_from_json)
                    .collect::<Result<_, _>>()?,
            };
            f.finish()?;
            Ok(Certificate::Execute(cert))
        }
        "maintenance" => {
            let cert = MaintenanceCertificate {
                version: as_u32(f.take("version")?, "version")?,
                generation: as_u64(f.take("generation")?, "generation")?,
                txn: as_u64(f.take("txn")?, "txn")?,
                parent_generation: as_u64(f.take("parent_generation")?, "parent_generation")?,
                parent_hash: as_quoted_u64(f.take("parent_hash")?, "parent_hash")?,
                relations: as_arr(f.take("relations")?, "relations")?
                    .iter()
                    .map(relation_account_from_json)
                    .collect::<Result<_, _>>()?,
                views: as_arr(f.take("views")?, "views")?
                    .iter()
                    .map(account_from_json)
                    .collect::<Result<_, _>>()?,
                queries: as_arr(f.take("queries")?, "queries")?
                    .iter()
                    .map(query_from_json)
                    .collect::<Result<_, _>>()?,
            };
            f.finish()?;
            Ok(Certificate::Maintenance(cert))
        }
        other => Err(malformed(format!("unknown certificate kind '{other}'"))),
    }
}

fn group_from_json(value: &Json) -> Result<GroupProvenance, CertError> {
    let mut f = Fields::new(value)?;
    let group = GroupProvenance {
        group: as_u32(f.take("group")?, "group")?,
        relation: as_str(f.take("relation")?, "relation")?,
        rows_scanned: as_u64(f.take("rows_scanned")?, "rows_scanned")?,
        incoming: u32_vec(f.take("incoming")?, "incoming")?,
        outputs: as_arr(f.take("outputs")?, "outputs")?
            .iter()
            .map(output_from_json)
            .collect::<Result<_, _>>()?,
    };
    f.finish()?;
    Ok(group)
}

fn output_from_json(value: &Json) -> Result<ViewProvenance, CertError> {
    let mut f = Fields::new(value)?;
    let out = ViewProvenance {
        view: as_u32(f.take("view")?, "view")?,
        rows: as_u64(f.take("rows")?, "rows")?,
        totals: i128_vec(f.take("totals")?, "totals")?,
    };
    f.finish()?;
    Ok(out)
}

fn relation_account_from_json(value: &Json) -> Result<RelationDeltaAccount, CertError> {
    let mut f = Fields::new(value)?;
    let account = RelationDeltaAccount {
        relation: as_str(f.take("relation")?, "relation")?,
        rows_inserted: as_u64(f.take("rows_inserted")?, "rows_inserted")?,
        rows_deleted: as_u64(f.take("rows_deleted")?, "rows_deleted")?,
        rows_before: as_u64(f.take("rows_before")?, "rows_before")?,
        rows_after: as_u64(f.take("rows_after")?, "rows_after")?,
    };
    f.finish()?;
    Ok(account)
}

fn account_from_json(value: &Json) -> Result<ViewDeltaAccount, CertError> {
    let mut f = Fields::new(value)?;
    let account = ViewDeltaAccount {
        view: as_u32(f.take("view")?, "view")?,
        rows_before: as_u64(f.take("rows_before")?, "rows_before")?,
        rows_after: as_u64(f.take("rows_after")?, "rows_after")?,
        inserted: opt_i128_vec(f.take("inserted")?, "inserted")?,
        deleted: opt_i128_vec(f.take("deleted")?, "deleted")?,
        propagated: opt_i128_vec(f.take("propagated")?, "propagated")?,
        net: i128_vec(f.take("net")?, "net")?,
        totals_before: i128_vec(f.take("totals_before")?, "totals_before")?,
        totals_after: i128_vec(f.take("totals_after")?, "totals_after")?,
    };
    f.finish()?;
    Ok(account)
}

fn query_from_json(value: &Json) -> Result<QueryTotals, CertError> {
    let mut f = Fields::new(value)?;
    let query = QueryTotals {
        name: as_str(f.take("name")?, "name")?,
        view: as_u32(f.take("view")?, "view")?,
        rows: as_u64(f.take("rows")?, "rows")?,
        aggregate_indices: u32_vec(f.take("aggregate_indices")?, "aggregate_indices")?,
        totals: i128_vec(f.take("totals")?, "totals")?,
    };
    f.finish()?;
    Ok(query)
}
