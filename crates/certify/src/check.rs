//! The trusted checker: re-derives every accounting identity a certificate
//! claims, in exact integer arithmetic, sharing no code with the engine.
//!
//! What the checker verifies:
//!
//! - **Structure** — supported version, no view produced twice, groups
//!   consume only views produced by earlier groups, vector lengths agree.
//! - **Execution totals** — each query's published totals equal the producing
//!   view's totals at the query's aggregate indices, and its row count equals
//!   the view's.
//! - **Delta accounting** — every relation the transaction touched moves in
//!   cardinality by exactly `inserted - deleted`; every view's
//!   `totals_after == totals_before + net`; seed views additionally satisfy
//!   `net == inserted - deleted + propagated`.
//! - **Chain linkage** — generations increase by one, each `parent_hash`
//!   matches the FNV-1a fingerprint of the predecessor's canonical JSON, and
//!   each step's `totals_before` equals the state the checker has tracked
//!   from the execution root forward.
//!
//! What the checker does *not* verify (the trust split): that the engine's
//! floating-point view state actually decodes to the certified ledger, and
//! that the aggregates are the semantically correct answer to the workload —
//! those remain the job of the recompute referee. The certificate makes the
//! engine's *accounting* auditable, not its arithmetic semantics.

use crate::json::fingerprint;
use crate::schema::{
    Certificate, ExecuteCertificate, MaintenanceCertificate, QueryTotals, CERTIFICATE_VERSION,
};
use lmfao_data::FxHashMap;
use std::fmt;

/// A typed verdict explaining exactly which identity a certificate violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The certificate's schema version is newer than this checker.
    UnsupportedVersion {
        /// Version recorded in the certificate.
        found: u32,
    },
    /// The certificate could not be parsed or is structurally invalid.
    Malformed(String),
    /// Two groups claim to have produced the same view.
    ViewProducedTwice {
        /// The doubly-produced view.
        view: u32,
    },
    /// A group consumes a view no earlier group produced.
    MissingIncomingView {
        /// The consuming group.
        group: u32,
        /// The absent view.
        view: u32,
    },
    /// A query references a view the certificate never accounts for.
    UnknownQueryView {
        /// Query name.
        query: String,
        /// The unaccounted view.
        view: u32,
    },
    /// A query's aggregate index exceeds its view's aggregate count.
    AggregateIndexOutOfBounds {
        /// Query name.
        query: String,
        /// The offending index.
        index: u32,
        /// Number of aggregates the view carries.
        len: usize,
    },
    /// A query's published row count disagrees with its view.
    QueryRowMismatch {
        /// Query name.
        query: String,
        /// Rows the view holds.
        expected: u64,
        /// Rows the query published.
        found: u64,
    },
    /// A query's published total disagrees with its view's total.
    QueryTotalMismatch {
        /// Query name.
        query: String,
        /// Aggregate index where the totals diverge.
        index: u32,
        /// Total derived from the view accounting.
        expected: i128,
        /// Total the query published.
        found: i128,
    },
    /// Relation cardinality does not move by `inserted - deleted`.
    RowAccountingMismatch {
        /// Relation the delta targeted.
        relation: String,
        /// Cardinality before.
        before: u64,
        /// Insert-partition size.
        inserted: u64,
        /// Delete-partition size.
        deleted: u64,
        /// Claimed cardinality after.
        after: u64,
    },
    /// A view's `totals_after` is not `totals_before + net`.
    DeltaAccountingMismatch {
        /// The view in violation.
        view: u32,
        /// Aggregate index where the identity breaks.
        index: usize,
        /// `totals_before` at that index.
        before: i128,
        /// `net` at that index.
        net: i128,
        /// Claimed `totals_after` at that index.
        after: i128,
    },
    /// A seed view's `net` is not `inserted - deleted + propagated`.
    SignedNetMismatch {
        /// The view in violation.
        view: u32,
        /// Aggregate index where the identity breaks.
        index: usize,
        /// Insert-partition contribution.
        inserted: i128,
        /// Delete-partition contribution.
        deleted: i128,
        /// Propagated contribution (0 when the account carries none).
        propagated: i128,
        /// Claimed net.
        net: i128,
    },
    /// Vectors within one view account disagree in length.
    LengthMismatch {
        /// The inconsistent view.
        view: u32,
    },
    /// A maintenance generation is not its parent generation plus one.
    GenerationMismatch {
        /// Recorded parent generation.
        parent: u64,
        /// Recorded own generation.
        generation: u64,
    },
    /// A certificate's `parent_hash` does not match the fingerprint of its
    /// predecessor in the chain.
    ParentHashMismatch {
        /// Generation whose linkage failed.
        generation: u64,
        /// Fingerprint of the actual predecessor.
        expected: u64,
        /// Hash the certificate recorded.
        found: u64,
    },
    /// A chain must begin with an `Execute` certificate.
    ChainRootNotExecute,
    /// Only the first certificate of a chain may be an `Execute`.
    ExecuteMidChain {
        /// Generation of the out-of-place execute certificate.
        generation: u64,
    },
    /// A maintenance step's `totals_before` or `rows_before` disagrees with
    /// the state tracked from the chain root.
    ChainContinuityMismatch {
        /// Generation of the inconsistent step.
        generation: u64,
        /// The view whose pre-state diverged.
        view: u32,
    },
    /// An empty chain was submitted for checking.
    EmptyChain,
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::UnsupportedVersion { found } => {
                write!(f, "unsupported certificate version {found} (checker speaks {CERTIFICATE_VERSION})")
            }
            CertError::Malformed(msg) => write!(f, "malformed certificate: {msg}"),
            CertError::ViewProducedTwice { view } => {
                write!(f, "view {view} produced by more than one group")
            }
            CertError::MissingIncomingView { group, view } => {
                write!(
                    f,
                    "group {group} consumes view {view} before any group produced it"
                )
            }
            CertError::UnknownQueryView { query, view } => {
                write!(f, "query '{query}' references unaccounted view {view}")
            }
            CertError::AggregateIndexOutOfBounds { query, index, len } => {
                write!(
                    f,
                    "query '{query}' selects aggregate {index} of a view with {len}"
                )
            }
            CertError::QueryRowMismatch {
                query,
                expected,
                found,
            } => write!(
                f,
                "query '{query}' publishes {found} rows, view holds {expected}"
            ),
            CertError::QueryTotalMismatch {
                query,
                index,
                expected,
                found,
            } => write!(
                f,
                "query '{query}' total at aggregate {index} is {found}, accounting gives {expected}"
            ),
            CertError::RowAccountingMismatch {
                relation,
                before,
                inserted,
                deleted,
                after,
            } => write!(
                f,
                "relation '{relation}' rows {before} + {inserted} - {deleted} != {after}"
            ),
            CertError::DeltaAccountingMismatch {
                view,
                index,
                before,
                net,
                after,
            } => write!(
                f,
                "view {view} aggregate {index}: {before} + {net} != {after}"
            ),
            CertError::SignedNetMismatch {
                view,
                index,
                inserted,
                deleted,
                propagated,
                net,
            } => write!(
                f,
                "view {view} aggregate {index}: net {net} != inserted {inserted} - \
                 deleted {deleted} + propagated {propagated}"
            ),
            CertError::LengthMismatch { view } => {
                write!(f, "view {view}: accounting vectors disagree in length")
            }
            CertError::GenerationMismatch { parent, generation } => {
                write!(f, "generation {generation} does not follow parent {parent}")
            }
            CertError::ParentHashMismatch {
                generation,
                expected,
                found,
            } => write!(
                f,
                "generation {generation}: parent hash {found:#018x} != fingerprint {expected:#018x}"
            ),
            CertError::ChainRootNotExecute => {
                write!(
                    f,
                    "certificate chain does not begin with an execute certificate"
                )
            }
            CertError::ExecuteMidChain { generation } => {
                write!(
                    f,
                    "execute certificate at generation {generation} mid-chain"
                )
            }
            CertError::ChainContinuityMismatch { generation, view } => write!(
                f,
                "generation {generation}: view {view} pre-state disagrees with tracked chain state"
            ),
            CertError::EmptyChain => write!(f, "empty certificate chain"),
        }
    }
}

impl std::error::Error for CertError {}

/// Outcome of a successful [`check_chain`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSummary {
    /// Number of certificates checked (execute root included).
    pub certificates: u64,
    /// Generation of the final certificate.
    pub final_generation: u64,
    /// Distinct views whose totals the checker tracked.
    pub views_tracked: usize,
    /// Query-totals assertions verified across the chain.
    pub queries_checked: u64,
}

/// Tracked per-view state while walking a chain: rows and ledger totals.
type ViewState = FxHashMap<u32, (u64, Vec<i128>)>;

/// Checks a single certificate's internal identities.
///
/// For an [`ExecuteCertificate`] this verifies the full provenance DAG and
/// every query total against view totals. For a [`MaintenanceCertificate`]
/// it verifies the signed delta accounting; cross-generation identities
/// (parent hash, pre-state continuity) need the predecessor and are checked
/// by [`check_chain`].
pub fn check_certificate(cert: &Certificate) -> Result<(), CertError> {
    if cert.version() != CERTIFICATE_VERSION {
        return Err(CertError::UnsupportedVersion {
            found: cert.version(),
        });
    }
    match cert {
        Certificate::Execute(c) => check_execute(c).map(|_| ()),
        Certificate::Maintenance(c) => check_maintenance(c),
    }
}

/// Checks an execute certificate and returns the view state it establishes.
fn check_execute(cert: &ExecuteCertificate) -> Result<ViewState, CertError> {
    let mut views: ViewState = FxHashMap::default();
    for group in &cert.groups {
        for incoming in &group.incoming {
            if !views.contains_key(incoming) {
                return Err(CertError::MissingIncomingView {
                    group: group.group,
                    view: *incoming,
                });
            }
        }
        for out in &group.outputs {
            if views
                .insert(out.view, (out.rows, out.totals.clone()))
                .is_some()
            {
                return Err(CertError::ViewProducedTwice { view: out.view });
            }
        }
    }
    for query in &cert.queries {
        check_query(query, &views)?;
    }
    Ok(views)
}

fn check_maintenance(cert: &MaintenanceCertificate) -> Result<(), CertError> {
    if cert.generation != cert.parent_generation.wrapping_add(1) {
        return Err(CertError::GenerationMismatch {
            parent: cert.parent_generation,
            generation: cert.generation,
        });
    }
    for rel in &cert.relations {
        let expected_rows = rel
            .rows_before
            .checked_add(rel.rows_inserted)
            .and_then(|n| n.checked_sub(rel.rows_deleted));
        if expected_rows != Some(rel.rows_after) {
            return Err(CertError::RowAccountingMismatch {
                relation: rel.relation.clone(),
                before: rel.rows_before,
                inserted: rel.rows_inserted,
                deleted: rel.rows_deleted,
                after: rel.rows_after,
            });
        }
    }
    for account in &cert.views {
        let n = account.net.len();
        if account.totals_before.len() != n || account.totals_after.len() != n {
            return Err(CertError::LengthMismatch { view: account.view });
        }
        match (&account.inserted, &account.deleted) {
            (Some(ins), Some(del)) => {
                if ins.len() != n || del.len() != n {
                    return Err(CertError::LengthMismatch { view: account.view });
                }
                if account.propagated.as_ref().is_some_and(|p| p.len() != n) {
                    return Err(CertError::LengthMismatch { view: account.view });
                }
                for i in 0..n {
                    let prop = account.propagated.as_ref().map_or(0, |p| p[i]);
                    if ins[i] - del[i] + prop != account.net[i] {
                        return Err(CertError::SignedNetMismatch {
                            view: account.view,
                            index: i,
                            inserted: ins[i],
                            deleted: del[i],
                            propagated: prop,
                            net: account.net[i],
                        });
                    }
                }
            }
            // A propagated split without the seed split is not a shape the
            // engine emits; reject rather than ignore.
            (None, None) if account.propagated.is_none() => {}
            _ => return Err(CertError::LengthMismatch { view: account.view }),
        }
        for i in 0..n {
            if account.totals_before[i] + account.net[i] != account.totals_after[i] {
                return Err(CertError::DeltaAccountingMismatch {
                    view: account.view,
                    index: i,
                    before: account.totals_before[i],
                    net: account.net[i],
                    after: account.totals_after[i],
                });
            }
        }
    }
    Ok(())
}

/// Verifies one query's published totals against tracked view state.
fn check_query(query: &QueryTotals, views: &ViewState) -> Result<(), CertError> {
    let (rows, totals) = views
        .get(&query.view)
        .ok_or_else(|| CertError::UnknownQueryView {
            query: query.name.clone(),
            view: query.view,
        })?;
    if query.rows != *rows {
        return Err(CertError::QueryRowMismatch {
            query: query.name.clone(),
            expected: *rows,
            found: query.rows,
        });
    }
    if query.totals.len() != query.aggregate_indices.len() {
        return Err(CertError::Malformed(format!(
            "query '{}' has {} totals for {} aggregate indices",
            query.name,
            query.totals.len(),
            query.aggregate_indices.len()
        )));
    }
    for (slot, (&index, &found)) in query
        .aggregate_indices
        .iter()
        .zip(query.totals.iter())
        .enumerate()
    {
        let expected = *totals.get(index as usize).ok_or({
            CertError::AggregateIndexOutOfBounds {
                query: query.name.clone(),
                index,
                len: totals.len(),
            }
        })?;
        if found != expected {
            return Err(CertError::QueryTotalMismatch {
                query: query.name.clone(),
                index: query.aggregate_indices[slot],
                expected,
                found,
            });
        }
    }
    Ok(())
}

/// Checks a full certificate chain: one execute root followed by maintenance
/// steps, each internally consistent, hash-linked to its predecessor, and
/// continuous with the view state the checker tracks from the root forward.
pub fn check_chain<'a, I>(chain: I) -> Result<ChainSummary, CertError>
where
    I: IntoIterator<Item = &'a Certificate>,
{
    let mut iter = chain.into_iter();
    let root = iter.next().ok_or(CertError::EmptyChain)?;
    if root.version() != CERTIFICATE_VERSION {
        return Err(CertError::UnsupportedVersion {
            found: root.version(),
        });
    }
    let mut views = match root {
        Certificate::Execute(c) => check_execute(c)?,
        Certificate::Maintenance(_) => return Err(CertError::ChainRootNotExecute),
    };
    let mut certificates = 1u64;
    let mut queries_checked = root.queries().len() as u64;
    let mut generation = root.generation();
    let mut parent_fingerprint = fingerprint(root);

    for cert in iter {
        let step = match cert {
            Certificate::Maintenance(c) => c,
            Certificate::Execute(c) => {
                return Err(CertError::ExecuteMidChain {
                    generation: c.generation,
                })
            }
        };
        check_certificate(cert)?;
        if step.parent_generation != generation {
            return Err(CertError::GenerationMismatch {
                parent: step.parent_generation,
                generation: step.generation,
            });
        }
        if step.parent_hash != parent_fingerprint {
            return Err(CertError::ParentHashMismatch {
                generation: step.generation,
                expected: parent_fingerprint,
                found: step.parent_hash,
            });
        }
        for account in &step.views {
            // A view absent from the tracked state must start from zero
            // (views appear at the root; this guards hypothetical growth).
            let (rows_before, totals_before) = views
                .get(&account.view)
                .cloned()
                .unwrap_or_else(|| (0, vec![0; account.net.len()]));
            if account.rows_before != rows_before || account.totals_before != totals_before {
                return Err(CertError::ChainContinuityMismatch {
                    generation: step.generation,
                    view: account.view,
                });
            }
            views.insert(
                account.view,
                (account.rows_after, account.totals_after.clone()),
            );
        }
        for query in &step.queries {
            check_query(query, &views)?;
        }
        queries_checked += step.queries.len() as u64;
        certificates += 1;
        generation = step.generation;
        parent_fingerprint = fingerprint(cert);
    }

    Ok(ChainSummary {
        certificates,
        final_generation: generation,
        views_tracked: views.len(),
        queries_checked,
    })
}
