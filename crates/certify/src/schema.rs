//! The versioned certificate schema.
//!
//! Certificates are the *only* vocabulary shared between the untrusted engine
//! (`lmfao-core`, which emits them) and this trusted checker. Every numeric
//! field is an integer: tuple counts are `u64`, and aggregate values are
//! `i128` fixed-point encodings (see [`lmfao_data::fixed`]) so that each
//! accounting identity the checker re-derives is an exact integer equation.
//!
//! Two certificate kinds exist, mirroring the engine's two result paths:
//!
//! - [`ExecuteCertificate`] witnesses one full batch execution: per-view-group
//!   provenance (which relation and incoming views fed each group, tuple
//!   counts in and out, per-view aggregate totals) plus per-query aggregate
//!   totals derived from the published results.
//! - [`MaintenanceCertificate`] witnesses one incremental delta application:
//!   signed accounting per changed view (inserted minus deleted contributions
//!   must net exactly to the published aggregate change), chained to its
//!   predecessor generation by a fingerprint of the parent certificate.
//!
//! The schema is versioned ([`CERTIFICATE_VERSION`]); the checker rejects
//! versions it does not understand rather than guessing.

/// Current certificate schema version. Bump on any incompatible change.
///
/// Version history:
/// - 1: per-relation maintenance certificates (one delta, one relation).
/// - 2: per-*transaction* maintenance certificates — a `txn` identifier,
///   a list of [`RelationDeltaAccount`]s (one per relation the transaction
///   touched), and an optional `propagated` split on view accounts whose net
///   mixes seed and propagation contributions.
pub const CERTIFICATE_VERSION: u32 = 2;

/// Aggregate totals of one view produced by a group: row count plus the
/// fixed-point-encoded column sums of every aggregate the view carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewProvenance {
    /// Engine-assigned view identifier (stable within one prepared batch).
    pub view: u32,
    /// Number of grouped tuples the view holds.
    pub rows: u64,
    /// Per-aggregate totals: the sum over all rows of each aggregate column,
    /// each row's value encoded to fixed point before summing.
    pub totals: Vec<i128>,
}

/// Provenance of one view group: what fed it and what it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupProvenance {
    /// Engine-assigned group identifier, in execution order.
    pub group: u32,
    /// Name of the join-tree relation the group scans.
    pub relation: String,
    /// Tuples of that relation scanned by the group.
    pub rows_scanned: u64,
    /// Views consumed from earlier groups (must already be produced).
    pub incoming: Vec<u32>,
    /// Views this group produced, with their totals.
    pub outputs: Vec<ViewProvenance>,
}

/// Published totals of one named query, tied back to the view it projects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTotals {
    /// Query name as registered in the batch.
    pub name: String,
    /// View the query's results are projected from.
    pub view: u32,
    /// Number of result rows published for the query.
    pub rows: u64,
    /// Which aggregate columns of the view the query publishes.
    pub aggregate_indices: Vec<u32>,
    /// Fixed-point-encoded totals of the published result columns, in
    /// `aggregate_indices` order.
    pub totals: Vec<i128>,
}

/// Certificate of one full batch execution (generation 0 of a serving chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecuteCertificate {
    /// Schema version ([`CERTIFICATE_VERSION`]).
    pub version: u32,
    /// Snapshot generation this execution published (0 for a fresh batch).
    pub generation: u64,
    /// Per-group provenance in execution (topological) order.
    pub groups: Vec<GroupProvenance>,
    /// Published per-query totals, independently derived from the results.
    pub queries: Vec<QueryTotals>,
}

/// Signed delta accounting for one view touched by a maintenance step.
///
/// The central identity is `totals_after == totals_before + net`, checked
/// element-wise in exact integer arithmetic. For *seed* views (those scanning
/// a changed relation's delta partitions directly) the engine additionally
/// splits the net into insert-partition and delete-partition contributions —
/// plus, when the view also received propagated changes from upstream views
/// in the same transaction, a `propagated` component — and the checker
/// verifies `net == inserted - deleted + propagated`. Purely propagated views
/// receive signed overlay scans only, so just their net is observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewDeltaAccount {
    /// View identifier.
    pub view: u32,
    /// Grouped tuple count before the delta was applied.
    pub rows_before: u64,
    /// Grouped tuple count after the delta was applied.
    pub rows_after: u64,
    /// Encoded totals contributed by the delta's insert partition
    /// (seed views only).
    pub inserted: Option<Vec<i128>>,
    /// Encoded totals contributed by the delta's delete partition
    /// (seed views only).
    pub deleted: Option<Vec<i128>>,
    /// Encoded totals contributed by propagation from upstream views, for
    /// views that are both seeded and propagated in one transaction. `None`
    /// means zero; only meaningful alongside `inserted`/`deleted`.
    pub propagated: Option<Vec<i128>>,
    /// Encoded net change per aggregate.
    pub net: Vec<i128>,
    /// Ledger totals before the delta (must match the chain's tracked state).
    pub totals_before: Vec<i128>,
    /// Ledger totals after the delta.
    pub totals_after: Vec<i128>,
}

/// Cardinality accounting for one relation changed by a transaction.
///
/// The checker verifies `rows_before + rows_inserted - rows_deleted ==
/// rows_after` in checked integer arithmetic, per relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDeltaAccount {
    /// Relation the transaction's delta targeted.
    pub relation: String,
    /// Tuples in the delta's insert partition.
    pub rows_inserted: u64,
    /// Tuples in the delta's delete partition.
    pub rows_deleted: u64,
    /// Relation cardinality before the transaction.
    pub rows_before: u64,
    /// Relation cardinality after the transaction.
    pub rows_after: u64,
}

/// Certificate of one committed transaction (incremental maintenance step).
///
/// One certificate witnesses one atomic multi-relation transaction: all the
/// relation deltas it applied, all the views it changed, and the single
/// generation it published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaintenanceCertificate {
    /// Schema version ([`CERTIFICATE_VERSION`]).
    pub version: u32,
    /// Generation this commit published.
    pub generation: u64,
    /// Engine-assigned transaction identifier (1-based, one per commit).
    pub txn: u64,
    /// Generation of the predecessor snapshot (`generation - 1`).
    pub parent_generation: u64,
    /// FNV-1a 64-bit fingerprint of the parent certificate's canonical JSON.
    pub parent_hash: u64,
    /// Cardinality accounting per relation the transaction changed.
    pub relations: Vec<RelationDeltaAccount>,
    /// Accounting for every view whose state changed.
    pub views: Vec<ViewDeltaAccount>,
    /// Published per-query totals after the commit (from the engine's ledger;
    /// the chain checker verifies them against its own tracked state).
    pub queries: Vec<QueryTotals>,
}

/// A certificate emitted by the engine: either a full execution or one
/// maintenance step. A serving chain is one `Execute` followed by zero or
/// more `Maintenance` certificates linked by `parent_hash`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// Full batch execution witness.
    Execute(ExecuteCertificate),
    /// Incremental delta application witness.
    Maintenance(MaintenanceCertificate),
}

impl Certificate {
    /// Schema version recorded in the certificate.
    pub fn version(&self) -> u32 {
        match self {
            Certificate::Execute(c) => c.version,
            Certificate::Maintenance(c) => c.version,
        }
    }

    /// Snapshot generation the certificate describes.
    pub fn generation(&self) -> u64 {
        match self {
            Certificate::Execute(c) => c.generation,
            Certificate::Maintenance(c) => c.generation,
        }
    }

    /// Published per-query totals.
    pub fn queries(&self) -> &[QueryTotals] {
        match self {
            Certificate::Execute(c) => &c.queries,
            Certificate::Maintenance(c) => &c.queries,
        }
    }
}
