//! # lmfao-certify
//!
//! The trusted half of the execution-certificate trust split.
//!
//! The LMFAO engine (`lmfao-core`) is fast and therefore complicated:
//! plan-once/execute-many, incremental maintenance, epoch-published
//! snapshots. Rather than trusting that machinery, the engine emits cheap,
//! versioned [`Certificate`]s — integer/fixed-point witnesses of what each
//! execution and each delta application did — and this crate checks them.
//!
//! The crate deliberately shares **no execution code** with the engine: its
//! only dependency is `lmfao-data` (the fixed-point encoding and hash-map
//! alias). It re-derives every accounting identity independently and returns
//! typed [`CertError`] verdicts. CI enforces the dependency boundary with a
//! `cargo tree` check.
//!
//! ```
//! use lmfao_certify::{
//!     check_certificate, parse_certificate, to_json, Certificate, ExecuteCertificate,
//!     GroupProvenance, QueryTotals, ViewProvenance, CERTIFICATE_VERSION,
//! };
//!
//! let cert = Certificate::Execute(ExecuteCertificate {
//!     version: CERTIFICATE_VERSION,
//!     generation: 0,
//!     groups: vec![GroupProvenance {
//!         group: 0,
//!         relation: "Sales".into(),
//!         rows_scanned: 2,
//!         incoming: vec![],
//!         outputs: vec![ViewProvenance { view: 0, rows: 1, totals: vec![8 << 32] }],
//!     }],
//!     queries: vec![QueryTotals {
//!         name: "total_units".into(),
//!         view: 0,
//!         rows: 1,
//!         aggregate_indices: vec![0],
//!         totals: vec![8 << 32],
//!     }],
//! });
//! let round_tripped = parse_certificate(&to_json(&cert)).unwrap();
//! assert_eq!(round_tripped, cert);
//! assert!(check_certificate(&round_tripped).is_ok());
//! ```

#![warn(missing_docs)]

pub mod check;
pub mod json;
pub mod schema;

pub use check::{check_certificate, check_chain, CertError, ChainSummary};
pub use json::{fingerprint, fnv1a64, parse_certificate, to_json};
pub use schema::{
    Certificate, ExecuteCertificate, GroupProvenance, MaintenanceCertificate, QueryTotals,
    RelationDeltaAccount, ViewDeltaAccount, ViewProvenance, CERTIFICATE_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_execute() -> Certificate {
        Certificate::Execute(ExecuteCertificate {
            version: CERTIFICATE_VERSION,
            generation: 0,
            groups: vec![
                GroupProvenance {
                    group: 0,
                    relation: "Items".into(),
                    rows_scanned: 100,
                    incoming: vec![],
                    outputs: vec![ViewProvenance {
                        view: 1,
                        rows: 10,
                        totals: vec![1 << 32, -(3i128 << 30)],
                    }],
                },
                GroupProvenance {
                    group: 1,
                    relation: "Sales".into(),
                    rows_scanned: 1000,
                    incoming: vec![1],
                    outputs: vec![ViewProvenance {
                        view: 0,
                        rows: 4,
                        totals: vec![42 << 32],
                    }],
                },
            ],
            queries: vec![QueryTotals {
                name: "count".into(),
                view: 0,
                rows: 4,
                aggregate_indices: vec![0],
                totals: vec![42 << 32],
            }],
        })
    }

    fn sample_maintenance(parent: &Certificate) -> Certificate {
        Certificate::Maintenance(MaintenanceCertificate {
            version: CERTIFICATE_VERSION,
            generation: 1,
            txn: 1,
            parent_generation: 0,
            parent_hash: fingerprint(parent),
            relations: vec![
                RelationDeltaAccount {
                    relation: "Sales".into(),
                    rows_inserted: 3,
                    rows_deleted: 1,
                    rows_before: 1000,
                    rows_after: 1002,
                },
                RelationDeltaAccount {
                    relation: "Items".into(),
                    rows_inserted: 0,
                    rows_deleted: 0,
                    rows_before: 100,
                    rows_after: 100,
                },
            ],
            views: vec![ViewDeltaAccount {
                view: 0,
                rows_before: 4,
                rows_after: 5,
                inserted: Some(vec![5 << 32]),
                deleted: Some(vec![2 << 32]),
                propagated: Some(vec![1 << 32]),
                net: vec![4 << 32],
                totals_before: vec![42 << 32],
                totals_after: vec![46 << 32],
            }],
            queries: vec![QueryTotals {
                name: "count".into(),
                view: 0,
                rows: 5,
                aggregate_indices: vec![0],
                totals: vec![46 << 32],
            }],
        })
    }

    #[test]
    fn round_trip_preserves_both_kinds() {
        let exec = sample_execute();
        let maint = sample_maintenance(&exec);
        for cert in [exec, maint] {
            let json = to_json(&cert);
            let parsed = parse_certificate(&json).unwrap();
            assert_eq!(parsed, cert);
            assert_eq!(to_json(&parsed), json, "canonical form is stable");
        }
    }

    #[test]
    fn valid_chain_checks_clean() {
        let exec = sample_execute();
        let maint = sample_maintenance(&exec);
        let summary = check_chain([&exec, &maint]).unwrap();
        assert_eq!(summary.certificates, 2);
        assert_eq!(summary.final_generation, 1);
        assert_eq!(summary.views_tracked, 2);
        assert_eq!(summary.queries_checked, 2);
    }

    #[test]
    fn tampered_total_is_rejected() {
        let exec = sample_execute();
        let mut json = to_json(&exec);
        let needle = "\"totals\":[\"180388626432\"]"; // 42 << 32
        assert!(json.contains(needle), "fixture drifted: {json}");
        // Tamper with the *query* total only (the view total still appears
        // later in the string), so the checker sees a genuine mismatch.
        json = json.replacen("180388626432", "180388626433", 1);
        let parsed = parse_certificate(&json).unwrap();
        assert!(matches!(
            check_certificate(&parsed),
            Err(CertError::QueryTotalMismatch { .. })
                | Err(CertError::DeltaAccountingMismatch { .. })
        ));
    }

    #[test]
    fn missing_incoming_view_is_rejected() {
        let mut exec = match sample_execute() {
            Certificate::Execute(c) => c,
            _ => unreachable!(),
        };
        exec.groups[1].incoming = vec![99];
        assert_eq!(
            check_certificate(&Certificate::Execute(exec)),
            Err(CertError::MissingIncomingView { group: 1, view: 99 })
        );
    }

    #[test]
    fn broken_parent_hash_is_rejected() {
        let exec = sample_execute();
        let maint = match sample_maintenance(&exec) {
            Certificate::Maintenance(mut c) => {
                c.parent_hash ^= 1;
                Certificate::Maintenance(c)
            }
            _ => unreachable!(),
        };
        assert!(matches!(
            check_chain([&exec, &maint]),
            Err(CertError::ParentHashMismatch { generation: 1, .. })
        ));
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let json = to_json(&sample_execute()).replacen("\"version\"", "\"verzion\"", 1);
        assert!(matches!(
            parse_certificate(&json),
            Err(CertError::Malformed(_))
        ));
    }

    #[test]
    fn future_version_is_rejected() {
        let mut exec = match sample_execute() {
            Certificate::Execute(c) => c,
            _ => unreachable!(),
        };
        exec.version = CERTIFICATE_VERSION + 1;
        assert_eq!(
            check_certificate(&Certificate::Execute(exec)),
            Err(CertError::UnsupportedVersion {
                found: CERTIFICATE_VERSION + 1
            })
        );
    }
}
