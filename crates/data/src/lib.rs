//! # lmfao-data
//!
//! Storage substrate of the LMFAO reproduction: typed values, schemas,
//! dictionary-encoded categorical attributes, sorted in-memory relations with
//! trie-style grouped scans, the database catalog with cardinality statistics,
//! and CSV import/export.
//!
//! The LMFAO engine (in `lmfao-core`) consumes a [`Database`] — relations
//! sorted by their join attributes plus statistics — and computes batches of
//! group-by aggregates over their natural join without ever materializing the
//! join itself.

#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod dictionary;
pub mod error;
pub mod hash;
pub mod relation;
pub mod schema;
pub mod trie;
pub mod value;

pub use catalog::{Database, Statistics};
pub use dictionary::{Dictionary, DictionarySet};
pub use error::{DataError, Result};
pub use hash::{FxHashMap, FxHashSet};
pub use relation::Relation;
pub use schema::{AttrId, Attribute, DatabaseSchema, RelationSchema};
pub use trie::TrieScan;
pub use value::{AttrType, Value};
