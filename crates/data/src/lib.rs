//! # lmfao-data
//!
//! Storage substrate of the LMFAO reproduction: typed values, schemas,
//! dictionary-encoded categorical attributes, sorted in-memory *columnar*
//! relations (typed [`Column`]s per attribute) with trie-style grouped scans,
//! the database catalog with cardinality statistics, and CSV import/export.
//!
//! The LMFAO engine (in `lmfao-core`) consumes a [`Database`] — relations
//! sorted by their join attributes plus statistics — and computes batches of
//! group-by aggregates over their natural join without ever materializing the
//! join itself.

#![warn(missing_docs)]

pub mod catalog;
pub mod column;
pub mod csv;
pub mod delta;
pub mod dictionary;
pub mod error;
pub mod fixed;
pub mod hash;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod transaction;
pub mod trie;
pub mod value;

pub use catalog::{Database, Statistics};
pub use column::Column;
pub use delta::TableDelta;
pub use dictionary::{Dictionary, DictionarySet};
pub use error::{DataError, Result};
pub use fixed::{decode_fixed, encode_fixed, FIXED_POINT_BITS, FIXED_POINT_SCALE};
pub use hash::{FxHashMap, FxHashSet};
pub use relation::{Relation, RowView};
pub use schema::{AttrId, Attribute, DatabaseSchema, RelationSchema};
pub use snapshot::DatabaseSnapshot;
pub use transaction::Transaction;
pub use trie::TrieScan;
pub use value::{AttrType, Value};

#[cfg(test)]
mod smoke {
    use super::*;

    /// Exercises the crate-level re-export surface the `lmfao` façade (and
    /// every downstream crate) builds on: schema → relations → database.
    #[test]
    fn schema_relation_database_round_trip() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs(
            "Sales",
            &[
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        schema.add_relation_with_attrs(
            "Items",
            &[("item", AttrType::Int), ("price", AttrType::Double)],
        );
        let sales = Relation::from_rows(
            schema.relation("Sales").unwrap().clone(),
            vec![
                vec![Value::Int(1), Value::Int(1), Value::Double(3.0)],
                vec![Value::Int(2), Value::Int(1), Value::Double(5.0)],
            ],
        )
        .unwrap();
        let items = Relation::from_rows(
            schema.relation("Items").unwrap().clone(),
            vec![vec![Value::Int(1), Value::Double(10.0)]],
        )
        .unwrap();
        let db = Database::new(schema.clone(), vec![sales, items]).unwrap();
        assert_eq!(db.total_tuples(), 3);
        let item = schema.attr_id("item").unwrap();
        assert!(db.statistics().domain_size("Items", item).is_some());
        assert_eq!(db.attributes_of_type(AttrType::Double).len(), 2);
    }
}
