//! Dictionary encoding for categorical attributes.
//!
//! Categorical values (cities, item families, …) are stored as dense `u32`
//! codes inside relations ([`crate::value::Value::Cat`]). A [`Dictionary`]
//! maps the original strings to codes and back; the [`DictionarySet`] keeps
//! one dictionary per categorical attribute of a database.

use crate::hash::FxHashMap;
use crate::schema::AttrId;
use std::sync::Arc;

/// A bidirectional mapping between category strings and dense codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    codes: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a category, inserting it if it has not been seen before.
    pub fn encode(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.to_string());
        self.codes.insert(value.to_string(), code);
        code
    }

    /// Looks up the code of a category without inserting.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// Decodes a code back to its category string.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct categories.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no category has been registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(code, category)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }
}

/// One dictionary per categorical attribute of a database.
///
/// Dictionaries are kept behind [`Arc`]s so that the [`crate::column::Column`]s
/// of a relation can share the dictionary that produced their codes without
/// copying it (see [`DictionarySet::shared`]); encoding new categories uses
/// copy-on-write ([`Arc::make_mut`]), so handles taken before an insert keep
/// seeing a consistent snapshot.
#[derive(Debug, Clone, Default)]
pub struct DictionarySet {
    dicts: FxHashMap<AttrId, Arc<Dictionary>>,
}

impl DictionarySet {
    /// Creates an empty dictionary set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a category for `attr`, creating the dictionary on first use.
    pub fn encode(&mut self, attr: AttrId, value: &str) -> u32 {
        Arc::make_mut(self.dicts.entry(attr).or_default()).encode(value)
    }

    /// The dictionary of `attr`, if any value has been encoded for it.
    pub fn dictionary(&self, attr: AttrId) -> Option<&Dictionary> {
        self.dicts.get(&attr).map(Arc::as_ref)
    }

    /// A shared handle to the dictionary of `attr`, for attaching to columns.
    pub fn shared(&self, attr: AttrId) -> Option<Arc<Dictionary>> {
        self.dicts.get(&attr).cloned()
    }

    /// Decodes a code of `attr` back to the category string.
    pub fn decode(&self, attr: AttrId, code: u32) -> Option<&str> {
        self.dicts.get(&attr).and_then(|d| d.decode(code))
    }

    /// Number of distinct categories registered for `attr` (0 if none).
    pub fn domain_size(&self, attr: AttrId) -> usize {
        self.dicts.get(&attr).map_or(0, |d| d.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_stable_and_dense() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("GROCERY"), 0);
        assert_eq!(d.encode("DAIRY"), 1);
        assert_eq!(d.encode("GROCERY"), 0);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let c = d.encode("Quito");
        assert_eq!(d.decode(c), Some("Quito"));
        assert_eq!(d.decode(99), None);
        assert_eq!(d.code_of("Quito"), Some(c));
        assert_eq!(d.code_of("Lima"), None);
    }

    #[test]
    fn iteration_in_code_order() {
        let mut d = Dictionary::new();
        d.encode("a");
        d.encode("b");
        d.encode("c");
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn out_of_vocabulary_lookups_return_none() {
        let mut d = Dictionary::new();
        d.encode("known");
        assert_eq!(d.code_of("unknown"), None);
        assert_eq!(d.decode(1), None, "code 1 was never assigned");
        assert_eq!(d.decode(u32::MAX), None);
        let s = DictionarySet::new();
        assert_eq!(s.decode(AttrId(0), 0), None, "no dictionary for the attr");
        assert_eq!(s.domain_size(AttrId(0)), 0);
        assert!(s.shared(AttrId(0)).is_none());
    }

    #[test]
    fn codes_are_stable_under_relation_resorting() {
        use crate::relation::Relation;
        use crate::schema::RelationSchema;
        use crate::value::Value;

        // Encode cities, store their codes in a relation next to a sort key,
        // then re-sort the relation: the codes must still decode to the same
        // strings per row (sorting permutes rows, never rewrites codes), and
        // the dictionary itself is untouched.
        let mut set = DictionarySet::new();
        let city = AttrId(1);
        let names = ["Quito", "Lima", "Cusco", "Quito", "Lima"];
        let keys = [3i64, 1, 2, 0, 4];
        let rows: Vec<Vec<Value>> = names
            .iter()
            .zip(&keys)
            .map(|(n, &k)| vec![Value::Int(k), Value::Cat(set.encode(city, n))])
            .collect();
        let mut rel =
            Relation::from_rows(RelationSchema::new("Stores", vec![AttrId(0), city]), rows)
                .unwrap();
        let decoded_by_key = |rel: &Relation| -> Vec<(i64, String)> {
            (0..rel.len())
                .map(|i| {
                    let code = rel.value(i, 1).as_cat().unwrap();
                    (
                        rel.value(i, 0).as_i64(),
                        set.decode(city, code).unwrap().to_string(),
                    )
                })
                .collect()
        };
        let mut before = decoded_by_key(&rel);
        rel.sort_by_positions(&[0]);
        let after = decoded_by_key(&rel);
        before.sort();
        assert_eq!(after, before, "per-row (key, city) pairs survive the sort");
        assert_eq!(
            set.domain_size(city),
            3,
            "re-sorting never grows the dictionary"
        );
        assert_eq!(
            set.decode(city, 0),
            Some("Quito"),
            "codes keep their order of first appearance"
        );
    }

    #[test]
    fn strings_round_trip_through_attached_column_dictionaries() {
        use crate::column::Column;
        use crate::value::Value;

        let mut set = DictionarySet::new();
        let attr = AttrId(2);
        let words = ["GROCERY", "DAIRY", "médano ñ", ""];
        let codes: Vec<u32> = words.iter().map(|w| set.encode(attr, w)).collect();
        let mut col = Column::new();
        for &c in &codes {
            col.push(Value::Cat(c));
        }
        col.attach_dictionary(set.shared(attr).unwrap());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(col.decode(i), Some(*w), "column decodes its own codes");
            assert_eq!(set.decode(attr, codes[i]), Some(*w));
        }
        // Copy-on-write: encoding new categories later must not disturb the
        // snapshot already attached to the column.
        set.encode(attr, "BAKERY");
        assert_eq!(col.dictionary().unwrap().len(), words.len());
        assert_eq!(set.domain_size(attr), words.len() + 1);
    }

    #[test]
    fn dictionary_set_per_attribute() {
        let mut s = DictionarySet::new();
        let city = AttrId(0);
        let family = AttrId(1);
        assert_eq!(s.encode(city, "Quito"), 0);
        assert_eq!(s.encode(family, "GROCERY"), 0);
        assert_eq!(s.encode(city, "Lima"), 1);
        assert_eq!(s.domain_size(city), 2);
        assert_eq!(s.domain_size(family), 1);
        assert_eq!(s.domain_size(AttrId(9)), 0);
        assert_eq!(s.decode(city, 1), Some("Lima"));
        assert_eq!(s.decode(family, 5), None);
        assert!(s.dictionary(city).is_some());
        assert!(s.dictionary(AttrId(9)).is_none());
    }
}
