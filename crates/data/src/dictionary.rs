//! Dictionary encoding for categorical attributes.
//!
//! Categorical values (cities, item families, …) are stored as dense `u32`
//! codes inside relations ([`crate::value::Value::Cat`]). A [`Dictionary`]
//! maps the original strings to codes and back; the [`DictionarySet`] keeps
//! one dictionary per categorical attribute of a database.

use crate::hash::FxHashMap;
use crate::schema::AttrId;

/// A bidirectional mapping between category strings and dense codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<String>,
    codes: FxHashMap<String, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a category, inserting it if it has not been seen before.
    pub fn encode(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(value.to_string());
        self.codes.insert(value.to_string(), code);
        code
    }

    /// Looks up the code of a category without inserting.
    pub fn code_of(&self, value: &str) -> Option<u32> {
        self.codes.get(value).copied()
    }

    /// Decodes a code back to its category string.
    pub fn decode(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct categories.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no category has been registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(code, category)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.as_str()))
    }
}

/// One dictionary per categorical attribute of a database.
#[derive(Debug, Clone, Default)]
pub struct DictionarySet {
    dicts: FxHashMap<AttrId, Dictionary>,
}

impl DictionarySet {
    /// Creates an empty dictionary set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes a category for `attr`, creating the dictionary on first use.
    pub fn encode(&mut self, attr: AttrId, value: &str) -> u32 {
        self.dicts.entry(attr).or_default().encode(value)
    }

    /// The dictionary of `attr`, if any value has been encoded for it.
    pub fn dictionary(&self, attr: AttrId) -> Option<&Dictionary> {
        self.dicts.get(&attr)
    }

    /// Decodes a code of `attr` back to the category string.
    pub fn decode(&self, attr: AttrId, code: u32) -> Option<&str> {
        self.dicts.get(&attr).and_then(|d| d.decode(code))
    }

    /// Number of distinct categories registered for `attr` (0 if none).
    pub fn domain_size(&self, attr: AttrId) -> usize {
        self.dicts.get(&attr).map_or(0, Dictionary::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_stable_and_dense() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("GROCERY"), 0);
        assert_eq!(d.encode("DAIRY"), 1);
        assert_eq!(d.encode("GROCERY"), 0);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }

    #[test]
    fn decode_round_trips() {
        let mut d = Dictionary::new();
        let c = d.encode("Quito");
        assert_eq!(d.decode(c), Some("Quito"));
        assert_eq!(d.decode(99), None);
        assert_eq!(d.code_of("Quito"), Some(c));
        assert_eq!(d.code_of("Lima"), None);
    }

    #[test]
    fn iteration_in_code_order() {
        let mut d = Dictionary::new();
        d.encode("a");
        d.encode("b");
        d.encode("c");
        let pairs: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(pairs, vec![(0, "a"), (1, "b"), (2, "c")]);
    }

    #[test]
    fn dictionary_set_per_attribute() {
        let mut s = DictionarySet::new();
        let city = AttrId(0);
        let family = AttrId(1);
        assert_eq!(s.encode(city, "Quito"), 0);
        assert_eq!(s.encode(family, "GROCERY"), 0);
        assert_eq!(s.encode(city, "Lima"), 1);
        assert_eq!(s.domain_size(city), 2);
        assert_eq!(s.domain_size(family), 1);
        assert_eq!(s.domain_size(AttrId(9)), 0);
        assert_eq!(s.decode(city, 1), Some("Lima"));
        assert_eq!(s.decode(family, 5), None);
        assert!(s.dictionary(city).is_some());
        assert!(s.dictionary(AttrId(9)).is_none());
    }
}
