//! Database and relation schemas.
//!
//! LMFAO computes natural joins: attributes with the same name in different
//! relations are join attributes. Attributes are therefore registered once
//! per database in a [`DatabaseSchema`] and referenced everywhere else by a
//! compact [`AttrId`], which keeps query plans and computed views small and
//! cheap to hash.

use crate::error::{DataError, Result};
use crate::hash::FxHashMap;
use crate::value::AttrType;
use std::fmt;

/// A compact identifier of an attribute registered in a [`DatabaseSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The index of this attribute in the database-wide attribute list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// An attribute: a name, a type, and an id assigned by the database schema.
#[derive(Debug, Clone)]
pub struct Attribute {
    /// Identifier within the owning [`DatabaseSchema`].
    pub id: AttrId,
    /// Attribute name, shared across relations (natural join semantics).
    pub name: String,
    /// Value type of the attribute.
    pub attr_type: AttrType,
}

/// The schema of a single relation: an ordered list of attribute ids.
#[derive(Debug, Clone)]
pub struct RelationSchema {
    /// Relation name, e.g. `"Sales"`.
    pub name: String,
    /// Ordered list of attributes of the relation.
    pub attrs: Vec<AttrId>,
}

impl RelationSchema {
    /// Creates a new relation schema from a name and attribute list.
    pub fn new(name: impl Into<String>, attrs: Vec<AttrId>) -> Self {
        RelationSchema {
            name: name.into(),
            attrs,
        }
    }

    /// Number of attributes (arity) of the relation.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Position of `attr` within this relation, if present.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Whether the relation contains `attr`.
    pub fn contains(&self, attr: AttrId) -> bool {
        self.attrs.contains(&attr)
    }

    /// Attributes shared with another relation schema (the natural-join keys).
    pub fn shared_attrs(&self, other: &RelationSchema) -> Vec<AttrId> {
        self.attrs
            .iter()
            .copied()
            .filter(|a| other.contains(*a))
            .collect()
    }
}

/// The schema of the whole database: the global attribute registry plus one
/// [`RelationSchema`] per relation.
#[derive(Debug, Clone, Default)]
pub struct DatabaseSchema {
    attributes: Vec<Attribute>,
    by_name: FxHashMap<String, AttrId>,
    relations: Vec<RelationSchema>,
    relation_by_name: FxHashMap<String, usize>,
}

impl DatabaseSchema {
    /// Creates an empty database schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an attribute (or returns the existing id if the name is
    /// already registered with the same type).
    pub fn add_attribute(&mut self, name: impl Into<String>, attr_type: AttrType) -> AttrId {
        let name = name.into();
        if let Some(&id) = self.by_name.get(&name) {
            return id;
        }
        let id = AttrId(self.attributes.len() as u32);
        self.attributes.push(Attribute {
            id,
            name: name.clone(),
            attr_type,
        });
        self.by_name.insert(name, id);
        id
    }

    /// Registers a relation schema. Returns its index in the schema.
    pub fn add_relation(&mut self, rel: RelationSchema) -> usize {
        let idx = self.relations.len();
        self.relation_by_name.insert(rel.name.clone(), idx);
        self.relations.push(rel);
        idx
    }

    /// Convenience: registers a relation given `(attribute name, type)` pairs.
    pub fn add_relation_with_attrs(
        &mut self,
        name: impl Into<String>,
        attrs: &[(&str, AttrType)],
    ) -> usize {
        let ids: Vec<AttrId> = attrs
            .iter()
            .map(|(n, t)| self.add_attribute(*n, *t))
            .collect();
        self.add_relation(RelationSchema::new(name, ids))
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Result<AttrId> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// Looks up an attribute by id.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id.index()]
    }

    /// The name of an attribute.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attributes[id.index()].name
    }

    /// The type of an attribute.
    pub fn attr_type(&self, id: AttrId) -> AttrType {
        self.attributes[id.index()].attr_type
    }

    /// All registered attributes.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of registered attributes.
    pub fn num_attributes(&self) -> usize {
        self.attributes.len()
    }

    /// All registered relation schemas.
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Looks up a relation schema by name.
    pub fn relation(&self, name: &str) -> Result<&RelationSchema> {
        self.relation_by_name
            .get(name)
            .map(|&i| &self.relations[i])
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Index of a relation by name.
    pub fn relation_index(&self, name: &str) -> Result<usize> {
        self.relation_by_name
            .get(name)
            .copied()
            .ok_or_else(|| DataError::UnknownRelation(name.to_string()))
    }

    /// Relation schema by index.
    pub fn relation_at(&self, idx: usize) -> &RelationSchema {
        &self.relations[idx]
    }

    /// Attributes that appear in more than one relation (the join attributes
    /// of the natural join of all relations).
    pub fn join_attributes(&self) -> Vec<AttrId> {
        let mut counts = vec![0usize; self.attributes.len()];
        for rel in &self.relations {
            for &a in &rel.attrs {
                counts[a.index()] += 1;
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1)
            .map(|(i, _)| AttrId(i as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> DatabaseSchema {
        let mut s = DatabaseSchema::new();
        s.add_relation_with_attrs(
            "Sales",
            &[
                ("date", AttrType::Int),
                ("store", AttrType::Int),
                ("item", AttrType::Int),
                ("units", AttrType::Double),
            ],
        );
        s.add_relation_with_attrs(
            "Items",
            &[
                ("item", AttrType::Int),
                ("family", AttrType::Categorical),
                ("price", AttrType::Double),
            ],
        );
        s.add_relation_with_attrs(
            "Stores",
            &[("store", AttrType::Int), ("city", AttrType::Categorical)],
        );
        s
    }

    #[test]
    fn attribute_registration_dedupes_by_name() {
        let s = sample_schema();
        // date, store, item, units, family, price, city = 7 distinct attributes
        assert_eq!(s.num_attributes(), 7);
        assert_eq!(s.num_relations(), 3);
        let item_in_sales = s.relation("Sales").unwrap().attrs[2];
        let item_in_items = s.relation("Items").unwrap().attrs[0];
        assert_eq!(item_in_sales, item_in_items);
    }

    #[test]
    fn attr_lookup_by_name() {
        let s = sample_schema();
        let id = s.attr_id("family").unwrap();
        assert_eq!(s.attr_name(id), "family");
        assert_eq!(s.attr_type(id), AttrType::Categorical);
        assert!(s.attr_id("missing").is_err());
    }

    #[test]
    fn relation_lookup() {
        let s = sample_schema();
        assert_eq!(s.relation("Items").unwrap().arity(), 3);
        assert!(s.relation("Nope").is_err());
        assert_eq!(s.relation_index("Stores").unwrap(), 2);
    }

    #[test]
    fn shared_attrs_are_join_keys() {
        let s = sample_schema();
        let sales = s.relation("Sales").unwrap();
        let items = s.relation("Items").unwrap();
        let shared = sales.shared_attrs(items);
        assert_eq!(shared.len(), 1);
        assert_eq!(s.attr_name(shared[0]), "item");
    }

    #[test]
    fn join_attributes_of_database() {
        let s = sample_schema();
        let joins: Vec<&str> = s
            .join_attributes()
            .into_iter()
            .map(|a| s.attr_name(a).to_string())
            .map(|n| if n == "store" { "store" } else { "item" })
            .collect();
        assert_eq!(s.join_attributes().len(), 2);
        assert!(joins.contains(&"store"));
        assert!(joins.contains(&"item"));
    }

    #[test]
    fn relation_schema_positions() {
        let s = sample_schema();
        let sales = s.relation("Sales").unwrap();
        let units = s.attr_id("units").unwrap();
        assert_eq!(sales.position(units), Some(3));
        assert!(sales.contains(units));
        let city = s.attr_id("city").unwrap();
        assert_eq!(sales.position(city), None);
        assert!(!sales.contains(city));
    }

    #[test]
    fn attr_id_display_and_index() {
        let id = AttrId(4);
        assert_eq!(id.index(), 4);
        assert_eq!(id.to_string(), "X4");
    }
}
