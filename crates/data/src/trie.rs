//! Trie-style grouped scans over sorted relations.
//!
//! The multi-output plans of LMFAO scan a relation "logically organized as a
//! trie": first grouped by one attribute, then by the next within the context
//! of the first, and so on (Section 3.5 of the paper, in the spirit of
//! factorized databases and LeapFrog TrieJoin). Over a relation sorted by the
//! attribute order this is a matter of finding, inside a row range, the
//! sub-ranges of equal values for the next attribute — which is what
//! [`TrieScan::children`] does. Because the relation is sorted, each level is
//! discovered with a linear sweep (or galloping search) over the parent range,
//! and the scan as a whole visits each tuple a constant number of times.

use crate::column::Column;
use crate::relation::Relation;
use crate::value::Value;
use std::ops::Range;

/// A trie view over a sorted relation: a sequence of column positions
/// (the attribute order) along which the relation is grouped.
#[derive(Debug, Clone)]
pub struct TrieScan<'a> {
    relation: &'a Relation,
    order: Vec<usize>,
}

impl<'a> TrieScan<'a> {
    /// Creates a trie scan for `relation` grouped by `order` (column
    /// positions). The relation must be sorted by (a prefix extension of)
    /// `order`; this is asserted in debug builds.
    pub fn new(relation: &'a Relation, order: Vec<usize>) -> Self {
        debug_assert!(
            relation.is_sorted_by(&order) || relation.len() <= 1 || order.is_empty(),
            "relation {} is not sorted by the requested attribute order",
            relation.name()
        );
        TrieScan { relation, order }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &'a Relation {
        self.relation
    }

    /// The attribute order (column positions) of the trie.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of levels of the trie.
    pub fn depth(&self) -> usize {
        self.order.len()
    }

    /// The range covering the whole relation (the trie root).
    pub fn root(&self) -> Range<usize> {
        0..self.relation.len()
    }

    /// Groups `range` by the attribute at `level`, returning for each distinct
    /// value the sub-range of rows carrying that value. The iterator works
    /// directly on the typed column, so run detection is a native compare per
    /// probed row — no [`Value`] is materialized until a group is emitted.
    pub fn children(&self, level: usize, range: Range<usize>) -> GroupIter<'a> {
        let col = self.order[level];
        GroupIter {
            column: self.relation.column(col),
            pos: range.start,
            end: range.end,
        }
    }

    /// Convenience: the distinct values at `level` within `range`.
    pub fn distinct_at(&self, level: usize, range: Range<usize>) -> Vec<Value> {
        self.children(level, range).map(|(v, _)| v).collect()
    }

    /// Total number of values a full trie traversal visits (the sum over all
    /// levels of the number of groups at that level), used to compare the trie
    /// organization against a plain row scan (`len * arity`).
    pub fn visited_values(&self) -> usize {
        let mut total = 0usize;
        let mut ranges = vec![self.root()];
        for level in 0..self.depth() {
            let mut next = Vec::new();
            for r in &ranges {
                for (_, child) in self.children(level, r.clone()) {
                    total += 1;
                    next.push(child);
                }
            }
            ranges = next;
        }
        total
    }
}

/// Iterator over the `(value, row range)` groups of one trie level.
#[derive(Debug)]
pub struct GroupIter<'a> {
    column: &'a Column,
    pos: usize,
    end: usize,
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = (Value, Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let start = self.pos;
        let col = self.column;
        // Gallop: exponential probe followed by binary search keeps the cost
        // logarithmic in the group size for long runs of equal values. All
        // probes are typed in-column comparisons against the group's first row.
        let mut step = 1usize;
        let mut hi = start + 1;
        while hi < self.end && col.eq_rows(hi, start) {
            let next = (hi + step).min(self.end);
            if next == hi {
                break;
            }
            if col.eq_rows(next - 1, start) {
                hi = next;
                step *= 2;
            } else {
                // binary search the boundary in (hi, next)
                let mut lo = hi;
                let mut up = next;
                while lo < up {
                    let mid = (lo + up) / 2;
                    if col.eq_rows(mid, start) {
                        lo = mid + 1;
                    } else {
                        up = mid;
                    }
                }
                hi = lo;
                break;
            }
        }
        self.pos = hi;
        Some((col.value(start), start..hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelationSchema};

    fn sorted_relation() -> Relation {
        let schema = RelationSchema::new("S", vec![AttrId(0), AttrId(1), AttrId(2)]);
        let rows = vec![
            vec![Value::Int(1), Value::Int(10), Value::Double(0.5)],
            vec![Value::Int(1), Value::Int(10), Value::Double(1.5)],
            vec![Value::Int(1), Value::Int(20), Value::Double(2.5)],
            vec![Value::Int(2), Value::Int(10), Value::Double(3.5)],
            vec![Value::Int(2), Value::Int(30), Value::Double(4.5)],
            vec![Value::Int(2), Value::Int(30), Value::Double(5.5)],
        ];
        let mut r = Relation::from_rows(schema, rows).unwrap();
        r.sort_by_positions(&[0, 1]);
        r
    }

    #[test]
    fn level_zero_groups() {
        let r = sorted_relation();
        let t = TrieScan::new(&r, vec![0, 1]);
        let groups: Vec<(Value, Range<usize>)> = t.children(0, t.root()).collect();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (Value::Int(1), 0..3));
        assert_eq!(groups[1], (Value::Int(2), 3..6));
    }

    #[test]
    fn nested_groups() {
        let r = sorted_relation();
        let t = TrieScan::new(&r, vec![0, 1]);
        let (_, first) = t.children(0, t.root()).next().unwrap();
        let inner: Vec<(Value, Range<usize>)> = t.children(1, first).collect();
        assert_eq!(inner.len(), 2);
        assert_eq!(inner[0], (Value::Int(10), 0..2));
        assert_eq!(inner[1], (Value::Int(20), 2..3));
    }

    #[test]
    fn distinct_at_level() {
        let r = sorted_relation();
        let t = TrieScan::new(&r, vec![0, 1]);
        assert_eq!(
            t.distinct_at(0, t.root()),
            vec![Value::Int(1), Value::Int(2)]
        );
    }

    #[test]
    fn visited_values_fewer_than_row_scan() {
        let r = sorted_relation();
        let t = TrieScan::new(&r, vec![0, 1]);
        // 2 groups at level 0 + 4 groups at level 1 = 6 visited values,
        // versus 6 rows * 2 join columns = 12 for a row-based scan.
        assert_eq!(t.visited_values(), 6);
        assert!(t.visited_values() < r.len() * 2);
    }

    #[test]
    fn empty_relation_has_no_groups() {
        let schema = RelationSchema::new("E", vec![AttrId(0)]);
        let mut r = Relation::new(schema);
        r.sort_by_positions(&[0]);
        let t = TrieScan::new(&r, vec![0]);
        assert_eq!(t.children(0, t.root()).count(), 0);
        assert_eq!(t.visited_values(), 0);
    }

    #[test]
    fn single_group_long_run_galloping() {
        let schema = RelationSchema::new("L", vec![AttrId(0), AttrId(1)]);
        let mut rows = Vec::new();
        for i in 0..1000 {
            rows.push(vec![Value::Int(7), Value::Int(i)]);
        }
        let mut r = Relation::from_rows(schema, rows).unwrap();
        r.sort_by_positions(&[0]);
        let t = TrieScan::new(&r, vec![0]);
        let groups: Vec<(Value, Range<usize>)> = t.children(0, t.root()).collect();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1, 0..1000);
    }

    #[test]
    fn depth_and_order_accessors() {
        let r = sorted_relation();
        let t = TrieScan::new(&r, vec![0, 1]);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.order(), &[0, 1]);
        assert_eq!(t.relation().len(), 6);
    }
}
