//! The database catalog: schema, relations, dictionaries, and statistics.
//!
//! The catalog is what the LMFAO layers consume: the join-tree layer needs
//! the schema and cardinality constraints (relation sizes and attribute
//! domain sizes), the multi-output-optimization layer needs per-relation
//! attribute domain sizes to pick attribute orders, and the execution layer
//! needs the (sorted) relations themselves.

use crate::dictionary::DictionarySet;
use crate::error::{DataError, Result};
use crate::hash::FxHashMap;
use crate::relation::Relation;
use crate::schema::{AttrId, DatabaseSchema};
use crate::value::AttrType;

/// Cardinality statistics used by the optimizer layers.
#[derive(Debug, Clone, Default)]
pub struct Statistics {
    /// Number of tuples per relation (by relation name).
    pub relation_sizes: FxHashMap<String, usize>,
    /// Number of distinct values per (relation, attribute).
    pub domain_sizes: FxHashMap<(String, AttrId), usize>,
}

impl Statistics {
    /// Distinct-value count of `attr` in `relation`, if known.
    pub fn domain_size(&self, relation: &str, attr: AttrId) -> Option<usize> {
        self.domain_sizes
            .get(&(relation.to_string(), attr))
            .copied()
    }

    /// Size of `relation`, if known.
    pub fn relation_size(&self, relation: &str) -> Option<usize> {
        self.relation_sizes.get(relation).copied()
    }
}

/// An in-memory database: schema, one [`Relation`] per schema relation,
/// categorical dictionaries and cardinality statistics.
#[derive(Debug, Clone)]
pub struct Database {
    schema: DatabaseSchema,
    relations: Vec<Relation>,
    dictionaries: DictionarySet,
    statistics: Statistics,
}

impl Database {
    /// Creates a database from a schema and relations. The relations must be
    /// given in the same order as the schema's relation list.
    pub fn new(schema: DatabaseSchema, relations: Vec<Relation>) -> Result<Self> {
        if schema.num_relations() != relations.len() {
            return Err(DataError::UnknownRelation(format!(
                "expected {} relations, got {}",
                schema.num_relations(),
                relations.len()
            )));
        }
        let mut db = Database {
            schema,
            relations,
            dictionaries: DictionarySet::new(),
            statistics: Statistics::default(),
        };
        db.recompute_statistics();
        Ok(db)
    }

    /// Creates a database with dictionaries (for databases with categorical
    /// attributes loaded from strings). The dictionaries are linked into the
    /// relations' dictionary-encoded columns so that each column can decode
    /// its own codes (see [`crate::column::Column::decode`]).
    pub fn with_dictionaries(
        schema: DatabaseSchema,
        relations: Vec<Relation>,
        dictionaries: DictionarySet,
    ) -> Result<Self> {
        let mut db = Database::new(schema, relations)?;
        db.dictionaries = dictionaries;
        db.link_dictionaries();
        Ok(db)
    }

    /// Attaches a shared handle of each attribute's dictionary to the
    /// dictionary-encoded columns storing that attribute. Call again after
    /// mutating the dictionaries through [`Database::dictionaries_mut`].
    pub fn link_dictionaries(&mut self) {
        for rel in &mut self.relations {
            let attrs = rel.schema().attrs.clone();
            for (pos, attr) in attrs.into_iter().enumerate() {
                if let Some(dict) = self.dictionaries.shared(attr) {
                    rel.column_mut(pos).attach_dictionary(dict);
                }
            }
        }
    }

    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// All relations, in schema order.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Mutable access to all relations (used to sort them by join attributes
    /// before execution).
    pub fn relations_mut(&mut self) -> &mut [Relation] {
        &mut self.relations
    }

    /// Relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        let idx = self.schema.relation_index(name)?;
        Ok(&self.relations[idx])
    }

    /// Mutable relation by name.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut Relation> {
        let idx = self.schema.relation_index(name)?;
        Ok(&mut self.relations[idx])
    }

    /// Relation by index.
    pub fn relation_at(&self, idx: usize) -> &Relation {
        &self.relations[idx]
    }

    /// The categorical dictionaries.
    pub fn dictionaries(&self) -> &DictionarySet {
        &self.dictionaries
    }

    /// Mutable access to the dictionaries.
    pub fn dictionaries_mut(&mut self) -> &mut DictionarySet {
        &mut self.dictionaries
    }

    /// Cardinality statistics.
    pub fn statistics(&self) -> &Statistics {
        &self.statistics
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Total payload size in bytes across all relations.
    pub fn total_size_bytes(&self) -> usize {
        self.relations.iter().map(Relation::size_bytes).sum()
    }

    /// Attributes of the whole database, grouped by type.
    pub fn attributes_of_type(&self, ty: AttrType) -> Vec<AttrId> {
        self.schema
            .attributes()
            .iter()
            .filter(|a| a.attr_type == ty)
            .map(|a| a.id)
            .collect()
    }

    /// Decomposes the database into its parts (schema, relations in schema
    /// order, dictionaries), consuming it without copying any column data.
    /// Statistics are dropped — they are derived state, recomputed by
    /// [`Database::new`] on reassembly.
    pub fn into_parts(self) -> (DatabaseSchema, Vec<Relation>, DictionarySet) {
        (self.schema, self.relations, self.dictionaries)
    }

    /// Recomputes relation sizes and per-relation attribute domain sizes.
    pub fn recompute_statistics(&mut self) {
        let mut stats = Statistics::default();
        for rel in &self.relations {
            stats
                .relation_sizes
                .insert(rel.name().to_string(), rel.len());
            for (pos, &attr) in rel.schema().attrs.iter().enumerate() {
                stats
                    .domain_sizes
                    .insert((rel.name().to_string(), attr), rel.distinct_count(pos));
            }
        }
        self.statistics = stats;
    }

    /// Sorts every relation by the given global attribute order (each relation
    /// uses the attributes it contains, in the given order). LMFAO requires
    /// relations sorted by their join attributes before execution.
    pub fn sort_all(&mut self, attr_order: &[AttrId]) {
        for rel in &mut self.relations {
            rel.sort_by_attrs(attr_order);
        }
    }

    /// Domain size of an attribute in a relation (falls back to a fresh scan
    /// when statistics have not been computed for it).
    pub fn domain_size(&self, relation: &str, attr: AttrId) -> usize {
        if let Some(d) = self.statistics.domain_size(relation, attr) {
            return d;
        }
        if let Ok(rel) = self.relation(relation) {
            if let Some(pos) = rel.position(attr) {
                return rel.distinct_count(pos);
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::Value;

    fn tiny_db() -> Database {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int), ("b", AttrType::Int)]);
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("c", AttrType::Categorical)]);
        let a = schema.attr_id("a").unwrap();
        let b = schema.attr_id("b").unwrap();
        let c = schema.attr_id("c").unwrap();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![a, b]),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(10)],
                vec![Value::Int(3), Value::Int(20)],
            ],
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![b, c]),
            vec![
                vec![Value::Int(10), Value::Cat(0)],
                vec![Value::Int(20), Value::Cat(1)],
            ],
        )
        .unwrap();
        Database::new(schema, vec![r, s]).unwrap()
    }

    #[test]
    fn construction_validates_relation_count() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int)]);
        assert!(Database::new(schema, vec![]).is_err());
    }

    #[test]
    fn statistics_are_computed() {
        let db = tiny_db();
        assert_eq!(db.statistics().relation_size("R"), Some(3));
        assert_eq!(db.statistics().relation_size("S"), Some(2));
        let b = db.schema().attr_id("b").unwrap();
        assert_eq!(db.statistics().domain_size("R", b), Some(2));
        assert_eq!(db.domain_size("R", b), 2);
        assert_eq!(db.domain_size("S", b), 2);
    }

    #[test]
    fn totals() {
        let db = tiny_db();
        assert_eq!(db.total_tuples(), 5);
        assert!(db.total_size_bytes() > 0);
    }

    #[test]
    fn relation_lookup() {
        let db = tiny_db();
        assert_eq!(db.relation("R").unwrap().len(), 3);
        assert!(db.relation("T").is_err());
        assert_eq!(db.relation_at(1).name(), "S");
    }

    #[test]
    fn attributes_of_type() {
        let db = tiny_db();
        let cats = db.attributes_of_type(AttrType::Categorical);
        assert_eq!(cats.len(), 1);
        assert_eq!(db.schema().attr_name(cats[0]), "c");
        assert_eq!(db.attributes_of_type(AttrType::Int).len(), 2);
    }

    #[test]
    fn sort_all_sorts_every_relation() {
        let mut db = tiny_db();
        let b = db.schema().attr_id("b").unwrap();
        let a = db.schema().attr_id("a").unwrap();
        db.sort_all(&[b, a]);
        let r = db.relation("R").unwrap();
        assert!(r.is_sorted_by(&[1, 0]));
        let s = db.relation("S").unwrap();
        assert!(s.is_sorted_by(&[0]));
    }

    #[test]
    fn with_dictionaries_links_dict_columns() {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("S", &[("b", AttrType::Int), ("c", AttrType::Categorical)]);
        let b = schema.attr_id("b").unwrap();
        let c = schema.attr_id("c").unwrap();
        let mut dicts = crate::dictionary::DictionarySet::new();
        let lima = dicts.encode(c, "Lima");
        let quito = dicts.encode(c, "Quito");
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![b, c]),
            vec![
                vec![Value::Int(1), Value::Cat(quito)],
                vec![Value::Int(2), Value::Cat(lima)],
            ],
        )
        .unwrap();
        let db = Database::with_dictionaries(schema, vec![s], dicts).unwrap();
        let col = db.relation("S").unwrap().column(1);
        assert_eq!(col.decode(0), Some("Quito"));
        assert_eq!(col.decode(1), Some("Lima"));
        assert!(db.relation("S").unwrap().column(0).dictionary().is_none());
    }

    #[test]
    fn unknown_domain_is_zero() {
        let db = tiny_db();
        let c = db.schema().attr_id("c").unwrap();
        assert_eq!(db.domain_size("R", c), 0);
    }
}
