//! Multi-relation transactions: atomic sets of [`TableDelta`]s.
//!
//! A [`Transaction`] bundles signed deltas against *several* base relations
//! into one unit of change. The maintenance layer in `lmfao-core` applies a
//! transaction with a single DAG walk and publishes exactly one generation —
//! readers either see all of the transaction's effects or none of them.
//!
//! A transaction is an **unordered changeset against the pre-state**: every
//! delete targets a tuple of the database as it stood before the transaction,
//! and every insert adds a tuple on top. The same row appearing with both an
//! insert and a delete is therefore ambiguous (net no-op? replace?) and is
//! reported as a conflict by [`Transaction::conflict`] rather than resolved
//! silently. *Ordered* streams of changes resolve such pairs by position —
//! that is [`Transaction::coalesce`], which cancels matching insert/delete
//! pairs the way applying the ops one after another would, and what the
//! `DeltaBuffer` in `lmfao-core` does for buffered write streams.

use crate::delta::TableDelta;
use crate::error::Result;
use crate::hash::FxHashMap;
use crate::value::Value;

/// An atomic set of signed deltas over one or more base relations.
///
/// Build one with [`Transaction::new`] + [`Transaction::push`], or convert a
/// single [`TableDelta`] via `From`. Deltas pushed for the same relation are
/// merged into one per-relation delta, preserving push order.
#[derive(Debug, Clone, Default)]
pub struct Transaction {
    /// One merged delta per touched relation, in first-touch order.
    deltas: Vec<TableDelta>,
}

impl Transaction {
    /// An empty transaction (committing it is a typed error, not a no-op).
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Adds a delta to the transaction, merging it into the existing delta
    /// for the same relation if there is one. Fails only if two deltas claim
    /// the same relation name with different arities.
    pub fn push(&mut self, delta: TableDelta) -> Result<()> {
        match self
            .deltas
            .iter_mut()
            .find(|d| d.relation() == delta.relation())
        {
            Some(existing) => append_delta(existing, &delta),
            None => {
                self.deltas.push(delta);
                Ok(())
            }
        }
    }

    /// The per-relation merged deltas, in first-touch order.
    pub fn deltas(&self) -> &[TableDelta] {
        &self.deltas
    }

    /// The merged delta against one relation, if the transaction touches it.
    pub fn delta_for(&self, relation: &str) -> Option<&TableDelta> {
        self.deltas.iter().find(|d| d.relation() == relation)
    }

    /// Names of the relations the transaction touches, in first-touch order.
    pub fn relations(&self) -> impl Iterator<Item = &str> {
        self.deltas.iter().map(|d| d.relation())
    }

    /// Number of distinct relations touched.
    pub fn num_relations(&self) -> usize {
        self.deltas.len()
    }

    /// Total number of recorded changes (inserts plus deletes, all relations).
    pub fn len(&self) -> usize {
        self.deltas.iter().map(|d| d.len()).sum()
    }

    /// True if the transaction records no change at all.
    pub fn is_empty(&self) -> bool {
        self.deltas.iter().all(|d| d.is_empty())
    }

    /// The first row recorded with **both** an insert and a delete within one
    /// relation, if any: `(relation name, debug-printed row)`. An unordered
    /// changeset cannot say which op wins, so the maintenance layer refuses
    /// to commit a conflicted transaction; resolve by stream order first with
    /// [`Transaction::coalesce`].
    pub fn conflict(&self) -> Option<(String, String)> {
        for delta in &self.deltas {
            let arity = delta.rows().schema().arity();
            let mut seen: FxHashMap<Vec<Value>, i8> = FxHashMap::default();
            for (i, &sign) in delta.signs().iter().enumerate() {
                let row: Vec<Value> = (0..arity).map(|c| delta.rows().value(i, c)).collect();
                match seen.get(&row) {
                    Some(&prev) if prev != sign => {
                        return Some((delta.relation().to_string(), format!("{row:?}")));
                    }
                    Some(_) => {}
                    None => {
                        seen.insert(row, sign);
                    }
                }
            }
        }
        None
    }

    /// Resolves the transaction as an ordered stream: matching insert/delete
    /// pairs of the same row within one relation cancel (multiset-wise: `m`
    /// inserts and `n` deletes of a row net to `|m - n|` ops of the majority
    /// sign), and relations whose deltas fully cancel are dropped. The result
    /// is conflict-free by construction.
    pub fn coalesce(mut self) -> Self {
        self.deltas = self
            .deltas
            .iter()
            .filter_map(|delta| {
                let arity = delta.rows().schema().arity();
                // Net signed multiplicity per distinct row.
                let mut net: FxHashMap<Vec<Value>, i64> = FxHashMap::default();
                for (i, &sign) in delta.signs().iter().enumerate() {
                    let row: Vec<Value> = (0..arity).map(|c| delta.rows().value(i, c)).collect();
                    *net.entry(row).or_insert(0) += i64::from(sign);
                }
                // Re-emit ops in original order until each row's net is spent,
                // so coalescing is deterministic and order-preserving.
                let mut out = TableDelta::new(delta.rows().schema().clone());
                for (i, &sign) in delta.signs().iter().enumerate() {
                    let row: Vec<Value> = (0..arity).map(|c| delta.rows().value(i, c)).collect();
                    let remaining = net.get_mut(&row).expect("row was counted above");
                    if *remaining > 0 && sign > 0 {
                        *remaining -= 1;
                        out.insert(&row).expect("row round-trips its own schema");
                    } else if *remaining < 0 && sign < 0 {
                        *remaining += 1;
                        out.delete(&row).expect("row round-trips its own schema");
                    }
                }
                (!out.is_empty()).then_some(out)
            })
            .collect();
        self
    }
}

/// Appends every op of `src` onto `dst` (same relation, row by row).
fn append_delta(dst: &mut TableDelta, src: &TableDelta) -> Result<()> {
    let arity = src.rows().schema().arity();
    for (i, &sign) in src.signs().iter().enumerate() {
        let row: Vec<Value> = (0..arity).map(|c| src.rows().value(i, c)).collect();
        if sign > 0 {
            dst.insert(&row)?;
        } else {
            dst.delete(&row)?;
        }
    }
    Ok(())
}

impl From<TableDelta> for Transaction {
    fn from(delta: TableDelta) -> Self {
        Transaction {
            deltas: vec![delta],
        }
    }
}

impl From<&TableDelta> for Transaction {
    fn from(delta: &TableDelta) -> Self {
        Transaction {
            deltas: vec![delta.clone()],
        }
    }
}

impl FromIterator<TableDelta> for Transaction {
    /// Collects deltas into one transaction; panics only on arity mismatch
    /// between two deltas claiming the same relation (use
    /// [`Transaction::push`] for fallible assembly).
    fn from_iter<I: IntoIterator<Item = TableDelta>>(iter: I) -> Self {
        let mut txn = Transaction::new();
        for delta in iter {
            txn.push(delta)
                .expect("deltas for one relation must share its schema");
        }
        txn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelationSchema};

    fn schema(name: &str) -> RelationSchema {
        RelationSchema::new(name, vec![AttrId(0), AttrId(1)])
    }

    fn row(a: i64, b: f64) -> Vec<Value> {
        vec![Value::Int(a), Value::Double(b)]
    }

    #[test]
    fn push_merges_same_relation_deltas() {
        let mut txn = Transaction::new();
        let mut d1 = TableDelta::new(schema("R"));
        d1.insert(&row(1, 0.5)).unwrap();
        let mut d2 = TableDelta::new(schema("R"));
        d2.delete(&row(2, 1.5)).unwrap();
        let mut d3 = TableDelta::new(schema("S"));
        d3.insert(&row(3, 2.5)).unwrap();
        txn.push(d1).unwrap();
        txn.push(d2).unwrap();
        txn.push(d3).unwrap();
        assert_eq!(txn.num_relations(), 2);
        assert_eq!(txn.len(), 3);
        assert_eq!(txn.relations().collect::<Vec<_>>(), vec!["R", "S"]);
        let r = txn.delta_for("R").unwrap();
        assert_eq!(r.num_inserts(), 1);
        assert_eq!(r.num_deletes(), 1);
        assert!(txn.delta_for("T").is_none());
    }

    #[test]
    fn conflict_flags_same_row_with_both_signs() {
        let mut txn = Transaction::new();
        let mut d = TableDelta::new(schema("R"));
        d.insert(&row(1, 0.5)).unwrap();
        d.delete(&row(1, 0.5)).unwrap();
        txn.push(d).unwrap();
        let (relation, printed) = txn.conflict().unwrap();
        assert_eq!(relation, "R");
        assert!(printed.contains("Int(1)"));
        // Two inserts of one row, or disjoint rows, are not conflicts.
        let mut clean = Transaction::new();
        let mut d = TableDelta::new(schema("R"));
        d.insert(&row(1, 0.5)).unwrap();
        d.insert(&row(1, 0.5)).unwrap();
        d.delete(&row(2, 1.5)).unwrap();
        clean.push(d).unwrap();
        assert!(clean.conflict().is_none());
    }

    #[test]
    fn coalesce_cancels_multiset_pairs_in_order() {
        let mut txn = Transaction::new();
        let mut d = TableDelta::new(schema("R"));
        d.insert(&row(1, 0.5)).unwrap(); // cancels with the delete below
        d.insert(&row(1, 0.5)).unwrap(); // survives (net +1)
        d.insert(&row(7, 7.0)).unwrap(); // untouched
        d.delete(&row(1, 0.5)).unwrap();
        txn.push(d).unwrap();
        let coalesced = txn.coalesce();
        assert!(coalesced.conflict().is_none());
        let r = coalesced.delta_for("R").unwrap();
        assert_eq!(r.num_inserts(), 2);
        assert_eq!(r.num_deletes(), 0);
        assert_eq!(coalesced.len(), 2);
    }

    #[test]
    fn fully_cancelling_transaction_coalesces_to_empty() {
        let mut txn = Transaction::new();
        let mut d = TableDelta::new(schema("R"));
        for _ in 0..5 {
            d.insert(&row(3, 3.0)).unwrap();
            d.delete(&row(3, 3.0)).unwrap();
        }
        txn.push(d).unwrap();
        assert!(!txn.is_empty());
        let coalesced = txn.coalesce();
        assert!(coalesced.is_empty());
        assert_eq!(coalesced.num_relations(), 0);
    }

    #[test]
    fn from_delta_and_from_iter_build_transactions() {
        let mut d = TableDelta::new(schema("R"));
        d.insert(&row(1, 1.0)).unwrap();
        let txn: Transaction = (&d).into();
        assert_eq!(txn.len(), 1);
        let txn: Transaction = d.clone().into();
        assert_eq!(txn.num_relations(), 1);

        let mut s = TableDelta::new(schema("S"));
        s.delete(&row(2, 2.0)).unwrap();
        let txn: Transaction = [d, s].into_iter().collect();
        assert_eq!(txn.num_relations(), 2);
        assert_eq!(txn.len(), 2);
    }

    #[test]
    fn empty_transaction_reports_empty() {
        let txn = Transaction::new();
        assert!(txn.is_empty());
        assert_eq!(txn.len(), 0);
        assert!(txn.conflict().is_none());
        // A transaction holding only an empty delta is still empty.
        let txn: Transaction = TableDelta::new(schema("R")).into();
        assert!(txn.is_empty());
    }
}
