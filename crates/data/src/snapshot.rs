//! Cheap, immutable database snapshots with copy-on-write updates.
//!
//! The serving layer (`lmfao-core`'s `snapshot` module) publishes one
//! immutable view of the world per *generation*; readers pin a generation and
//! keep answering from it while the writer prepares the next one. That design
//! needs the base data to be snapshottable without copying: a
//! [`DatabaseSnapshot`] holds every [`Relation`] behind an [`Arc`], so
//! cloning a snapshot is one reference-count bump per relation, and applying
//! a [`TableDelta`] copies **only** the targeted relation — and only when the
//! previous generation still pins it ([`Arc::make_mut`]). Columns inside a
//! relation keep sharing their dictionary handles, so even the copied
//! relation shares its categorical vocabulary with every older generation.

use std::sync::Arc;

use crate::catalog::Database;
use crate::delta::TableDelta;
use crate::dictionary::DictionarySet;
use crate::error::Result;
use crate::relation::Relation;
use crate::schema::DatabaseSchema;

/// An immutable, cheaply cloneable picture of a [`Database`]'s relations.
///
/// `Clone` bumps one reference count per relation. Mutation happens only
/// through [`DatabaseSnapshot::apply`], which copies the targeted relation if
/// (and only if) another snapshot still shares it — copy-on-write at relation
/// granularity. Everything else (schema, dictionaries) is shared structurally.
#[derive(Debug, Clone)]
pub struct DatabaseSnapshot {
    schema: DatabaseSchema,
    relations: Vec<Arc<Relation>>,
    dictionaries: DictionarySet,
}

impl From<Database> for DatabaseSnapshot {
    /// Wraps a database's relations without copying them (the database is
    /// consumed; its relations move into the shared slots).
    fn from(db: Database) -> Self {
        let (schema, relations, dictionaries) = db.into_parts();
        DatabaseSnapshot {
            schema,
            relations: relations.into_iter().map(Arc::new).collect(),
            dictionaries,
        }
    }
}

impl DatabaseSnapshot {
    /// The database schema.
    pub fn schema(&self) -> &DatabaseSchema {
        &self.schema
    }

    /// Relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation> {
        let idx = self.schema.relation_index(name)?;
        Ok(&self.relations[idx])
    }

    /// All relations, in schema order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter().map(|r| &**r)
    }

    /// The categorical dictionaries.
    pub fn dictionaries(&self) -> &DictionarySet {
        &self.dictionaries
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.iter().map(|r| r.len()).sum()
    }

    /// Applies a signed delta to its target relation, copy-on-write: the
    /// relation's storage is duplicated only if another snapshot still shares
    /// it. Same merge semantics (and the same atomic unmatched-delete
    /// failure) as [`Relation::apply`].
    pub fn apply(&mut self, delta: &TableDelta) -> Result<()> {
        let idx = self.schema.relation_index(delta.relation())?;
        // Resolve deletes *before* make_mut so a failing delta never forces
        // a copy (Relation::apply is itself atomic, but by then we may have
        // already paid for the clone).
        Arc::make_mut(&mut self.relations[idx]).apply(delta)
    }

    /// Rebuilds a standalone [`Database`] from this snapshot (deep-copies
    /// every relation, recomputes statistics, re-links dictionaries). This is
    /// what the recompute referee uses to audit a pinned generation.
    pub fn materialize(&self) -> Database {
        let relations: Vec<Relation> = self.relations.iter().map(|r| (**r).clone()).collect();
        Database::with_dictionaries(self.schema.clone(), relations, self.dictionaries.clone())
            .expect("snapshot relations match the snapshot schema")
    }

    /// True if `self` and `other` share the storage of relation `name` —
    /// i.e. neither side copied it since they diverged. Test/diagnostic hook
    /// for the copy-on-write discipline.
    pub fn shares_relation_with(&self, other: &DatabaseSnapshot, name: &str) -> bool {
        match (
            self.schema.relation_index(name),
            other.schema.relation_index(name),
        ) {
            (Ok(a), Ok(b)) => Arc::ptr_eq(&self.relations[a], &other.relations[b]),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::{AttrType, Value};

    fn tiny_db() -> Database {
        let mut schema = DatabaseSchema::new();
        schema.add_relation_with_attrs("R", &[("a", AttrType::Int), ("x", AttrType::Double)]);
        schema.add_relation_with_attrs("S", &[("a", AttrType::Int), ("y", AttrType::Double)]);
        let a = schema.attr_id("a").unwrap();
        let x = schema.attr_id("x").unwrap();
        let y = schema.attr_id("y").unwrap();
        let r = Relation::from_rows(
            RelationSchema::new("R", vec![a, x]),
            (0..5)
                .map(|i| vec![Value::Int(i), Value::Double(i as f64)])
                .collect(),
        )
        .unwrap();
        let s = Relation::from_rows(
            RelationSchema::new("S", vec![a, y]),
            (0..3)
                .map(|i| vec![Value::Int(i), Value::Double((10 * i) as f64)])
                .collect(),
        )
        .unwrap();
        Database::new(schema, vec![r, s]).unwrap()
    }

    #[test]
    fn snapshot_clone_shares_every_relation() {
        let snap: DatabaseSnapshot = tiny_db().into();
        let other = snap.clone();
        assert!(snap.shares_relation_with(&other, "R"));
        assert!(snap.shares_relation_with(&other, "S"));
        assert_eq!(snap.total_tuples(), 8);
    }

    #[test]
    fn apply_copies_only_the_changed_relation() {
        let snap: DatabaseSnapshot = tiny_db().into();
        let mut next = snap.clone();
        let mut delta = TableDelta::for_relation(snap.relation("R").unwrap());
        delta.insert(&[Value::Int(7), Value::Double(7.0)]).unwrap();
        next.apply(&delta).unwrap();
        assert!(!next.shares_relation_with(&snap, "R"), "R was copied");
        assert!(next.shares_relation_with(&snap, "S"), "S stays shared");
        assert_eq!(snap.relation("R").unwrap().len(), 5, "old pin unchanged");
        assert_eq!(next.relation("R").unwrap().len(), 6);
    }

    #[test]
    fn apply_without_other_pins_mutates_in_place() {
        let mut snap: DatabaseSnapshot = tiny_db().into();
        let mut delta = TableDelta::for_relation(snap.relation("R").unwrap());
        delta.insert(&[Value::Int(7), Value::Double(7.0)]).unwrap();
        // Sole owner: make_mut must not copy. We can't observe the pointer
        // without a second handle, but the apply must still succeed and the
        // data must land.
        snap.apply(&delta).unwrap();
        assert_eq!(snap.relation("R").unwrap().len(), 6);
    }

    #[test]
    fn failed_apply_leaves_both_snapshots_intact() {
        let snap: DatabaseSnapshot = tiny_db().into();
        let mut next = snap.clone();
        let mut delta = TableDelta::for_relation(snap.relation("R").unwrap());
        delta
            .delete(&[Value::Int(99), Value::Double(99.0)])
            .unwrap();
        assert!(next.apply(&delta).is_err());
        assert_eq!(next.relation("R").unwrap().len(), 5);
        assert_eq!(snap.relation("R").unwrap().len(), 5);
    }

    #[test]
    fn materialize_round_trips() {
        let db = tiny_db();
        let snap: DatabaseSnapshot = db.clone().into();
        let back = snap.materialize();
        assert_eq!(back.total_tuples(), db.total_tuples());
        assert_eq!(back.statistics().relation_size("R"), Some(5));
        assert!(snap.relation("T").is_err());
        assert_eq!(snap.relations().count(), 2);
    }
}
