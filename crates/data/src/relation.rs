//! In-memory relations over columnar storage.
//!
//! A [`Relation`] is a set of typed [`Column`]s plus its [`RelationSchema`]:
//! every attribute is stored contiguously in its native representation
//! (`i64`, `f64`, or `u32` dictionary codes for categoricals, see
//! [`crate::column`]). LMFAO keeps relations sorted by their join attributes
//! so that a single scan can view them as a trie: grouped by the first join
//! attribute, then by the next within each group, and so on (see
//! [`crate::trie`]). This mirrors the factorized-database style scans the
//! paper relies on for the multi-output plans.
//!
//! The columnar layout exists for the hot loops: trie grouping compares one
//! attribute across consecutive rows ([`Column::eq_rows`], a native compare
//! with no enum tag), local-expression sums read typed slices directly, and
//! sorting permutes each column once ([`Column::permute`]) instead of moving
//! whole rows. Row-oriented consumers (tests, CSV import/export, datagen)
//! keep working through the [`RowView`] adapter returned by
//! [`Relation::row`] / [`Relation::rows`], which materializes [`Value`]s on
//! demand; round-tripping `from_rows -> rows()` is exact, bit patterns of
//! doubles included.

use crate::column::Column;
use crate::delta::TableDelta;
use crate::error::{DataError, Result};
use crate::hash::{fx_hash_set, FxHashMap};
use crate::schema::{AttrId, RelationSchema};
use crate::value::Value;

/// An in-memory relation: schema plus one typed column per attribute.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    columns: Vec<Column>,
    num_rows: usize,
    arity: usize,
    /// Attribute positions this relation is currently sorted by (lexicographic
    /// prefix order); empty if unsorted.
    sorted_by: Vec<usize>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            columns: (0..arity).map(|_| Column::new()).collect(),
            num_rows: 0,
            arity,
            sorted_by: Vec::new(),
        }
    }

    /// Creates a relation from rows, validating arity.
    pub fn from_rows(schema: RelationSchema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        rel.reserve(rows.len());
        for row in rows {
            rel.push_row(&row)?;
        }
        Ok(rel)
    }

    /// Creates a relation directly from columns (all columns must have the
    /// same length, one per schema attribute).
    pub fn from_columns(schema: RelationSchema, columns: Vec<Column>) -> Result<Self> {
        let arity = schema.arity();
        if columns.len() != arity {
            return Err(DataError::ArityMismatch {
                relation: schema.name.clone(),
                expected: arity,
                got: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(DataError::ArityMismatch {
                relation: schema.name.clone(),
                expected: num_rows,
                got: columns.iter().map(Column::len).max().unwrap_or(0),
            });
        }
        Ok(Relation {
            schema,
            columns,
            num_rows,
            arity,
            sorted_by: Vec::new(),
        })
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The typed columns, in schema attribute order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The typed column at position `col`.
    #[inline]
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Mutable access to the column at position `col` (used by the catalog to
    /// attach dictionaries; values must not be added or removed through this).
    pub(crate) fn column_mut(&mut self, col: usize) -> &mut Column {
        &mut self.columns[col]
    }

    /// Appends a tuple, validating its arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.arity,
                got: row.len(),
            });
        }
        self.push_row_unchecked(row);
        Ok(())
    }

    /// Appends a tuple without arity validation (panics in debug builds on
    /// mismatch). Used by bulk loaders on the hot path.
    pub fn push_row_unchecked(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.num_rows += 1;
        self.sorted_by.clear();
    }

    /// Reserves capacity for `additional` further tuples.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// A lazily materializing view of the `i`-th tuple.
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_> {
        debug_assert!(i < self.num_rows);
        RowView { rel: self, row: i }
    }

    /// A single value, materialized from its typed column.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// The numeric interpretation of a single value, read straight from the
    /// typed column (no [`Value`] constructed; matches [`Value::as_f64`]).
    #[inline]
    pub fn f64(&self, row: usize, col: usize) -> f64 {
        self.columns[col].f64_at(row)
    }

    /// Iterates over all tuples as [`RowView`]s.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> + '_ {
        (0..self.num_rows).map(move |i| RowView { rel: self, row: i })
    }

    /// Position of an attribute within this relation.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.schema.position(attr)
    }

    /// Sorts the relation lexicographically by the given column positions
    /// (remaining columns keep their relative order only within equal keys,
    /// which is all the trie scan needs). The sort computes a row permutation
    /// by comparing the typed key columns, then rebuilds every column with one
    /// contiguous gather ([`Column::permute`]) — no row-at-a-time moves.
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        if self.is_empty() || positions.is_empty() {
            self.sorted_by = positions.to_vec();
            return;
        }
        let keys: Vec<&Column> = positions.iter().map(|&p| &self.columns[p]).collect();
        let mut perm: Vec<u32> = (0..self.num_rows as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for key in &keys {
                match key.cmp_rows(a as usize, b as usize) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        let already_sorted = perm.windows(2).all(|w| w[0] < w[1]);
        if !already_sorted {
            self.columns = self.columns.iter().map(|c| c.permute(&perm)).collect();
        }
        self.sorted_by = positions.to_vec();
    }

    /// Sorts the relation by the given attributes (those present in the
    /// relation are used, in the given order).
    pub fn sort_by_attrs(&mut self, attrs: &[AttrId]) {
        let positions: Vec<usize> = attrs.iter().filter_map(|&a| self.position(a)).collect();
        self.sort_by_positions(&positions);
    }

    /// Column positions the relation is currently sorted by.
    pub fn sorted_by(&self) -> &[usize] {
        &self.sorted_by
    }

    /// Whether the relation is sorted by a prefix starting with `positions`.
    pub fn is_sorted_by(&self, positions: &[usize]) -> bool {
        self.sorted_by.len() >= positions.len() && self.sorted_by[..positions.len()] == *positions
    }

    /// Number of distinct values in a column, counted on the native
    /// representation (no [`Value`] hashing for typed columns).
    pub fn distinct_count(&self, col: usize) -> usize {
        match &self.columns[col] {
            Column::Int(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
            Column::Float(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x.to_bits());
                });
                set.len()
            }
            Column::Dict { codes, .. } => {
                let mut set = fx_hash_set();
                codes.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
            Column::Mixed(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
        }
    }

    /// Distinct values of a column, in first-appearance order.
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let mut seen = fx_hash_set();
        let mut out = Vec::new();
        let column = &self.columns[col];
        for i in 0..self.num_rows {
            let v = column.value(i);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Approximate size of the relation payload in bytes (native column
    /// representations, i.e. what the scan actually touches).
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum()
    }

    /// Minimum and maximum value of a column, if the relation is non-empty.
    pub fn min_max(&self, col: usize) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        match &self.columns[col] {
            Column::Int(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.cmp(b));
                Some((Value::Int(mn), Value::Int(mx)))
            }
            Column::Float(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.total_cmp(b));
                Some((Value::Double(mn), Value::Double(mx)))
            }
            Column::Dict { codes, .. } => {
                let (mn, mx) = min_max_by(codes, |a, b| a.cmp(b));
                Some((Value::Cat(mn), Value::Cat(mx)))
            }
            Column::Mixed(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.cmp(b));
                Some((mn, mx))
            }
        }
    }

    /// Consumes the relation, returning its schema and columns.
    pub fn into_parts(self) -> (RelationSchema, Vec<Column>) {
        (self.schema, self.columns)
    }

    /// Applies a signed [`TableDelta`]: deletes remove one occurrence of each
    /// tombstoned tuple (exact full-row match), inserts append their tuples.
    /// The relation's sort order is preserved without a full re-sort: deletes
    /// compact the columns in place (keeping row order), and inserts are
    /// sorted among themselves and *merged* into the sorted body — the
    /// sorted-merge that keeps trie scans valid after every update.
    ///
    /// Deletes use **strict multiset semantics**: each tombstone consumes
    /// exactly one occurrence of its tuple, and a tombstone left over after
    /// consuming the delta's own inserts and the relation's rows — a delete
    /// of a tuple that is not present — is an error, never a saturating
    /// no-op. Silently dropping such a tombstone would desynchronize the
    /// relation from any incrementally maintained view state built on it
    /// (the view would subtract a contribution the base data never held).
    ///
    /// The call is atomic: an unmatched delete (or a delta targeting another
    /// relation) returns [`DataError::DeltaMismatch`] before any mutation.
    pub fn apply(&mut self, delta: &TableDelta) -> Result<()> {
        if delta.relation() != self.name() {
            return Err(DataError::DeltaMismatch {
                relation: self.name().to_string(),
                detail: format!("delta targets relation `{}`", delta.relation()),
            });
        }
        if delta.rows().arity() != self.arity {
            return Err(DataError::DeltaMismatch {
                relation: self.name().to_string(),
                detail: format!(
                    "delta arity {} does not match relation arity {}",
                    delta.rows().arity(),
                    self.arity
                ),
            });
        }
        let (inserts, deletes) = delta.partition();

        // Cancel insert/delete pairs of the exact same tuple within the
        // delta: a delete may target a tuple the same delta inserts (update
        // streams produce these), and the net effect of such a pair is zero.
        // `pending` holds the deletes still to resolve against the relation.
        let mut pending: Vec<(Vec<Value>, usize)> = Vec::new();
        for row in deletes.rows() {
            let row = row.to_vec();
            match pending.iter_mut().find(|(p, _)| *p == row) {
                Some((_, c)) => *c += 1,
                None => pending.push((row, 1)),
            }
        }
        let insert_rows: Vec<Vec<Value>> = inserts
            .rows()
            .map(|r| r.to_vec())
            .filter(|row| {
                if let Some((_, c)) = pending.iter_mut().find(|(p, c)| *c > 0 && p == row) {
                    *c -= 1;
                    return false; // annihilated by a delete of the same tuple
                }
                true
            })
            .collect();
        pending.retain(|(_, c)| *c > 0);

        // Resolve the remaining deletes (multiset semantics: each tombstone
        // consumes one matching row), without mutating until all matched.
        // The pending set is tiny for maintenance deltas, so rows are
        // compared in place (RowView equality short-circuits on the first
        // differing column) — no per-row materialization or hashing.
        let keep: Option<Vec<u32>> = if pending.is_empty() {
            None
        } else {
            let mut remaining: usize = pending.iter().map(|(_, c)| c).sum();
            // Wide delete batches fall back to a hash probe per row.
            let mut hashed: Option<FxHashMap<Vec<Value>, usize>> = if pending.len() > 16 {
                Some(pending.iter().cloned().collect())
            } else {
                None
            };
            let mut keep = Vec::with_capacity(self.num_rows.saturating_sub(remaining));
            for i in 0..self.num_rows {
                if remaining > 0 {
                    let row = self.row(i);
                    let hit =
                        match &mut hashed {
                            Some(map) => map.get_mut(&row.to_vec()).filter(|c| **c > 0).map(|c| {
                                *c -= 1;
                            }),
                            None => pending.iter_mut().find(|(p, c)| *c > 0 && row == *p).map(
                                |(_, c)| {
                                    *c -= 1;
                                },
                            ),
                        };
                    if hit.is_some() {
                        remaining -= 1;
                        continue;
                    }
                }
                keep.push(i as u32);
            }
            if remaining > 0 {
                return Err(DataError::DeltaMismatch {
                    relation: self.name().to_string(),
                    detail: format!("{remaining} deleted tuple(s) not present in the relation"),
                });
            }
            Some(keep)
        };
        if let Some(keep) = keep {
            // `keep` is ascending, so compaction preserves the sort order.
            self.columns = self.columns.iter().map(|c| c.permute(&keep)).collect();
            self.num_rows = keep.len();
        }

        if !insert_rows.is_empty() {
            let sorted = std::mem::take(&mut self.sorted_by);
            let body_len = self.num_rows;
            for row in &insert_rows {
                self.push_row_unchecked(row);
            }
            if sorted.is_empty() {
                // Unsorted relation: a plain append is enough.
            } else {
                self.merge_sorted_suffix(&sorted, body_len);
                self.sorted_by = sorted;
            }
        }
        Ok(())
    }

    /// Restores the lexicographic sort by `positions` after rows
    /// `[split, len)` were appended to a body sorted by `positions`: sorts the
    /// suffix among itself, then merges the two sorted runs with one gather
    /// per column (`O(n + k·log k)` for `k` appended rows, not a full
    /// re-sort). Within equal keys, body rows precede appended rows and each
    /// run keeps its internal order.
    fn merge_sorted_suffix(&mut self, positions: &[usize], split: usize) {
        let keys: Vec<&Column> = positions.iter().map(|&p| &self.columns[p]).collect();
        let cmp = |a: usize, b: usize| {
            for key in &keys {
                match key.cmp_rows(a, b) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        };
        let mut suffix: Vec<u32> = (split as u32..self.num_rows as u32).collect();
        suffix.sort_by(|&a, &b| cmp(a as usize, b as usize));
        let mut perm: Vec<u32> = Vec::with_capacity(self.num_rows);
        let (mut i, mut j) = (0u32, 0usize);
        while (i as usize) < split && j < suffix.len() {
            // `<=` keeps body rows first within equal keys (stable merge).
            if cmp(i as usize, suffix[j] as usize) != std::cmp::Ordering::Greater {
                perm.push(i);
                i += 1;
            } else {
                perm.push(suffix[j]);
                j += 1;
            }
        }
        perm.extend(i..split as u32);
        perm.extend_from_slice(&suffix[j..]);
        let identity = perm.windows(2).all(|w| w[0] < w[1]);
        if !identity {
            self.columns = self.columns.iter().map(|c| c.permute(&perm)).collect();
        }
    }
}

fn min_max_by<T: Copy>(values: &[T], cmp: impl Fn(&T, &T) -> std::cmp::Ordering) -> (T, T) {
    let mut mn = values[0];
    let mut mx = values[0];
    for v in &values[1..] {
        if cmp(v, &mn) == std::cmp::Ordering::Less {
            mn = *v;
        }
        if cmp(v, &mx) == std::cmp::Ordering::Greater {
            mx = *v;
        }
    }
    (mn, mx)
}

/// A view of one tuple of a columnar [`Relation`]: values are materialized
/// from their typed columns on access.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    rel: &'a Relation,
    row: usize,
}

impl RowView<'_> {
    /// The value at column position `col`.
    #[inline]
    pub fn value(&self, col: usize) -> Value {
        self.rel.value(self.row, col)
    }

    /// Alias for [`RowView::value`], mirroring slice indexing.
    #[inline]
    pub fn get(&self, col: usize) -> Value {
        self.value(col)
    }

    /// Number of values in the row (the relation arity).
    pub fn len(&self) -> usize {
        self.rel.arity()
    }

    /// True if the relation has arity zero.
    pub fn is_empty(&self) -> bool {
        self.rel.arity() == 0
    }

    /// Iterates over the row's values in column order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |c| self.value(c))
    }

    /// Materializes the row as a vector of values.
    pub fn to_vec(&self) -> Vec<Value> {
        self.iter().collect()
    }
}

impl PartialEq for RowView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for RowView<'_> {}

impl PartialEq<[Value]> for RowView<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == *b)
    }
}

impl PartialEq<Vec<Value>> for RowView<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self == other.as_slice()
    }
}

impl std::fmt::Debug for RowView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelationSchema};

    fn schema3(name: &str) -> RelationSchema {
        RelationSchema::new(name, vec![AttrId(0), AttrId(1), AttrId(2)])
    }

    fn sample() -> Relation {
        let rows = vec![
            vec![Value::Int(2), Value::Int(10), Value::Double(1.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)],
            vec![Value::Int(2), Value::Int(5), Value::Double(3.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(4.0)],
        ];
        Relation::from_rows(schema3("R"), rows).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(1, 1), Value::Int(20));
        assert_eq!(r.row(2).value(2), Value::Double(3.0));
        assert_eq!(r.name(), "R");
    }

    #[test]
    fn columns_are_typed() {
        let r = sample();
        assert_eq!(r.column(0).as_int().unwrap().len(), 4);
        assert_eq!(r.column(2).as_float().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.f64(2, 2), 3.0);
        assert_eq!(r.f64(0, 0), 2.0);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new(schema3("R"));
        let err = r.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = RelationSchema::new("C", vec![AttrId(0), AttrId(1)]);
        let ok = Relation::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1, 2]), Column::Float(vec![0.5, 1.5])],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.value(1, 1), Value::Double(1.5));
        let bad = Relation::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1]), Column::Float(vec![0.5, 1.5])],
        );
        assert!(bad.is_err());
        let wrong_arity = Relation::from_columns(schema, vec![Column::Int(vec![1])]);
        assert!(wrong_arity.is_err());
    }

    #[test]
    fn sorting_by_positions() {
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        let col0: Vec<i64> = r.column(0).as_int().unwrap().to_vec();
        assert_eq!(col0, vec![1, 1, 2, 2]);
        // Within X0 = 2 the rows are ordered by X1 (5 then 10).
        assert_eq!(r.value(2, 1), Value::Int(5));
        assert_eq!(r.value(3, 1), Value::Int(10));
        assert!(r.is_sorted_by(&[0]));
        assert!(r.is_sorted_by(&[0, 1]));
        assert!(!r.is_sorted_by(&[1]));
    }

    #[test]
    fn sorting_permutes_every_column_consistently() {
        let mut r = sample();
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        r.sort_by_positions(&[2]);
        let after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let mut b = before.clone();
        let mut a = after.clone();
        b.sort();
        a.sort();
        assert_eq!(a, b, "sorting is a permutation of whole rows");
        assert_eq!(after[0], before[0], "column 2 was already sorted");
    }

    #[test]
    fn sorting_by_attrs_filters_missing() {
        let mut r = sample();
        // AttrId(7) is not in the relation and must simply be ignored.
        r.sort_by_attrs(&[AttrId(7), AttrId(1)]);
        let col1: Vec<i64> = (0..r.len()).map(|i| r.value(i, 1).as_i64()).collect();
        assert_eq!(col1, vec![5, 10, 20, 20]);
    }

    #[test]
    fn distinct_counts_and_values() {
        let r = sample();
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 3);
        assert_eq!(r.distinct_count(2), 4);
        assert_eq!(
            r.distinct_values(0),
            vec![Value::Int(2), Value::Int(1)],
            "first-appearance order"
        );
    }

    #[test]
    fn min_max() {
        let r = sample();
        assert_eq!(r.min_max(1), Some((Value::Int(5), Value::Int(20))));
        assert_eq!(r.min_max(2), Some((Value::Double(1.0), Value::Double(4.0))));
        let empty = Relation::new(schema3("E"));
        assert_eq!(empty.min_max(0), None);
    }

    #[test]
    fn rows_iteration_matches_len() {
        let r = sample();
        assert_eq!(r.rows().count(), r.len());
        assert_eq!(r.rows().next().unwrap().value(0), Value::Int(2));
    }

    #[test]
    fn row_views_compare_and_materialize() {
        let r = sample();
        assert_eq!(r.row(1), r.row(1));
        assert_ne!(r.row(1), r.row(3));
        assert_eq!(
            r.row(1).to_vec(),
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)]
        );
        assert_eq!(
            r.row(1),
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)]
        );
        assert_eq!(r.row(0).len(), 3);
        assert!(!r.row(0).is_empty());
        assert!(format!("{:?}", r.row(2)).contains("Int(5)"));
    }

    #[test]
    fn size_bytes_uses_native_column_widths() {
        let r = sample();
        // Two i64 columns + one f64 column, 4 rows each.
        assert_eq!(r.size_bytes(), 4 * (8 + 8 + 8));
    }

    #[test]
    fn mutation_invalidates_sortedness() {
        let mut r = sample();
        r.sort_by_positions(&[0]);
        assert!(r.is_sorted_by(&[0]));
        r.push_row(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        assert!(!r.is_sorted_by(&[0]));
    }

    #[test]
    fn apply_inserts_keep_the_sort_order_by_merging() {
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        let mut d = TableDelta::for_relation(&r);
        d.insert(&[Value::Int(1), Value::Int(7), Value::Double(9.0)])
            .unwrap();
        d.insert(&[Value::Int(3), Value::Int(1), Value::Double(8.0)])
            .unwrap();
        d.insert(&[Value::Int(0), Value::Int(0), Value::Double(7.0)])
            .unwrap();
        r.apply(&d).unwrap();
        assert_eq!(r.len(), 7);
        assert!(r.is_sorted_by(&[0, 1]), "sorted-merge must keep trie order");
        let col0: Vec<i64> = r.column(0).as_int().unwrap().to_vec();
        assert_eq!(col0, vec![0, 1, 1, 1, 2, 2, 3]);
        // Within X0 = 1, the new (1, 7) row lands between (1, ...) keys.
        let col1: Vec<i64> = r.column(1).as_int().unwrap().to_vec();
        assert_eq!(&col1[1..4], &[7, 20, 20]);
    }

    #[test]
    fn apply_deletes_remove_one_occurrence_per_tombstone() {
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        // Two rows share the key (1, 20) with different payloads; delete one
        // exact tuple and both duplicates of nothing else.
        let mut d = TableDelta::for_relation(&r);
        d.delete(&[Value::Int(1), Value::Int(20), Value::Double(2.0)])
            .unwrap();
        r.apply(&d).unwrap();
        assert_eq!(r.len(), 3);
        assert!(r.is_sorted_by(&[0, 1]));
        assert!(r
            .rows()
            .all(|row| row.to_vec() != vec![Value::Int(1), Value::Int(20), Value::Double(2.0)]));
        // The other (1, 20) row survives.
        assert!(r
            .rows()
            .any(|row| row.to_vec() == vec![Value::Int(1), Value::Int(20), Value::Double(4.0)]));
    }

    #[test]
    fn apply_rejects_unmatched_deletes_atomically() {
        let mut r = sample();
        r.sort_by_positions(&[0]);
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let mut d = TableDelta::for_relation(&r);
        d.insert(&[Value::Int(9), Value::Int(9), Value::Double(9.0)])
            .unwrap();
        d.delete(&[Value::Int(77), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        let err = r.apply(&d).unwrap_err();
        assert!(matches!(err, DataError::DeltaMismatch { .. }));
        let after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        assert_eq!(before, after, "failed apply must not mutate");
    }

    #[test]
    fn insert_delete_pairs_within_one_delta_cancel() {
        // A batched delta may insert a brand-new tuple and delete that same
        // tuple: the pair must annihilate instead of failing the delete
        // (deletes otherwise resolve against the pre-insert relation).
        let mut r = sample();
        r.sort_by_positions(&[0]);
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let new_row = vec![Value::Int(9), Value::Int(9), Value::Double(9.0)];
        let mut d = TableDelta::for_relation(&r);
        d.insert(&new_row).unwrap();
        d.delete(&new_row).unwrap();
        d.insert(&[Value::Int(8), Value::Int(8), Value::Double(8.0)])
            .unwrap();
        r.apply(&d).unwrap();
        assert_eq!(r.len(), before.len() + 1, "only the unpaired insert lands");
        assert!(r.rows().all(|row| row.to_vec() != new_row));
        assert!(r.is_sorted_by(&[0]));
    }

    #[test]
    fn delete_of_missing_tuple_is_a_typed_error_not_a_no_op() {
        // Defined behavior: strict multiset semantics. A delete-only delta
        // whose tuple has no occurrence must fail with the typed error (and
        // mutate nothing), not saturate to a no-op.
        let mut r = sample();
        r.sort_by_positions(&[0]);
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let mut d = TableDelta::for_relation(&r);
        d.delete(&[Value::Int(42), Value::Int(42), Value::Double(42.0)])
            .unwrap();
        let err = r.apply(&d).unwrap_err();
        assert!(matches!(err, DataError::DeltaMismatch { .. }));
        assert!(err.to_string().contains("not present"), "{err}");
        let after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn insert_then_delete_twice_resolves_the_second_against_the_relation() {
        // One delta inserts a tuple and deletes it twice (net −1). The first
        // tombstone annihilates the insert; the second must consume an
        // occurrence already in the relation.
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        let row = r.row(0).to_vec();
        let before_len = r.len();
        let mut d = TableDelta::for_relation(&r);
        d.insert(&row).unwrap();
        d.delete(&row).unwrap();
        d.delete(&row).unwrap();
        r.apply(&d).unwrap();
        assert_eq!(r.len(), before_len - 1);
        assert!(r.is_sorted_by(&[0, 1]));
    }

    #[test]
    fn insert_then_delete_twice_of_an_absent_tuple_fails_atomically() {
        // Same net −1 shape, but the relation holds no occurrence of the
        // tuple: the leftover tombstone is unmatched, so the whole delta —
        // including its insert — must be rejected.
        let mut r = sample();
        r.sort_by_positions(&[0]);
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let ghost = vec![Value::Int(64), Value::Int(64), Value::Double(64.0)];
        let mut d = TableDelta::for_relation(&r);
        d.insert(&ghost).unwrap();
        d.delete(&ghost).unwrap();
        d.delete(&ghost).unwrap();
        let err = r.apply(&d).unwrap_err();
        assert!(matches!(err, DataError::DeltaMismatch { .. }));
        let after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        assert_eq!(before, after, "failed apply must not mutate");
    }

    #[test]
    fn wide_delete_batches_use_the_hashed_path() {
        let schema = schema3("W");
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::Int(i), Value::Int(i % 7), Value::Double(i as f64)])
            .collect();
        let mut r = Relation::from_rows(schema, rows.clone()).unwrap();
        r.sort_by_positions(&[1]);
        let mut d = TableDelta::for_relation(&r);
        // > 16 distinct deletes exercises the hash fallback.
        for row in rows.iter().take(30) {
            d.delete(row).unwrap();
        }
        r.apply(&d).unwrap();
        assert_eq!(r.len(), 70);
        assert!(r.is_sorted_by(&[1]));
        assert!(r.rows().all(|row| row.value(0).as_i64() >= 30));
    }

    #[test]
    fn apply_rejects_wrong_target_relation() {
        let mut r = sample();
        let mut d = TableDelta::new(schema3("Other"));
        d.insert(&[Value::Int(1), Value::Int(1), Value::Double(1.0)])
            .unwrap();
        assert!(matches!(r.apply(&d), Err(DataError::DeltaMismatch { .. })));
    }

    #[test]
    fn delete_then_reinsert_round_trips_bit_identically() {
        // The satellite case: removing a tuple and re-inserting the exact
        // same tuple must reproduce the relation bit-for-bit through rows(),
        // NaN payloads of doubles included.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let rows = vec![
            vec![Value::Int(1), Value::Int(5), Value::Double(nan)],
            vec![Value::Int(1), Value::Int(5), Value::Double(2.0)],
            vec![Value::Int(2), Value::Int(1), Value::Double(-0.0)],
        ];
        let mut r = Relation::from_rows(schema3("R"), rows).unwrap();
        r.sort_by_positions(&[0, 1]);
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();

        let victim = vec![Value::Int(1), Value::Int(5), Value::Double(nan)];
        let mut del = TableDelta::for_relation(&r);
        del.delete(&victim).unwrap();
        r.apply(&del).unwrap();
        assert_eq!(r.len(), 2);

        let mut ins = TableDelta::for_relation(&r);
        ins.insert(&victim).unwrap();
        r.apply(&ins).unwrap();

        let mut after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let mut expected = before.clone();
        // Same multiset, same sort keys; compare as sorted sequences to be
        // independent of tie order among equal keys.
        after.sort();
        expected.sort();
        assert_eq!(after, expected);
        assert!(r.is_sorted_by(&[0, 1]));
        // The NaN payload survived bit-for-bit.
        assert!(r
            .rows()
            .any(|row| matches!(row.value(2), Value::Double(d) if d.to_bits() == nan.to_bits())));
    }

    #[test]
    fn heterogeneous_delta_appends_demote_columns_to_mixed() {
        // The satellite case: an insert whose variant mismatches the typed
        // column must demote to Mixed without losing any existing value.
        let mut r = sample();
        r.sort_by_positions(&[0]);
        let before: Vec<Value> = (0..r.len()).map(|i| r.value(i, 2)).collect();
        let mut d = TableDelta::for_relation(&r);
        d.insert(&[Value::Int(0), Value::Int(0), Value::Null])
            .unwrap();
        r.apply(&d).unwrap();
        assert!(matches!(r.column(2), Column::Mixed(_)));
        assert_eq!(r.value(0, 2), Value::Null, "null row sorts first by key");
        let after: Vec<Value> = (1..r.len()).map(|i| r.value(i, 2)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn null_and_mixed_rows_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Null, Value::Cat(2)],
            vec![Value::Double(0.5), Value::Int(3), Value::Cat(0)],
        ];
        let r = Relation::from_rows(schema3("M"), rows.clone()).unwrap();
        let back: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        assert_eq!(back, rows);
    }
}
