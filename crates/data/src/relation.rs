//! In-memory relations over columnar storage.
//!
//! A [`Relation`] is a set of typed [`Column`]s plus its [`RelationSchema`]:
//! every attribute is stored contiguously in its native representation
//! (`i64`, `f64`, or `u32` dictionary codes for categoricals, see
//! [`crate::column`]). LMFAO keeps relations sorted by their join attributes
//! so that a single scan can view them as a trie: grouped by the first join
//! attribute, then by the next within each group, and so on (see
//! [`crate::trie`]). This mirrors the factorized-database style scans the
//! paper relies on for the multi-output plans.
//!
//! The columnar layout exists for the hot loops: trie grouping compares one
//! attribute across consecutive rows ([`Column::eq_rows`], a native compare
//! with no enum tag), local-expression sums read typed slices directly, and
//! sorting permutes each column once ([`Column::permute`]) instead of moving
//! whole rows. Row-oriented consumers (tests, CSV import/export, datagen)
//! keep working through the [`RowView`] adapter returned by
//! [`Relation::row`] / [`Relation::rows`], which materializes [`Value`]s on
//! demand; round-tripping `from_rows -> rows()` is exact, bit patterns of
//! doubles included.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::hash::fx_hash_set;
use crate::schema::{AttrId, RelationSchema};
use crate::value::Value;

/// An in-memory relation: schema plus one typed column per attribute.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    columns: Vec<Column>,
    num_rows: usize,
    arity: usize,
    /// Attribute positions this relation is currently sorted by (lexicographic
    /// prefix order); empty if unsorted.
    sorted_by: Vec<usize>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            columns: (0..arity).map(|_| Column::new()).collect(),
            num_rows: 0,
            arity,
            sorted_by: Vec::new(),
        }
    }

    /// Creates a relation from rows, validating arity.
    pub fn from_rows(schema: RelationSchema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut rel = Relation::new(schema);
        rel.reserve(rows.len());
        for row in rows {
            rel.push_row(&row)?;
        }
        Ok(rel)
    }

    /// Creates a relation directly from columns (all columns must have the
    /// same length, one per schema attribute).
    pub fn from_columns(schema: RelationSchema, columns: Vec<Column>) -> Result<Self> {
        let arity = schema.arity();
        if columns.len() != arity {
            return Err(DataError::ArityMismatch {
                relation: schema.name.clone(),
                expected: arity,
                got: columns.len(),
            });
        }
        let num_rows = columns.first().map_or(0, Column::len);
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(DataError::ArityMismatch {
                relation: schema.name.clone(),
                expected: num_rows,
                got: columns.iter().map(Column::len).max().unwrap_or(0),
            });
        }
        Ok(Relation {
            schema,
            columns,
            num_rows,
            arity,
            sorted_by: Vec::new(),
        })
    }

    /// The schema of the relation.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of tuples.
    #[inline]
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Arity (number of attributes).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The typed columns, in schema attribute order.
    #[inline]
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The typed column at position `col`.
    #[inline]
    pub fn column(&self, col: usize) -> &Column {
        &self.columns[col]
    }

    /// Mutable access to the column at position `col` (used by the catalog to
    /// attach dictionaries; values must not be added or removed through this).
    pub(crate) fn column_mut(&mut self, col: usize) -> &mut Column {
        &mut self.columns[col]
    }

    /// Appends a tuple, validating its arity.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity {
            return Err(DataError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.arity,
                got: row.len(),
            });
        }
        self.push_row_unchecked(row);
        Ok(())
    }

    /// Appends a tuple without arity validation (panics in debug builds on
    /// mismatch). Used by bulk loaders on the hot path.
    pub fn push_row_unchecked(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.arity);
        for (col, &v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.num_rows += 1;
        self.sorted_by.clear();
    }

    /// Reserves capacity for `additional` further tuples.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// A lazily materializing view of the `i`-th tuple.
    #[inline]
    pub fn row(&self, i: usize) -> RowView<'_> {
        debug_assert!(i < self.num_rows);
        RowView { rel: self, row: i }
    }

    /// A single value, materialized from its typed column.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.columns[col].value(row)
    }

    /// The numeric interpretation of a single value, read straight from the
    /// typed column (no [`Value`] constructed; matches [`Value::as_f64`]).
    #[inline]
    pub fn f64(&self, row: usize, col: usize) -> f64 {
        self.columns[col].f64_at(row)
    }

    /// Iterates over all tuples as [`RowView`]s.
    pub fn rows(&self) -> impl Iterator<Item = RowView<'_>> + '_ {
        (0..self.num_rows).map(move |i| RowView { rel: self, row: i })
    }

    /// Position of an attribute within this relation.
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.schema.position(attr)
    }

    /// Sorts the relation lexicographically by the given column positions
    /// (remaining columns keep their relative order only within equal keys,
    /// which is all the trie scan needs). The sort computes a row permutation
    /// by comparing the typed key columns, then rebuilds every column with one
    /// contiguous gather ([`Column::permute`]) — no row-at-a-time moves.
    pub fn sort_by_positions(&mut self, positions: &[usize]) {
        if self.is_empty() || positions.is_empty() {
            self.sorted_by = positions.to_vec();
            return;
        }
        let keys: Vec<&Column> = positions.iter().map(|&p| &self.columns[p]).collect();
        let mut perm: Vec<u32> = (0..self.num_rows as u32).collect();
        perm.sort_unstable_by(|&a, &b| {
            for key in &keys {
                match key.cmp_rows(a as usize, b as usize) {
                    std::cmp::Ordering::Equal => continue,
                    ord => return ord,
                }
            }
            std::cmp::Ordering::Equal
        });
        let already_sorted = perm.windows(2).all(|w| w[0] < w[1]);
        if !already_sorted {
            self.columns = self.columns.iter().map(|c| c.permute(&perm)).collect();
        }
        self.sorted_by = positions.to_vec();
    }

    /// Sorts the relation by the given attributes (those present in the
    /// relation are used, in the given order).
    pub fn sort_by_attrs(&mut self, attrs: &[AttrId]) {
        let positions: Vec<usize> = attrs.iter().filter_map(|&a| self.position(a)).collect();
        self.sort_by_positions(&positions);
    }

    /// Column positions the relation is currently sorted by.
    pub fn sorted_by(&self) -> &[usize] {
        &self.sorted_by
    }

    /// Whether the relation is sorted by a prefix starting with `positions`.
    pub fn is_sorted_by(&self, positions: &[usize]) -> bool {
        self.sorted_by.len() >= positions.len() && self.sorted_by[..positions.len()] == *positions
    }

    /// Number of distinct values in a column, counted on the native
    /// representation (no [`Value`] hashing for typed columns).
    pub fn distinct_count(&self, col: usize) -> usize {
        match &self.columns[col] {
            Column::Int(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
            Column::Float(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x.to_bits());
                });
                set.len()
            }
            Column::Dict { codes, .. } => {
                let mut set = fx_hash_set();
                codes.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
            Column::Mixed(v) => {
                let mut set = fx_hash_set();
                v.iter().for_each(|&x| {
                    set.insert(x);
                });
                set.len()
            }
        }
    }

    /// Distinct values of a column, in first-appearance order.
    pub fn distinct_values(&self, col: usize) -> Vec<Value> {
        let mut seen = fx_hash_set();
        let mut out = Vec::new();
        let column = &self.columns[col];
        for i in 0..self.num_rows {
            let v = column.value(i);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Approximate size of the relation payload in bytes (native column
    /// representations, i.e. what the scan actually touches).
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum()
    }

    /// Minimum and maximum value of a column, if the relation is non-empty.
    pub fn min_max(&self, col: usize) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        match &self.columns[col] {
            Column::Int(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.cmp(b));
                Some((Value::Int(mn), Value::Int(mx)))
            }
            Column::Float(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.total_cmp(b));
                Some((Value::Double(mn), Value::Double(mx)))
            }
            Column::Dict { codes, .. } => {
                let (mn, mx) = min_max_by(codes, |a, b| a.cmp(b));
                Some((Value::Cat(mn), Value::Cat(mx)))
            }
            Column::Mixed(v) => {
                let (mn, mx) = min_max_by(v, |a, b| a.cmp(b));
                Some((mn, mx))
            }
        }
    }

    /// Consumes the relation, returning its schema and columns.
    pub fn into_parts(self) -> (RelationSchema, Vec<Column>) {
        (self.schema, self.columns)
    }
}

fn min_max_by<T: Copy>(values: &[T], cmp: impl Fn(&T, &T) -> std::cmp::Ordering) -> (T, T) {
    let mut mn = values[0];
    let mut mx = values[0];
    for v in &values[1..] {
        if cmp(v, &mn) == std::cmp::Ordering::Less {
            mn = *v;
        }
        if cmp(v, &mx) == std::cmp::Ordering::Greater {
            mx = *v;
        }
    }
    (mn, mx)
}

/// A view of one tuple of a columnar [`Relation`]: values are materialized
/// from their typed columns on access.
#[derive(Clone, Copy)]
pub struct RowView<'a> {
    rel: &'a Relation,
    row: usize,
}

impl RowView<'_> {
    /// The value at column position `col`.
    #[inline]
    pub fn value(&self, col: usize) -> Value {
        self.rel.value(self.row, col)
    }

    /// Alias for [`RowView::value`], mirroring slice indexing.
    #[inline]
    pub fn get(&self, col: usize) -> Value {
        self.value(col)
    }

    /// Number of values in the row (the relation arity).
    pub fn len(&self) -> usize {
        self.rel.arity()
    }

    /// True if the relation has arity zero.
    pub fn is_empty(&self) -> bool {
        self.rel.arity() == 0
    }

    /// Iterates over the row's values in column order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |c| self.value(c))
    }

    /// Materializes the row as a vector of values.
    pub fn to_vec(&self) -> Vec<Value> {
        self.iter().collect()
    }
}

impl PartialEq for RowView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for RowView<'_> {}

impl PartialEq<[Value]> for RowView<'_> {
    fn eq(&self, other: &[Value]) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == *b)
    }
}

impl PartialEq<Vec<Value>> for RowView<'_> {
    fn eq(&self, other: &Vec<Value>) -> bool {
        self == other.as_slice()
    }
}

impl std::fmt::Debug for RowView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, RelationSchema};

    fn schema3(name: &str) -> RelationSchema {
        RelationSchema::new(name, vec![AttrId(0), AttrId(1), AttrId(2)])
    }

    fn sample() -> Relation {
        let rows = vec![
            vec![Value::Int(2), Value::Int(10), Value::Double(1.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)],
            vec![Value::Int(2), Value::Int(5), Value::Double(3.0)],
            vec![Value::Int(1), Value::Int(20), Value::Double(4.0)],
        ];
        Relation::from_rows(schema3("R"), rows).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let r = sample();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.value(1, 1), Value::Int(20));
        assert_eq!(r.row(2).value(2), Value::Double(3.0));
        assert_eq!(r.name(), "R");
    }

    #[test]
    fn columns_are_typed() {
        let r = sample();
        assert_eq!(r.column(0).as_int().unwrap().len(), 4);
        assert_eq!(r.column(2).as_float().unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(r.f64(2, 2), 3.0);
        assert_eq!(r.f64(0, 0), 2.0);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new(schema3("R"));
        let err = r.push_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, DataError::ArityMismatch { .. }));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let schema = RelationSchema::new("C", vec![AttrId(0), AttrId(1)]);
        let ok = Relation::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1, 2]), Column::Float(vec![0.5, 1.5])],
        )
        .unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.value(1, 1), Value::Double(1.5));
        let bad = Relation::from_columns(
            schema.clone(),
            vec![Column::Int(vec![1]), Column::Float(vec![0.5, 1.5])],
        );
        assert!(bad.is_err());
        let wrong_arity = Relation::from_columns(schema, vec![Column::Int(vec![1])]);
        assert!(wrong_arity.is_err());
    }

    #[test]
    fn sorting_by_positions() {
        let mut r = sample();
        r.sort_by_positions(&[0, 1]);
        let col0: Vec<i64> = r.column(0).as_int().unwrap().to_vec();
        assert_eq!(col0, vec![1, 1, 2, 2]);
        // Within X0 = 2 the rows are ordered by X1 (5 then 10).
        assert_eq!(r.value(2, 1), Value::Int(5));
        assert_eq!(r.value(3, 1), Value::Int(10));
        assert!(r.is_sorted_by(&[0]));
        assert!(r.is_sorted_by(&[0, 1]));
        assert!(!r.is_sorted_by(&[1]));
    }

    #[test]
    fn sorting_permutes_every_column_consistently() {
        let mut r = sample();
        let before: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        r.sort_by_positions(&[2]);
        let after: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        let mut b = before.clone();
        let mut a = after.clone();
        b.sort();
        a.sort();
        assert_eq!(a, b, "sorting is a permutation of whole rows");
        assert_eq!(after[0], before[0], "column 2 was already sorted");
    }

    #[test]
    fn sorting_by_attrs_filters_missing() {
        let mut r = sample();
        // AttrId(7) is not in the relation and must simply be ignored.
        r.sort_by_attrs(&[AttrId(7), AttrId(1)]);
        let col1: Vec<i64> = (0..r.len()).map(|i| r.value(i, 1).as_i64()).collect();
        assert_eq!(col1, vec![5, 10, 20, 20]);
    }

    #[test]
    fn distinct_counts_and_values() {
        let r = sample();
        assert_eq!(r.distinct_count(0), 2);
        assert_eq!(r.distinct_count(1), 3);
        assert_eq!(r.distinct_count(2), 4);
        assert_eq!(
            r.distinct_values(0),
            vec![Value::Int(2), Value::Int(1)],
            "first-appearance order"
        );
    }

    #[test]
    fn min_max() {
        let r = sample();
        assert_eq!(r.min_max(1), Some((Value::Int(5), Value::Int(20))));
        assert_eq!(r.min_max(2), Some((Value::Double(1.0), Value::Double(4.0))));
        let empty = Relation::new(schema3("E"));
        assert_eq!(empty.min_max(0), None);
    }

    #[test]
    fn rows_iteration_matches_len() {
        let r = sample();
        assert_eq!(r.rows().count(), r.len());
        assert_eq!(r.rows().next().unwrap().value(0), Value::Int(2));
    }

    #[test]
    fn row_views_compare_and_materialize() {
        let r = sample();
        assert_eq!(r.row(1), r.row(1));
        assert_ne!(r.row(1), r.row(3));
        assert_eq!(
            r.row(1).to_vec(),
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)]
        );
        assert_eq!(
            r.row(1),
            vec![Value::Int(1), Value::Int(20), Value::Double(2.0)]
        );
        assert_eq!(r.row(0).len(), 3);
        assert!(!r.row(0).is_empty());
        assert!(format!("{:?}", r.row(2)).contains("Int(5)"));
    }

    #[test]
    fn size_bytes_uses_native_column_widths() {
        let r = sample();
        // Two i64 columns + one f64 column, 4 rows each.
        assert_eq!(r.size_bytes(), 4 * (8 + 8 + 8));
    }

    #[test]
    fn mutation_invalidates_sortedness() {
        let mut r = sample();
        r.sort_by_positions(&[0]);
        assert!(r.is_sorted_by(&[0]));
        r.push_row(&[Value::Int(0), Value::Int(0), Value::Double(0.0)])
            .unwrap();
        assert!(!r.is_sorted_by(&[0]));
    }

    #[test]
    fn null_and_mixed_rows_round_trip() {
        let rows = vec![
            vec![Value::Int(1), Value::Null, Value::Cat(2)],
            vec![Value::Double(0.5), Value::Int(3), Value::Cat(0)],
        ];
        let r = Relation::from_rows(schema3("M"), rows.clone()).unwrap();
        let back: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        assert_eq!(back, rows);
    }
}
